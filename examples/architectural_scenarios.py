"""One application, three architectures: single-GPU, out-of-core, 2 GPUs.

The paper's programmability pitch (Section 1): the same filter-based
application should run unchanged whether the graph fits one GPU, spills
to host memory, or spans multiple GPUs.  This script runs the identical
``BFSApp`` under all three execution environments and reports how each
architecture's bottleneck shows up.

Run with:  python examples/architectural_scenarios.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import BFSApp
from repro.core import SageScheduler, run_app
from repro.graph import datasets
from repro.multigpu import MultiGpuRunner, chunk_partition, edge_cut, metis_like
from repro.outofcore import SageOutOfCoreRunner, SubwayRunner


def main() -> None:
    graph = datasets.friendster_like(scale=0.7).graph
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}, BFS source {source}\n")

    # --- single GPU, everything resident --------------------------------
    single = run_app(graph, BFSApp(), SageScheduler(), source=source)
    print("single-GPU (in-core):")
    print(f"  {single.seconds * 1e3:8.4f} ms  {single.gteps:6.2f} GTEPS")

    # --- out-of-core: device holds 20% of the CSR -----------------------
    print("\nout-of-core (device = 20% of graph, PCIe 3.0 x16):")
    for runner in (SageOutOfCoreRunner(device_fraction=0.2),
                   SubwayRunner(device_fraction=0.2)):
        result = runner.run(graph, BFSApp(), source)
        xfer = result.extras["transfer_seconds"] * 1e3
        mb = result.extras["bytes_transferred"] / 1e6
        print(f"  {runner.name:10s} {result.seconds * 1e3:8.4f} ms  "
              f"{result.gteps:6.2f} GTEPS  "
              f"(moved {mb:6.2f} MB in {xfer:7.3f} ms)")

    # --- two GPUs --------------------------------------------------------
    print("\nmulti-GPU (2 devices, NVLink):")
    chunks = chunk_partition(graph.num_nodes, 2)
    metis = metis_like(graph, 2)
    print(f"  edge cut: chunk {edge_cut(graph, chunks)}, "
          f"metis-like {edge_cut(graph, metis)} "
          f"of {graph.num_edges} edges")
    for label, assignment, async_mode in (
        ("sage async (chunk)", chunks, True),
        ("sage sync  (chunk)", chunks, False),
        ("sage sync  (metis)", metis, False),
    ):
        runner = MultiGpuRunner(SageScheduler, assignment,
                                async_mode=async_mode)
        result = runner.run(graph, BFSApp(), source)
        comm = result.extras["comm_seconds"] * 1e3
        print(f"  {label:20s} {result.seconds * 1e3:8.4f} ms  "
              f"{result.gteps:6.2f} GTEPS  (comm {comm:6.3f} ms)")

    print("\nSame application object, zero code changes across scenarios.")


if __name__ == "__main__":
    main()
