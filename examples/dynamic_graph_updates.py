"""Dynamic graphs: updates invalidate preprocessing, not SAGE.

The paper's argument (Sections 1 and 7.2): preprocessing-based systems
must rebuild their dedicated structures after every batch of updates,
while SAGE operates on plain CSR — rebuild the CSR, keep traversing, and
let Sampling-based Reordering re-optimize on the fly.

This script simulates an evolving social graph: batches of new edges
arrive, BFS queries run between batches, and we compare

* Gorder preprocessing re-run after every batch (what a dedicated
  system would have to do), vs
* SAGE absorbing the update and re-adapting with cheap reorder rounds.

Run with:  python examples/dynamic_graph_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps import BFSApp
from repro.bench import sage_reorder_rounds
from repro.core import SageScheduler, run_app
from repro.graph import DynamicGraph, datasets
from repro.reorder import gorder_order

BATCHES = 4
EDGES_PER_BATCH = 4_000


def bfs_speed(graph, source) -> float:
    return run_app(graph, BFSApp(), SageScheduler(), source=source).gteps


def main() -> None:
    rng = np.random.default_rng(42)
    dyn = DynamicGraph(datasets.ljournal_like(scale=0.5).graph)
    graph = dyn.graph
    print(f"initial graph: {graph}")

    gorder_total = 0.0
    sage_total = 0.0
    for batch in range(1, BATCHES + 1):
        # New edges arrive (biased toward existing hubs, as in real
        # social networks).
        degrees = graph.out_degrees().astype(np.float64) + 1.0
        probs = degrees / degrees.sum()
        src = rng.choice(graph.num_nodes, size=EDGES_PER_BATCH, p=probs)
        dst = rng.integers(0, graph.num_nodes, size=EDGES_PER_BATCH)
        dyn.insert_edges(src, dst)  # sorted-merge, no full re-sort
        graph = dyn.graph

        source = int(np.argmax(graph.out_degrees()))

        # Dedicated pipeline: full Gorder preprocessing from scratch.
        started = time.perf_counter()
        reordered = graph.permute(gorder_order(graph))
        gorder_seconds = time.perf_counter() - started
        gorder_total += gorder_seconds
        gorder_gteps = bfs_speed(reordered, int(np.argmax(
            reordered.out_degrees())))

        # SAGE: three cheap sampling rounds on the updated CSR.
        started = time.perf_counter()
        rounds = sage_reorder_rounds(graph, 3, checkpoints=(3,))
        sage_seconds = time.perf_counter() - started
        sage_total += sage_seconds
        adapted = rounds.snapshots[3]
        sage_gteps = bfs_speed(adapted, int(np.argmax(
            adapted.out_degrees())))

        print(f"\nbatch {batch}: graph now {graph.num_edges} edges")
        print(f"  gorder rebuild: {gorder_seconds:6.2f} s "
              f"-> BFS {gorder_gteps:5.2f} GTEPS")
        print(f"  SAGE 3 rounds:  {sage_seconds:6.2f} s "
              f"-> BFS {sage_gteps:5.2f} GTEPS")
        # continue evolving the adapted graph
        dyn = DynamicGraph(adapted)
        graph = adapted

    print(f"\ntotal re-optimization cost over {BATCHES} update batches:")
    print(f"  gorder preprocessing: {gorder_total:6.2f} s")
    print(f"  SAGE adaptive rounds: {sage_total:6.2f} s "
          f"({gorder_total / max(sage_total, 1e-9):.0f}x cheaper)")


if __name__ == "__main__":
    main()
