"""Web-graph PageRank: when reordering does (not) pay.

Web crawls assign node ids in discovery order, so uk-2002-style graphs
already have high id locality — reordering barely helps (paper Section
7.2).  Scrambled social graphs are the opposite.  This script ranks a
synthetic web graph, then demonstrates the contrast by measuring sector
locality and traversal speed before/after reordering on both graph
types.

Run with:  python examples/web_crawl_pagerank.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import PageRankApp
from repro.bench import sage_reorder_rounds
from repro.core import SageScheduler, run_app
from repro.graph import datasets, id_locality, sector_span


def pr_speed(graph) -> float:
    return run_app(graph, PageRankApp(max_iterations=15),
                   SageScheduler()).gteps


def main() -> None:
    web = datasets.uk2002_like(scale=0.7).graph
    social = datasets.twitter_like(scale=0.7).graph

    # --- rank the web graph ---------------------------------------------
    result = run_app(
        web, PageRankApp(max_iterations=40, tolerance=1e-10),
        SageScheduler(),
    )
    ranks = result.result["pagerank"]
    print(f"web graph {web}: PageRank in {result.iterations} iterations")
    top = np.argsort(-ranks)[:5]
    for node in top:
        print(f"  page {int(node):6d}  score {ranks[node]:.5f}")

    # --- locality contrast ------------------------------------------------
    print("\nid locality (fraction of edges within 64 ids):")
    print(f"  web crawl      {id_locality(web, 64):.3f}")
    print(f"  social graph   {id_locality(social, 64):.3f}")

    print("\neffect of 10 SAGE reordering rounds:")
    for label, graph in (("web", web), ("social", social)):
        before_span = sector_span(graph)
        before_speed = pr_speed(graph)
        adapted = sage_reorder_rounds(graph, 10,
                                      checkpoints=(10,)).snapshots[10]
        after_span = sector_span(adapted)
        after_speed = pr_speed(adapted)
        gain = 100.0 * (after_speed - before_speed) / before_speed
        print(f"  {label:7s} sector span {before_span:6.2f} -> "
              f"{after_span:6.2f}   PR GTEPS {before_speed:6.2f} -> "
              f"{after_speed:6.2f}  ({gain:+.1f} %)")

    print("\nAs in the paper: the crawl order is already cache-friendly;")
    print("the social graph is where runtime reordering earns its keep.")


if __name__ == "__main__":
    main()
