"""Tour of the extension features beyond the paper's core evaluation.

* **Functional apps** — Medusa/Gunrock-style programmability: a complete
  application from three lambdas.
* **SCC decomposition** — the paper's "Tarjan" primitive via the GPU
  Forward-Backward algorithm, built from masked pipeline sweeps.
* **Direction-optimizing BFS** — Beamer push/pull switching on top of
  SAGE's tiles.
* **Compressed adjacency** — the authors' companion representation
  ([41]): gap+varint CSR traversed directly, trading decode compute for
  bandwidth.
* **Exact cache trace replay** — ground-truth L2 behaviour, the
  Nsight-style check behind the analytic cost model.

Run with:  python examples/extensions_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import BFSApp, make_app, one_hot, strongly_connected_components
from repro.core import (
    CompressedTraversalScheduler,
    SageScheduler,
    direction_optimized_bfs,
    run_app,
)
from repro.graph import CompressedCSRGraph, datasets
from repro.gpusim import replay_cache_trace


def main() -> None:
    graph = datasets.twitter_like(scale=0.4).graph
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}\n")

    # --- functional app: k-hop neighborhood in three lambdas ------------
    def init(g, src):
        return {"hops": np.where(one_hot(g, src), 0, -1).astype(np.int64)}

    k_hop = make_app(
        "3hop",
        init=init,
        edge_filter=lambda st, s, d: (st["hops"][d] < 0) & (st["hops"][s] < 3),
        on_pass=lambda st, nodes: st["hops"].__setitem__(
            nodes, st["hops"].max() + 1),
    )
    result = run_app(graph, k_hop(), SageScheduler(), source=source)
    within = int((result.result["hops"] >= 0).sum())
    print(f"functional 3-hop app: {within} nodes within 3 hops of {source}")

    # --- SCC --------------------------------------------------------------
    scc = strongly_connected_components(graph, SageScheduler)
    sizes = np.bincount(scc.labels)
    print(f"SCC: {scc.num_components} components, largest "
          f"{int(sizes.max())} nodes "
          f"({scc.sweeps} sweeps, {scc.trimmed} trimmed, "
          f"{scc.seconds * 1e3:.3f} ms simulated)")

    # --- direction-optimizing BFS ----------------------------------------
    plain = run_app(graph, BFSApp(), SageScheduler(), source=source)
    hybrid, stats = direction_optimized_bfs(graph, SageScheduler, source)
    assert np.array_equal(plain.result["dist"], hybrid.result["dist"])
    print(f"hybrid BFS: {stats.push_iterations} push + "
          f"{stats.pull_iterations} pull iterations "
          f"({hybrid.seconds * 1e3:.4f} ms vs plain "
          f"{plain.seconds * 1e3:.4f} ms)")

    # --- compressed adjacency ---------------------------------------------
    compressed = CompressedCSRGraph.from_csr(graph)
    comp_result = run_app(
        graph, BFSApp(),
        CompressedTraversalScheduler(SageScheduler(), compressed),
        source=source,
    )
    print(f"compressed CSR: {compressed.compression_ratio:.2f}x smaller, "
          f"BFS {comp_result.gteps:.2f} GTEPS vs plain {plain.gteps:.2f}")

    # --- exact cache trace -------------------------------------------------
    report = replay_cache_trace(graph, BFSApp(), source,
                                capacity_sectors=256)
    print(f"exact L2 replay: {report.accesses} accesses, "
          f"hit rate {report.hit_rate:.2%}, "
          f"{report.dram_sectors} DRAM sectors")


if __name__ == "__main__":
    main()
