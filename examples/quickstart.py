"""Quickstart: run BFS with SAGE on a synthetic social graph.

SAGE needs no preprocessing: load (or generate) a graph in plain CSR,
pick a scheduler, run.  This script walks through the core API:

1. build a graph,
2. run BFS under the full SAGE engine,
3. inspect results and simulator counters,
4. compare against the naive thread-per-node baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import BFSApp
from repro.baselines import ThreadPerNodeScheduler
from repro.core import SageScheduler, run_app
from repro.graph import datasets, degree_stats


def main() -> None:
    # A scaled stand-in for the paper's twitter graph: power-law degrees,
    # a few super-hubs, hidden community structure.
    ds = datasets.twitter_like(scale=0.5)
    graph = ds.graph
    stats = degree_stats(graph)
    print(f"graph: {graph}")
    print(f"  avg degree {stats.mean:.1f}, max degree {stats.maximum}, "
          f"degree Gini {stats.gini:.2f}")

    source = int(np.argmax(graph.out_degrees()))

    # The full SAGE engine: Tiled Partitioning + Resident Tile Stealing.
    sage = run_app(graph, BFSApp(), SageScheduler(), source=source)
    reached = int((sage.result["dist"] >= 0).sum())
    print(f"\nBFS from node {source}: reached {reached}/{graph.num_nodes} "
          f"nodes in {sage.iterations} iterations")
    print(f"  SAGE:            {sage.seconds * 1e3:8.4f} ms "
          f"({sage.gteps:6.2f} GTEPS)")

    # The naive baseline: one thread per frontier node.
    naive = run_app(graph, BFSApp(), ThreadPerNodeScheduler(), source=source)
    print(f"  thread-per-node: {naive.seconds * 1e3:8.4f} ms "
          f"({naive.gteps:6.2f} GTEPS)")
    print(f"  speedup: {naive.seconds / sage.seconds:.1f}x")

    # Simulator counters (the stand-in for Nsight Compute).
    prof = sage.profiler
    print("\nSAGE profile:")
    print(f"  kernels            {prof.kernels}")
    print(f"  lane efficiency    {prof.lane_efficiency:.3f}")
    print(f"  DRAM traffic       {prof.dram_bytes / 1e6:.2f} MB")
    print(f"  scheduling share   {100 * prof.overhead_fraction:.1f} %")


if __name__ == "__main__":
    main()
