"""Social-network analysis: centrality and communities on a skewed graph.

The workload the paper's introduction motivates: real-time analytics on a
power-law social network with super-hubs.  This script runs

* Betweenness Centrality (two-phase traversal, atomics),
* PageRank (global traversal),
* Label Propagation communities,
* Connected Components,

all through the same SAGE engine, and shows the self-adaptive reordering
kicking in *during* the PageRank run — no preprocessing pass anywhere.

Run with:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import (
    BCApp,
    ConnectedComponentsApp,
    LabelPropagationApp,
    PageRankApp,
)
from repro.core import SageScheduler, run_app
from repro.graph import CSRGraph, datasets


def top_k(values: np.ndarray, k: int = 5) -> list[tuple[int, float]]:
    idx = np.argsort(-values)[:k]
    return [(int(i), float(values[i])) for i in idx]


def main() -> None:
    graph = datasets.twitter_like(scale=0.5).graph
    print(f"analyzing {graph}")

    # --- influencer detection: betweenness from the biggest hubs -------
    hubs = np.argsort(-graph.out_degrees())[:3]
    dependency = np.zeros(graph.num_nodes)
    for hub in hubs:
        result = run_app(graph, BCApp(), SageScheduler(), source=int(hub))
        delta = result.result["delta"].copy()
        delta[int(hub)] = 0.0
        dependency += delta
    print("\ntop bridge nodes (partial betweenness from 3 hub sources):")
    for node, score in top_k(dependency):
        print(f"  node {node:6d}  dependency {score:10.1f}")

    # --- PageRank with self-adaptive reordering ------------------------
    sched = SageScheduler(sampling_reorder=True)
    result = run_app(
        graph, PageRankApp(max_iterations=30, tolerance=1e-10), sched
    )
    print(f"\nPageRank: {result.iterations} iterations, "
          f"{result.reorder_commits} reordering rounds committed mid-run, "
          f"{result.gteps:.2f} GTEPS")
    print("top ranked nodes:")
    for node, score in top_k(result.result["pagerank"]):
        print(f"  node {node:6d}  pr {score:.5f}")

    # --- communities ----------------------------------------------------
    labels = run_app(
        graph, LabelPropagationApp(max_iterations=15), SageScheduler()
    ).result["labels"]
    sizes = np.bincount(labels, minlength=graph.num_nodes)
    communities = int((sizes > 0).sum())
    print(f"\nlabel propagation found {communities} communities; "
          f"largest has {int(sizes.max())} members")

    # --- connectivity (CC needs symmetric edges) -----------------------
    sym = CSRGraph.from_coo(graph.to_coo().symmetrized())
    comp = run_app(sym, ConnectedComponentsApp(), SageScheduler())
    n_comp = len(np.unique(comp.result["component"]))
    print(f"weakly connected components: {n_comp}")


if __name__ == "__main__":
    main()
