"""Adaptive admission control: token buckets + an AIMD concurrency limit.

The cluster's front door applies two independent brakes before a query
reaches any replica (in the spirit of token-bucket rate limiters such as
zae-limiter, adapted to a fully deterministic clock-injected form):

* **per-client-class token buckets** — each client class has a refill
  rate and a burst capacity; a request arriving to an empty bucket is
  *throttled* (structured ``SHED`` response, ``ThrottledError``).  This
  is per-client fairness, not a statement about service health.
* **adaptive concurrency limiter** — one AIMD-controlled bound on
  cluster-wide outstanding queries.  Overload signals (broker sheds,
  deadline misses) multiplicatively tighten the limit; successful
  completions additively reopen it.  Degradation is graceful and
  structural: under pressure the cluster sheds *more* load *earlier*,
  and it never trades correctness for throughput — a shed is always a
  typed error, never a wrong answer.

Both pieces take ``now`` explicitly, so the threaded cluster pool (wall
clock) and the virtual-time simulator (deterministic) share one policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.races import instrument as races
from repro.errors import InvalidParameterError
from repro.obs import NULL_REGISTRY, MetricsRegistry


class AdmissionDecision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    THROTTLED = "throttled"    # client over its token-bucket budget
    OVERLOADED = "overloaded"  # cluster over its concurrency limit


class TokenBucket:
    """Deterministic token bucket (clock injected by the caller)."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise InvalidParameterError("rate must be > 0")
        if burst < 1:
            raise InvalidParameterError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated: float | None = None

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available at time ``now``."""
        if self._updated is not None and now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now if self._updated is None else max(
            self._updated, now
        )
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        return self._tokens


class AdaptiveConcurrencyLimiter:
    """AIMD bound on outstanding work: tighten on pressure, reopen on
    recovery.

    ``limit`` starts at ``max_limit`` (fully open).  Every overload
    signal multiplies it by ``backoff`` (floored at ``min_limit``);
    every success adds ``recovery`` (capped at ``max_limit``).  The
    published *throttle level* is ``1 - limit/max_limit``: 0.0 fully
    open, approaching 1.0 as the cluster sheds hard.
    """

    def __init__(
        self,
        *,
        max_limit: int = 64,
        min_limit: int = 1,
        backoff: float = 0.5,
        recovery: float = 0.5,
    ) -> None:
        if max_limit < 1 or min_limit < 1 or min_limit > max_limit:
            raise InvalidParameterError(
                "need 1 <= min_limit <= max_limit"
            )
        if not 0.0 < backoff < 1.0:
            raise InvalidParameterError("backoff must be in (0, 1)")
        if recovery <= 0:
            raise InvalidParameterError("recovery must be > 0")
        self.max_limit = int(max_limit)
        self.min_limit = int(min_limit)
        self.backoff = float(backoff)
        self.recovery = float(recovery)
        self._limit = float(max_limit)

    @property
    def limit(self) -> int:
        return int(self._limit)

    @property
    def throttle_level(self) -> float:
        return 1.0 - self._limit / self.max_limit

    def allows(self, outstanding: int) -> bool:
        return outstanding < self.limit

    def on_overload(self) -> None:
        """A shed or deadline miss: tighten multiplicatively."""
        self._limit = max(float(self.min_limit), self._limit * self.backoff)

    def on_success(self) -> None:
        """A served query: reopen additively."""
        self._limit = min(float(self.max_limit), self._limit + self.recovery)


@dataclass
class AdmissionConfig:
    """Tuning knobs of the cluster's admission controller.

    ``rate_qps``/``burst`` apply per client class (``class_rates`` maps
    class name → (rate, burst) overrides).  ``rate_qps=None`` disables
    rate limiting entirely.
    """

    rate_qps: float | None = None
    burst: float = 16.0
    class_rates: dict[str, tuple[float, float]] = field(
        default_factory=dict
    )
    max_concurrency: int = 64
    min_concurrency: int = 1
    backoff: float = 0.5
    recovery: float = 0.5


class AdmissionController:
    """Combines per-class token buckets with the AIMD concurrency limit.

    Thread-safe.  The caller reports lifecycle signals (``on_success``,
    ``on_overload``) so the limiter can adapt; outstanding-work tracking
    stays with the caller, which knows its own accounting domain
    (threads vs. virtual time).
    """

    _guarded_by = {
        "_buckets": "_lock",
        "admitted": "_lock",
        "throttled": "_lock",
        "overloaded": "_lock",
    }

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.limiter = AdaptiveConcurrencyLimiter(
            max_limit=self.config.max_concurrency,
            min_limit=self.config.min_concurrency,
            backoff=self.config.backoff,
            recovery=self.config.recovery,
        )
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = races.make_lock("admission.lock")
        self.admitted = 0
        self.throttled = 0
        self.overloaded = 0

    def _bucket_locked(self, client: str) -> TokenBucket | None:
        """The client's bucket (created lazily).  Caller holds ``_lock``."""
        if client in self._buckets:
            return self._buckets[client]
        if client in self.config.class_rates:
            rate, burst = self.config.class_rates[client]
        elif self.config.rate_qps is not None:
            rate, burst = self.config.rate_qps, self.config.burst
        else:
            return None
        bucket = TokenBucket(rate, burst)
        self._buckets[client] = bucket
        return bucket

    def check(
        self, now: float, outstanding: int, client: str = "default"
    ) -> AdmissionDecision:
        """Decide one arrival.  Does not mutate outstanding counts."""
        with self._lock:
            races.note_write(self, "_buckets")
            races.note_write(self.limiter, "_limit")
            bucket = self._bucket_locked(client)
            if bucket is not None and not bucket.try_acquire(now):
                self.throttled += 1
                self.metrics.count("cluster.throttled")
                return AdmissionDecision.THROTTLED
            if not self.limiter.allows(outstanding):
                self.overloaded += 1
                self.limiter.on_overload()
                self.metrics.count("cluster.shed")
                return AdmissionDecision.OVERLOADED
            self.admitted += 1
            self.metrics.count("cluster.admitted")
            return AdmissionDecision.ADMIT

    def on_success(self) -> None:
        with self._lock:
            races.note_write(self.limiter, "_limit")
            self.limiter.on_success()

    def on_overload(self) -> None:
        """Report a downstream pressure signal (shed / deadline miss)."""
        with self._lock:
            races.note_write(self.limiter, "_limit")
            self.limiter.on_overload()

    @property
    def throttle_level(self) -> float:
        with self._lock:
            races.note_read(self.limiter, "_limit")
            return self.limiter.throttle_level

    @property
    def concurrency_limit(self) -> int:
        with self._lock:
            races.note_read(self.limiter, "_limit")
            return self.limiter.limit
