"""Typed requests and responses of the batched traversal query service.

A :class:`QueryRequest` names an application kind, a registered graph
handle, an optional source node, frozen application parameters and an
optional latency budget.  The broker/simulator answer each request with
a :class:`QueryResponse` whose ``status`` is one of
:class:`QueryStatus`; a non-``OK`` response never carries a result — the
service surfaces structured errors, never wrong answers.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import InvalidParameterError

#: Application kinds the service can execute (see `repro.serve.executor`).
SERVE_APPS = ("bfs", "sssp", "pr", "ppr", "walk", "node2vec", "khop", "sppr")

#: Kinds whose queries require a source node.
SOURCE_APPS = frozenset(
    {"bfs", "sssp", "ppr", "walk", "node2vec", "khop", "sppr"}
)

#: Sampling kinds: coalesced into one combined-app run per batch, with
#: counter-based RNG keeping every stream bit-identical to its oracle.
SAMPLING_APPS = frozenset({"walk", "node2vec", "khop", "sppr"})


class QueryStatus(enum.Enum):
    """Terminal state of one query."""

    OK = "ok"
    TIMEOUT = "timeout"      # deadline passed (before or after execution)
    SHED = "shed"            # refused at admission under overload
    ERROR = "error"          # worker/executor failure, retries exhausted


def normalize_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Canonical, hashable form of app parameters (sorted key/value pairs)."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class QueryRequest:
    """One traversal query.

    ``deadline_seconds`` is a relative latency budget: the broker stamps
    an absolute deadline at admission (arrival + budget); the virtual
    simulator does the same in virtual time.
    """

    app: str
    graph: str
    source: int | None = None
    params: tuple[tuple[str, Any], ...] = ()
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.app not in SERVE_APPS:
            raise InvalidParameterError(
                f"unknown serve app {self.app!r}; expected one of {SERVE_APPS}"
            )
        if isinstance(self.params, Mapping):
            object.__setattr__(self, "params", normalize_params(self.params))
        else:
            object.__setattr__(self, "params", tuple(self.params))
        if self.app in SOURCE_APPS and self.source is None:
            raise InvalidParameterError(f"{self.app} queries require a source")
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise InvalidParameterError("deadline_seconds must be >= 0")

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass
class QueryResponse:
    """Outcome of one query.

    ``result`` is populated only for ``OK`` responses and is bit-identical
    to the direct single-query ``run_app`` oracle (the differential test
    harness pins this).  ``sim_seconds`` is the simulated device time
    attributed to this query's batch run; ``latency_seconds`` is measured
    in the clock domain that served the query (wall for the threaded
    broker, virtual for the deterministic simulator).
    """

    request_id: int
    app: str
    status: QueryStatus
    result: dict[str, np.ndarray] | None = None
    error: str | None = None
    error_type: str | None = None
    batch_id: int = -1
    batch_size: int = 0
    sim_seconds: float = 0.0
    latency_seconds: float = 0.0
    retries: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is QueryStatus.OK

    def __post_init__(self) -> None:
        # The service-level invariant: only OK responses carry data.
        if self.status is not QueryStatus.OK and self.result is not None:
            raise InvalidParameterError(
                f"{self.status} response must not carry a result"
            )
