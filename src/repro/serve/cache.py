"""Versioned query-result cache and the graph store that versions it.

Repeated traversal queries are the common case of a serving deployment
(hot sources, shared PageRank parameter sets), and their results are
pure functions of ``(graph contents, app, params, source)`` — so a cache
can short-circuit execution entirely *provided it can never serve a
stale read*.  Staleness is ruled out structurally, not by TTLs:

* every cache key embeds the owning graph's **update epoch** and a
  content **fingerprint**; a :class:`~repro.graph.dynamic.DynamicGraph`
  merge bumps the epoch via its listener hook, so post-update lookups
  simply miss (and the old epoch's entries are purged);
* values are stored and returned as **copies**, so cached arrays can
  never alias a caller's (or another response's) buffers.

:class:`GraphStore` owns the handle → graph mapping shared by every
replica of a cluster, tracks epochs/fingerprints, and fans updated CSR
snapshots out to subscribers (the replica brokers).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from repro.analysis.races import instrument as races
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve.request import QueryRequest

#: A cache key: (graph handle, epoch, fingerprint, app, params, source).
CacheKey = tuple[str, int, str, str, tuple[tuple[str, Any], ...], int | None]


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a CSR (shape + offsets + targets bytes).

    Two structurally identical graphs fingerprint equally even when they
    are distinct objects, so a cache survives graph re-registration; any
    edge difference changes the digest.
    """
    digest = hashlib.sha256()
    digest.update(int(graph.num_nodes).to_bytes(8, "little"))
    digest.update(np.ascontiguousarray(graph.offsets).tobytes())
    digest.update(np.ascontiguousarray(graph.targets).tobytes())
    return digest.hexdigest()[:16]


def result_cache_key(
    request: QueryRequest, epoch: int, fingerprint: str
) -> CacheKey:
    """The canonical key a request's result is cached under."""
    return (
        request.graph,
        epoch,
        fingerprint,
        request.app,
        request.params,
        None if request.source is None else int(request.source),
    )


class ResultCache:
    """Bounded LRU cache of query results, versioned by graph epoch.

    ``capacity`` bounds the entry count (0 disables caching entirely —
    every ``get`` misses, every ``put`` is dropped).  Thread-safe; the
    threaded cluster pool and the virtual-time simulator share it.
    """

    _guarded_by = {
        "_entries": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "evictions": "_lock",
        "invalidations": "_lock",
    }

    def __init__(
        self,
        capacity: int = 1024,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise InvalidParameterError("capacity must be >= 0")
        self.capacity = int(capacity)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._lock = races.make_lock("cache.lock")
        self._entries: OrderedDict[CacheKey, dict[str, np.ndarray]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            races.note_read(self, "_entries")
            return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        with self._lock:
            races.note_read(self, "hits")
            races.note_read(self, "misses")
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    @staticmethod
    def _copy(result: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        return {key: np.asarray(value).copy() for key, value in result.items()}

    def get(self, key: CacheKey) -> dict[str, np.ndarray] | None:
        """A fresh copy of the cached result, or ``None`` on a miss."""
        with self._lock:
            races.note_write(self, "_entries")
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self.metrics.count("cluster.cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self.metrics.count("cluster.cache_hits")
            return self._copy(entry)

    def put(self, key: CacheKey, result: Mapping[str, np.ndarray]) -> None:
        """Store a copy of ``result``; evicts LRU entries past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            races.note_write(self, "_entries")
            self._entries[key] = self._copy(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.metrics.count("cluster.cache_evictions")

    def invalidate_graph(self, handle: str, *, keep_epoch: int) -> int:
        """Drop every entry of ``handle`` whose epoch predates
        ``keep_epoch``; returns the number purged.

        Epochs are embedded in keys, so stale entries could never *hit*
        anyway — the purge reclaims their memory eagerly instead of
        waiting for LRU pressure.
        """
        with self._lock:
            races.note_write(self, "_entries")
            stale = [
                key
                for key in self._entries
                if key[0] == handle and key[1] < keep_epoch
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            if stale:
                self.metrics.count(
                    "cluster.cache_invalidations", len(stale)
                )
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            races.note_write(self, "_entries")
            self._entries.clear()


class GraphStore:
    """Handle → graph mapping with epochs, fingerprints and update fanout.

    Accepts plain :class:`CSRGraph` values (epoch pinned at 0) and
    :class:`DynamicGraph` values (epoch bumped on every merge via the
    dynamic graph's listener hook).  ``subscribe`` registers a callback
    fired with ``(handle, csr, epoch)`` after every update — the cluster
    pool uses it to swap fresh snapshots into its replica brokers.
    """

    _guarded_by = {
        "_current": "_lock",
        "_epochs": "_lock",
        "_fingerprints": "_lock",
        "_subscribers": "_lock",
    }

    def __init__(
        self, graphs: Mapping[str, CSRGraph | DynamicGraph]
    ) -> None:
        if not graphs:
            raise InvalidParameterError("at least one graph is required")
        self._lock = races.make_lock("store.lock")
        self._dynamic: dict[str, DynamicGraph] = {}
        self._current: dict[str, CSRGraph] = {}
        self._epochs: dict[str, int] = {}
        self._fingerprints: dict[str, str] = {}
        self._subscribers: list[Callable[[str, CSRGraph, int], None]] = []
        for handle, graph in graphs.items():
            if isinstance(graph, DynamicGraph):
                self._dynamic[handle] = graph
                csr = graph.graph  # flushes anything already pending
                graph.add_listener(
                    lambda new, handle=handle: self._on_update(handle, new)
                )
            else:
                csr = graph
            self._current[handle] = csr
            self._epochs[handle] = 0
            self._fingerprints[handle] = graph_fingerprint(csr)

    @property
    def handles(self) -> list[str]:
        with self._lock:
            races.note_read(self, "_current")
            return sorted(self._current)

    def subscribe(
        self, callback: Callable[[str, CSRGraph, int], None]
    ) -> None:
        with self._lock:
            races.note_write(self, "_subscribers")
            self._subscribers.append(callback)

    def _on_update(self, handle: str, csr: CSRGraph) -> None:
        with self._lock:
            races.note_write(self, "_current")
            self._current[handle] = csr
            self._epochs[handle] += 1
            self._fingerprints[handle] = graph_fingerprint(csr)
            epoch = self._epochs[handle]
            races.note_read(self, "_subscribers")
            subscribers = list(self._subscribers)
        # Fan out with the lock dropped: subscribers take their own
        # locks (the replica brokers'), and holding ours across the
        # callback would order store.lock -> broker.lock.
        for callback in subscribers:
            callback(handle, csr, epoch)

    def refresh(self, handle: str) -> None:
        """Flush any pending dynamic updates so the epoch is current.

        Cache-key computation must see the post-update epoch; touching
        the dynamic graph's ``.graph`` property forces the flush (which
        fires the listener, which bumps the epoch).
        """
        dynamic = self._dynamic.get(handle)
        if dynamic is not None and dynamic.pending_updates:
            _ = dynamic.graph

    def apply_update(self, handle: str, src: Any, dst: Any) -> int:
        """Insert edges into a dynamic handle and flush immediately.

        Returns the post-merge epoch.  Convenience for the cluster
        simulator's scripted mid-stream updates; raises for handles that
        were registered as plain (non-dynamic) CSR graphs.
        """
        self._check(handle)
        dynamic = self._dynamic.get(handle)
        if dynamic is None:
            raise InvalidParameterError(
                f"graph {handle!r} is not dynamic; register a "
                "DynamicGraph to apply updates"
            )
        dynamic.insert_edges(np.asarray(src), np.asarray(dst))
        dynamic.flush()
        return self.epoch(handle)

    def graph(self, handle: str) -> CSRGraph:
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_current")
            return self._current[handle]

    def epoch(self, handle: str) -> int:
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_epochs")
            return self._epochs[handle]

    def fingerprint(self, handle: str) -> str:
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_fingerprints")
            return self._fingerprints[handle]

    def key_for(self, request: QueryRequest) -> CacheKey:
        """The cache key of ``request`` against current graph contents."""
        self._check(request.graph)
        self.refresh(request.graph)
        with self._lock:
            races.note_read(self, "_epochs")
            races.note_read(self, "_fingerprints")
            return result_cache_key(
                request,
                self._epochs[request.graph],
                self._fingerprints[request.graph],
            )

    def snapshot(self) -> dict[str, CSRGraph]:
        """Current CSR per handle (the mapping replica brokers serve)."""
        for handle in self._dynamic:
            self.refresh(handle)
        with self._lock:
            races.note_read(self, "_current")
            return dict(self._current)

    def _check(self, handle: str) -> None:
        with self._lock:
            races.note_read(self, "_current")
            known = handle in self._current
            registered = sorted(self._current) if not known else []
        if not known:
            raise InvalidParameterError(
                f"unknown graph handle {handle!r}; "
                f"registered: {registered}"
            )
