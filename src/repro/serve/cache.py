"""Versioned query-result cache and the graph store that versions it.

Repeated traversal queries are the common case of a serving deployment
(hot sources, shared PageRank parameter sets), and their results are
pure functions of ``(graph contents, app, params, source)`` — so a cache
can short-circuit execution entirely *provided it can never serve a
stale read*.  Staleness is ruled out structurally, not by TTLs:

* every cache key embeds the owning graph's **update epoch** and a
  content **fingerprint**; a :class:`~repro.graph.dynamic.DynamicGraph`
  merge bumps the epoch via its listener hook, so post-update lookups
  simply miss (and the old epoch's entries are purged);
* values are stored and returned as **copies**, so cached arrays can
  never alias a caller's (or another response's) buffers.

Invalidation is *selective* when the update arrives as a structured
:class:`~repro.graph.delta.GraphDelta`: entries whose results are
provably unaffected by the changed edges (see
:meth:`ResultCache.apply_delta`) are re-keyed to the new epoch instead
of purged, so a hot source keeps hitting across merges that cannot
change its answer.

:class:`GraphStore` owns the handle → graph mapping shared by every
replica of a cluster, tracks epochs/fingerprints, and fans updated CSR
snapshots *and their deltas* out to subscribers (the replica brokers).
"""

from __future__ import annotations

import hashlib
import inspect
from collections import OrderedDict
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from repro.analysis.races import instrument as races
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.graph.dynamic import DynamicGraph
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve.request import QueryRequest

#: A cache key: (graph handle, epoch, fingerprint, app, params, source).
CacheKey = tuple[str, int, str, str, tuple[tuple[str, Any], ...], int | None]


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a CSR (shape + offsets + targets bytes).

    Two structurally identical graphs fingerprint equally even when they
    are distinct objects, so a cache survives graph re-registration; any
    edge difference changes the digest.
    """
    digest = hashlib.sha256()
    digest.update(int(graph.num_nodes).to_bytes(8, "little"))
    digest.update(np.ascontiguousarray(graph.offsets).tobytes())
    digest.update(np.ascontiguousarray(graph.targets).tobytes())
    return digest.hexdigest()[:16]


def result_cache_key(
    request: QueryRequest, epoch: int, fingerprint: str
) -> CacheKey:
    """The canonical key a request's result is cached under."""
    return (
        request.graph,
        epoch,
        fingerprint,
        request.app,
        request.params,
        None if request.source is None else int(request.source),
    )


#: Apps whose cached result carries a per-node ``dist`` array rooted at
#: one source — the shapes :func:`_survives_delta` can reason about.
_SOURCE_DIST_APPS = frozenset({"bfs", "sssp"})


def _survives_delta(
    key: CacheKey, entry: Mapping[str, np.ndarray], delta: GraphDelta
) -> bool:
    """Whether a cached result is provably unchanged by ``delta``.

    The argument (DESIGN.md, "Structured deltas & incremental repair"):
    for a source-rooted distance result, take any path from the source
    in the *new* graph that uses an inserted edge and look at the first
    inserted edge ``(u, v)`` along it — its prefix uses only old edges,
    so ``u`` was reachable in the old graph.  Contrapositive: if every
    changed edge departs a vertex the cached run never reached
    (``dist`` at its unreachable sentinel), no new-graph path can use
    any inserted edge and no old shortest path used any deleted one —
    the distance array is bit-identical across the epochs.  Deltas with
    no applied changes trivially preserve every entry.
    """
    if delta.is_empty:
        return True
    app, source = key[3], key[5]
    if source is None or app not in _SOURCE_DIST_APPS:
        return False
    dist = entry.get("dist")
    if dist is None or dist.ndim != 1 or dist.size != delta.num_nodes:
        return False
    touched = delta.touched_sources
    values = dist[touched]
    if app == "bfs":
        return bool((values < 0).all())
    from repro.apps.sssp import INF

    return bool((values >= INF).all())


class ResultCache:
    """Bounded LRU cache of query results, versioned by graph epoch.

    ``capacity`` bounds the entry count (0 disables caching entirely —
    every ``get`` misses, every ``put`` is dropped).  Thread-safe; the
    threaded cluster pool and the virtual-time simulator share it.
    """

    _guarded_by = {
        "_entries": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "evictions": "_lock",
        "invalidations": "_lock",
        "rekeyed": "_lock",
    }

    def __init__(
        self,
        capacity: int = 1024,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise InvalidParameterError("capacity must be >= 0")
        self.capacity = int(capacity)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._lock = races.make_lock("cache.lock")
        self._entries: OrderedDict[CacheKey, dict[str, np.ndarray]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rekeyed = 0

    def __len__(self) -> int:
        with self._lock:
            races.note_read(self, "_entries")
            return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        with self._lock:
            races.note_read(self, "hits")
            races.note_read(self, "misses")
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    @staticmethod
    def _copy(result: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        return {key: np.asarray(value).copy() for key, value in result.items()}

    def get(self, key: CacheKey) -> dict[str, np.ndarray] | None:
        """A fresh copy of the cached result, or ``None`` on a miss."""
        with self._lock:
            races.note_write(self, "_entries")
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self.metrics.count("cluster.cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self.metrics.count("cluster.cache_hits")
            return self._copy(entry)

    def put(self, key: CacheKey, result: Mapping[str, np.ndarray]) -> None:
        """Store a copy of ``result``; evicts LRU entries past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            races.note_write(self, "_entries")
            self._entries[key] = self._copy(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.metrics.count("cluster.cache_evictions")

    def invalidate_graph(self, handle: str, *, keep_epoch: int) -> int:
        """Drop every entry of ``handle`` whose epoch predates
        ``keep_epoch``; returns the number purged.

        Epochs are embedded in keys, so stale entries could never *hit*
        anyway — the purge reclaims their memory eagerly instead of
        waiting for LRU pressure.
        """
        with self._lock:
            races.note_write(self, "_entries")
            stale = [
                key
                for key in self._entries
                if key[0] == handle and key[1] < keep_epoch
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            if stale:
                self.metrics.count(
                    "cluster.cache_invalidations", len(stale)
                )
            return len(stale)

    def apply_delta(
        self,
        handle: str,
        delta: GraphDelta,
        *,
        new_epoch: int,
        new_fingerprint: str,
    ) -> tuple[int, int]:
        """Selective invalidation for one structured update.

        Entries of ``handle`` at exactly the pre-update epoch
        (``new_epoch - 1``) whose results are provably unaffected by
        ``delta`` (:func:`_survives_delta`) are *re-keyed* to
        ``(new_epoch, new_fingerprint)`` — they keep hitting after the
        merge.  Everything else stale is purged, including entries from
        older epochs (those skipped an intermediate delta's check, so
        survival cannot be argued from this delta alone).  Returns
        ``(kept, purged)``.
        """
        with self._lock:
            races.note_write(self, "_entries")
            stale = [
                key
                for key in self._entries
                if key[0] == handle and key[1] < new_epoch
            ]
            kept = 0
            for key in stale:
                new_key = (handle, new_epoch, new_fingerprint) + key[3:]
                if (
                    key[1] == new_epoch - 1
                    and new_key not in self._entries
                    and _survives_delta(key, self._entries[key], delta)
                ):
                    self._entries[new_key] = self._entries.pop(key)
                    kept += 1
                else:
                    del self._entries[key]
            purged = len(stale) - kept
            self.invalidations += purged
            self.rekeyed += kept
            if purged:
                self.metrics.count("cluster.cache_invalidations", purged)
                self.metrics.count("delta.cache_entries_purged", purged)
            if kept:
                self.metrics.count("delta.cache_entries_kept", kept)
            return kept, purged

    def clear(self) -> None:
        with self._lock:
            races.note_write(self, "_entries")
            self._entries.clear()


#: The delta-aware subscriber contract of :meth:`GraphStore.subscribe`.
StoreSubscriber = Callable[[str, CSRGraph, int, GraphDelta], None]


def _adapt_subscriber(callback: Callable[..., None]) -> StoreSubscriber:
    """Accept both subscriber generations behind one call signature.

    Delta-aware subscribers (four positional parameters) pass through;
    legacy ``(handle, csr, epoch)`` subscribers are wrapped to drop the
    delta, with an exactly-once deprecation warning at subscription.
    """
    try:
        inspect.signature(callback).bind(None, None, None, None)
    except TypeError:
        from repro.deprecation import warn_once

        warn_once(
            "store.subscribe.no_delta",
            "GraphStore subscribers taking (handle, csr, epoch) are "
            "deprecated; accept (handle, csr, epoch, delta) instead",
        )
        return lambda handle, csr, epoch, delta: callback(
            handle, csr, epoch
        )
    except ValueError:  # pragma: no cover - signature-less builtins
        pass
    return callback  # type: ignore[return-value]


class GraphStore:
    """Handle → graph mapping with epochs, fingerprints and update fanout.

    Accepts plain :class:`CSRGraph` values (epoch pinned at 0) and
    :class:`DynamicGraph` values (epoch bumped on every merge via the
    dynamic graph's listener hook).  ``subscribe`` registers a callback
    fired with ``(handle, csr, epoch, delta)`` after every update — the
    cluster pool uses the delta to patch its replica brokers' CSRs in
    place and to invalidate the cache selectively.  Batched updates go
    through :meth:`apply_edges` / :meth:`apply_delta`; the per-edge
    :meth:`apply_update` spelling is a deprecated shim.
    """

    _guarded_by = {
        "_current": "_lock",
        "_epochs": "_lock",
        "_fingerprints": "_lock",
        "_deltas": "_lock",
        "_subscribers": "_lock",
    }

    def __init__(
        self,
        graphs: Mapping[str, CSRGraph | DynamicGraph],
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not graphs:
            raise InvalidParameterError("at least one graph is required")
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._lock = races.make_lock("store.lock")
        self._dynamic: dict[str, DynamicGraph] = {}
        self._current: dict[str, CSRGraph] = {}
        self._epochs: dict[str, int] = {}
        self._fingerprints: dict[str, str] = {}
        self._deltas: dict[str, GraphDelta] = {}
        self._subscribers: list[StoreSubscriber] = []
        for handle, graph in graphs.items():
            if isinstance(graph, DynamicGraph):
                self._dynamic[handle] = graph
                csr = graph.graph  # flushes anything already pending
                graph.add_listener(
                    lambda new, delta, handle=handle: self._on_update(
                        handle, new, delta
                    )
                )
            else:
                csr = graph
            self._current[handle] = csr
            self._epochs[handle] = 0
            self._fingerprints[handle] = graph_fingerprint(csr)

    @property
    def handles(self) -> list[str]:
        with self._lock:
            races.note_read(self, "_current")
            return sorted(self._current)

    def subscribe(self, callback: Callable[..., None]) -> None:
        """Register a ``(handle, csr, epoch, delta)`` update callback.

        Legacy three-argument subscribers are auto-adapted with a
        warn-once deprecation.
        """
        adapted = _adapt_subscriber(callback)
        with self._lock:
            races.note_write(self, "_subscribers")
            self._subscribers.append(adapted)

    def _on_update(
        self, handle: str, csr: CSRGraph, delta: GraphDelta
    ) -> None:
        with self._lock:
            races.note_write(self, "_current")
            self._current[handle] = csr
            self._epochs[handle] += 1
            self._fingerprints[handle] = graph_fingerprint(csr)
            self._deltas[handle] = delta
            epoch = self._epochs[handle]
            races.note_read(self, "_subscribers")
            subscribers = list(self._subscribers)
        self.metrics.count("delta.flushes")
        if delta.num_inserted:
            self.metrics.count("delta.edges_inserted", delta.num_inserted)
        if delta.num_deleted:
            self.metrics.count("delta.edges_deleted", delta.num_deleted)
        # Fan out with the lock dropped: subscribers take their own
        # locks (the replica brokers'), and holding ours across the
        # callback would order store.lock -> broker.lock.
        for callback in subscribers:
            callback(handle, csr, epoch, delta)

    def refresh(self, handle: str) -> None:
        """Flush any pending dynamic updates so the epoch is current.

        Cache-key computation must see the post-update epoch; touching
        the dynamic graph's ``.graph`` property forces the flush (which
        fires the listener, which bumps the epoch).
        """
        dynamic = self._dynamic.get(handle)
        if dynamic is not None and dynamic.pending_updates:
            _ = dynamic.graph

    def _dynamic_for(self, handle: str) -> DynamicGraph:
        self._check(handle)
        dynamic = self._dynamic.get(handle)
        if dynamic is None:
            raise InvalidParameterError(
                f"graph {handle!r} is not dynamic; register a "
                "DynamicGraph to apply updates"
            )
        return dynamic

    def apply_edges(
        self,
        handle: str,
        src: Any,
        dst: Any,
        *,
        delete_src: Any = None,
        delete_dst: Any = None,
    ) -> int:
        """Apply one batched update to a dynamic handle and flush.

        ``src``/``dst`` are inserted; ``delete_src``/``delete_dst``
        (optional, matching 1-D arrays) are deleted in the same merge,
        with deletes winning over same-batch inserts of the same pair.
        Returns the post-merge epoch; the resulting
        :class:`~repro.graph.delta.GraphDelta` is available via
        :meth:`last_delta` and is fanned out to every subscriber.
        Raises for handles registered as plain (non-dynamic) CSR graphs.
        """
        dynamic = self._dynamic_for(handle)
        src = np.asarray(src)
        dst = np.asarray(dst)
        if src.size:
            dynamic.insert_edges(src, dst)
        if delete_src is not None:
            dynamic.delete_edges(
                np.asarray(delete_src), np.asarray(delete_dst)
            )
        dynamic.flush()
        return self.epoch(handle)

    def apply_delta(self, handle: str, delta: GraphDelta) -> int:
        """Replay a :class:`~repro.graph.delta.GraphDelta` onto a handle.

        Applies the delta's inserted and deleted edge instances as one
        merge (the typical use is forwarding a delta produced by
        another store or process).  Returns the post-merge epoch.
        """
        dynamic = self._dynamic_for(handle)
        if delta.is_empty:
            return self.epoch(handle)
        if delta.num_inserted:
            dynamic.insert_edges(delta.inserted_src, delta.inserted_dst)
        if delta.num_deleted:
            dynamic.delete_edges(delta.deleted_src, delta.deleted_dst)
        dynamic.flush()
        return self.epoch(handle)

    def apply_update(self, handle: str, src: Any, dst: Any) -> int:
        """Deprecated spelling of :meth:`apply_edges` (inserts only)."""
        from repro.deprecation import warn_once

        warn_once(
            "store.apply_update",
            "GraphStore.apply_update is deprecated; use "
            "apply_edges(handle, src, dst) or apply_delta(handle, delta)",
        )
        return self.apply_edges(handle, src, dst)

    def last_delta(self, handle: str) -> GraphDelta | None:
        """The delta of the handle's most recent merge (``None`` before
        any update or for non-dynamic handles)."""
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_deltas")
            return self._deltas.get(handle)

    def graph(self, handle: str) -> CSRGraph:
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_current")
            return self._current[handle]

    def epoch(self, handle: str) -> int:
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_epochs")
            return self._epochs[handle]

    def fingerprint(self, handle: str) -> str:
        self._check(handle)
        self.refresh(handle)
        with self._lock:
            races.note_read(self, "_fingerprints")
            return self._fingerprints[handle]

    def key_for(self, request: QueryRequest) -> CacheKey:
        """The cache key of ``request`` against current graph contents."""
        self._check(request.graph)
        self.refresh(request.graph)
        with self._lock:
            races.note_read(self, "_epochs")
            races.note_read(self, "_fingerprints")
            return result_cache_key(
                request,
                self._epochs[request.graph],
                self._fingerprints[request.graph],
            )

    def snapshot(self) -> dict[str, CSRGraph]:
        """Current CSR per handle (the mapping replica brokers serve)."""
        for handle in self._dynamic:
            self.refresh(handle)
        with self._lock:
            races.note_read(self, "_current")
            return dict(self._current)

    def _check(self, handle: str) -> None:
        with self._lock:
            races.note_read(self, "_current")
            known = handle in self._current
            registered = sorted(self._current) if not known else []
        if not known:
            raise InvalidParameterError(
                f"unknown graph handle {handle!r}; "
                f"registered: {registered}"
            )
