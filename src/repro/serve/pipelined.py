"""Pipelined batch execution: overlap batches on one simulated device.

:class:`PipelinedExecutor` extends :class:`~repro.serve.executor
.BatchExecutor` with a *compile* step: the batch still executes through
the inherited (bit-identical) functional path, but the per-run device
timelines recorded in ``RunResult.node_trace`` are recompiled into one
:class:`~repro.gpusim.streams.BatchDag` per batch.  A
:class:`ReplicaPipeline` then admits up to ``in_flight`` such DAGs into
one :class:`~repro.gpusim.streams.StreamDevice`, so independent nodes
from *different* batches interleave — kernels co-run under honest
occupancy sharing, transfers ride the copy engines beside another
batch's compute, and out-of-core prefetch is issued ``prefetch_depth``
iterations early.

Only virtual time moves: results are produced by the inherited executor
before any DAG is scheduled, so pipelined responses are bit-identical to
the batch-at-a-time executor (and therefore to the ``run_direct``
oracle) by construction.  The differential tests in ``tests/serve/``
pin this.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.races import instrument as races
from repro.core.scheduler import Scheduler
from repro.errors import InvalidParameterError, SimulationError
from repro.graph.csr import CSRGraph
from repro.gpusim.streams import (
    H2D,
    HOST,
    KERNEL,
    BatchDag,
    StreamDevice,
    dag_from_run,
)
from repro.obs import MetricsRegistry
from repro.serve.executor import BatchExecution, BatchExecutor
from repro.serve.request import QueryRequest


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the stream/event pipeline (defaults = synchronous).

    Attributes:
        in_flight: batches concurrently admitted per replica device; 1
            reproduces the batch-at-a-time executor timeline exactly.
        num_streams: compute launch queues per device; runs mapped to
            the same stream serialize, distinct streams co-run subject
            to occupancy.
        prefetch_depth: how many iterations early an out-of-core
            transfer is issued (see
            :func:`~repro.gpusim.streams.dag_from_run`).
    """

    in_flight: int = 1
    num_streams: int = 1
    prefetch_depth: int = 0

    def __post_init__(self) -> None:
        if self.in_flight < 1:
            raise InvalidParameterError("in_flight must be >= 1")
        if self.num_streams < 1:
            raise InvalidParameterError("num_streams must be >= 1")
        if self.prefetch_depth < 0:
            raise InvalidParameterError("prefetch_depth must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether any knob departs from synchronous behaviour."""
        return (
            self.in_flight > 1
            or self.num_streams > 1
            or self.prefetch_depth > 0
        )


@dataclass
class PipelinedBatch:
    """One compiled batch: its (already-final) results plus its DAG."""

    execution: BatchExecution
    dag: BatchDag


class PipelinedExecutor(BatchExecutor):
    """Batch executor that also compiles each batch to an event DAG."""

    def __init__(
        self,
        scheduler_factory: Callable[[], Scheduler],
        *,
        num_gpus: int = 1,
        metrics: MetricsRegistry | None = None,
        config: PipelineConfig | None = None,
    ) -> None:
        super().__init__(scheduler_factory, num_gpus=num_gpus,
                         metrics=metrics)
        self.config = config or PipelineConfig()

    def compile(
        self, graph: CSRGraph, requests: list[QueryRequest]
    ) -> PipelinedBatch:
        """Execute one batch and compile its device timeline to a DAG.

        Each internal run becomes one lane (its own dependency chain),
        so runs of the same batch can themselves overlap when the
        device has streams to spare.
        """
        with self.metrics.span(
            "pipeline.batch", queries=len(requests),
        ) as span:
            execution = self.execute(graph, requests)
            if not execution.traced:
                raise SimulationError(
                    "batch has a run without a node trace; its DAG "
                    "lane would carry zero device time"
                )
            dag = BatchDag()
            for lane, run in enumerate(execution.runs):
                dag_from_run(
                    run, dag=dag, lane=lane,
                    prefetch_depth=self.config.prefetch_depth,
                )
            span.set("nodes", dag.num_nodes)
            span.set("lanes", dag.num_lanes)
            span.set("total_seconds", dag.total_seconds)
        self.metrics.count("pipeline.batches")
        kinds = {KERNEL: 0, H2D: 0, HOST: 0}
        for node in dag.nodes:
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        self.metrics.count("stream.kernel_nodes", kinds.get(KERNEL, 0))
        self.metrics.count(
            "stream.transfer_nodes",
            dag.num_nodes - kinds.get(KERNEL, 0) - kinds.get(HOST, 0),
        )
        self.metrics.count("stream.host_nodes", kinds.get(HOST, 0))
        return PipelinedBatch(execution=execution, dag=dag)


class ReplicaPipeline:
    """In-flight admission window in front of one stream device.

    At most ``config.in_flight`` batch DAGs are resident on the device;
    further submissions queue FIFO and are admitted the moment a
    resident batch completes, released no earlier than their own ready
    time.  All bookkeeping is in virtual time and fully deterministic.
    """

    def __init__(
        self,
        config: PipelineConfig,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.device = StreamDevice(num_streams=config.num_streams)
        self.metrics = metrics
        self._waiting: deque[tuple[int, BatchDag, float]] = deque()
        self._local_of: dict[int, int] = {}
        self._next_local = 0
        self._in_flight = 0
        self.inflight_peak = 0

    def submit(self, dag: BatchDag, ready: float) -> int:
        """Enqueue one compiled batch; returns a completion handle."""
        # Single-owner by contract (the virtual-time loop); the write
        # notes let the race detector prove no second thread sneaks in.
        races.note_write(self, "_in_flight")
        local = self._next_local
        self._next_local += 1
        if self._in_flight < self.config.in_flight:
            self._admit(local, dag, ready)
        else:
            self._waiting.append((local, dag, ready))
            if self.metrics is not None:
                self.metrics.count("pipeline.queued_batches")
        return local

    def _admit(self, local: int, dag: BatchDag, release: float) -> None:
        handle = self.device.admit(dag, release)
        self._local_of[handle] = local
        self._in_flight += 1
        self.inflight_peak = max(self.inflight_peak, self._in_flight)

    def next_event_time(self) -> float | None:
        return self.device.next_event_time()

    def advance_to(self, limit: float) -> list[tuple[int, float]]:
        """Process device events up to ``limit``.

        Returns ``(handle, finish)`` for every batch that completed,
        ordered by (finish, submission order).  Completions free window
        slots, so queued batches admitted in their wake are also played
        out up to ``limit``.
        """
        races.note_write(self, "_in_flight")
        out: list[tuple[int, float]] = []
        while True:
            done = self.device.advance_to(limit)
            if not done:
                break
            for completion in done:
                self._in_flight -= 1
                out.append(
                    (self._local_of.pop(completion.handle),
                     completion.finish)
                )
                if self._waiting:
                    local, dag, ready = self._waiting.popleft()
                    self._admit(local, dag, max(ready, completion.finish))
        out.sort(key=lambda item: (item[1], item[0]))
        return out

    @property
    def idle(self) -> bool:
        return self.device.idle and not self._waiting
