"""Batch execution: one batched kernel sequence answers many queries.

The executor is where micro-batching pays off.  A batch of BFS queries
is rewritten into MS-BFS runs (:class:`~repro.apps.msbfs.MultiSourceBFSApp`
packs up to 64 sources into one bit-parallel traversal); PageRank-family
queries that differ only in parameters are answered by a single run
shared across the batch; per-source apps without a batched formulation
(SSSP, personalized PR) run once per *unique* source, so duplicate
sources still coalesce.  Every run goes through the existing
:class:`~repro.multigpu.runner.MultiGpuRunner`, which with one device is
bit-identical to the direct :func:`~repro.core.pipeline.run_app` path —
the invariant the differential harness in ``tests/serve/`` pins.

:func:`run_direct` is the sequential oracle the service is tested (and
benchmarked) against: one plain ``run_app`` per query.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.apps import (
    BFSApp,
    BiasedRandomWalkApp,
    KHopSampleApp,
    MultiSourceBFSApp,
    Node2VecWalkApp,
    PageRankApp,
    PersonalizedPageRankApp,
    SSSPApp,
    SampledPPRApp,
)
from repro.apps.base import App
from repro.apps.msbfs import MAX_SOURCES
from repro.core.pipeline import RunResult, run_app
from repro.core.scheduler import Scheduler
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.multigpu import MultiGpuRunner, chunk_partition
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve.request import SAMPLING_APPS, QueryRequest


def make_single_app(kind: str, params: dict[str, Any]) -> App:
    """The per-query app the direct oracle runs (no batching)."""
    if kind == "bfs":
        if params:
            raise InvalidParameterError(f"bfs takes no params, got {params}")
        return BFSApp()
    if kind == "sssp":
        if params:
            raise InvalidParameterError(f"sssp takes no params, got {params}")
        return SSSPApp()
    if kind == "pr":
        return PageRankApp(**params)
    if kind == "ppr":
        return PersonalizedPageRankApp(**params)
    if kind == "walk":
        return BiasedRandomWalkApp(**params)
    if kind == "node2vec":
        return Node2VecWalkApp(**params)
    if kind == "khop":
        return KHopSampleApp(**params)
    if kind == "sppr":
        return SampledPPRApp(**params)
    raise InvalidParameterError(f"unknown serve app {kind!r}")


def run_direct(
    graph: CSRGraph,
    request: QueryRequest,
    scheduler_factory: Callable[[], Scheduler],
    *,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """Answer one query with the direct single-query pipeline (oracle)."""
    app = make_single_app(request.app, request.param_dict())
    return run_app(
        graph, app, scheduler_factory(), request.source, metrics=metrics
    )


@dataclass
class BatchExecution:
    """Outcome of executing one batch.

    ``results`` is aligned with the input request list; every entry is a
    fresh dict with copied arrays so responses never alias each other.
    ``sim_seconds`` is the total simulated device time of the batch (the
    worker executes its internal runs serially).

    The order of ``runs`` is part of the contract: the pipelined
    executor replays run ``i`` as lane ``i`` of the batch's stream DAG,
    so two executions of the same batch must list their runs in the
    same order (they do — every ``_execute_*`` path iterates sources
    in sorted order).
    """

    results: list[dict[str, np.ndarray]]
    sim_seconds: float
    runs: list[RunResult] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def traced(self) -> bool:
        """Whether every internal run recorded a device node trace.

        A run without a ``node_trace`` would compile to an *empty* DAG
        lane — zero device time — silently deflating the pipelined
        timeline, so ``PipelinedExecutor.compile`` refuses untraced
        executions instead of guessing.
        """
        return all(run.node_trace for run in self.runs)


class BatchExecutor:
    """Executes batches of compatible queries on simulated devices."""

    def __init__(
        self,
        scheduler_factory: Callable[[], Scheduler],
        *,
        num_gpus: int = 1,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_gpus < 1:
            raise InvalidParameterError("num_gpus must be >= 1")
        self.scheduler_factory = scheduler_factory
        self.num_gpus = num_gpus
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    # ------------------------------------------------------------------
    # Run plumbing (overridable: fault-injection tests subclass this)
    # ------------------------------------------------------------------

    def _run(
        self, graph: CSRGraph, app: App, source: int | None = None
    ) -> RunResult:
        """One traversal on a fresh runner (clean per-run profiler)."""
        run_registry = MetricsRegistry(enabled=self.metrics.enabled)
        runner = MultiGpuRunner(
            self.scheduler_factory,
            chunk_partition(graph.num_nodes, self.num_gpus),
            num_gpus=self.num_gpus,
            metrics=run_registry,
        )
        result = runner.run(graph, app, source)
        # Per-run registries are summed into the executor's registry;
        # folding devices directly into a shared registry would snapshot-
        # overwrite the gpusim.* counters of earlier runs.
        self.metrics.merge(run_registry)
        return result

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def execute(
        self, graph: CSRGraph, requests: list[QueryRequest]
    ) -> BatchExecution:
        """Answer every request in one compatible batch."""
        if not requests:
            return BatchExecution(results=[], sim_seconds=0.0)
        kind = requests[0].app
        params = requests[0].params
        for req in requests[1:]:
            if req.app != kind or req.params != params:
                raise InvalidParameterError(
                    "batch mixes incompatible queries "
                    f"({kind}/{params} vs {req.app}/{req.params})"
                )
        if kind == "bfs":
            return self._execute_bfs(graph, requests)
        if kind in ("sssp", "ppr"):
            return self._execute_per_source(graph, requests)
        if kind == "pr":
            return self._execute_shared(graph, requests)
        if kind in SAMPLING_APPS:
            return self._execute_sampling(graph, requests)
        raise InvalidParameterError(f"unknown serve app {kind!r}")

    def _execute_bfs(
        self, graph: CSRGraph, requests: list[QueryRequest]
    ) -> BatchExecution:
        """All BFS queries of a batch ride MS-BFS bit-parallel runs."""
        sources = np.array([req.source for req in requests], dtype=np.int64)
        unique = np.unique(sources)
        row_of: dict[int, tuple[int, int]] = {}
        runs: list[RunResult] = []
        seconds = 0.0
        for start in range(0, unique.size, MAX_SOURCES):
            chunk = unique[start:start + MAX_SOURCES]
            result = self._run(graph, MultiSourceBFSApp(chunk))
            for row, src in enumerate(chunk.tolist()):
                row_of[src] = (len(runs), row)
            runs.append(result)
            seconds += result.seconds
        results = []
        for req in requests:
            run_idx, row = row_of[int(req.source)]  # type: ignore[arg-type]
            levels = runs[run_idx].result["levels"]
            results.append({"dist": np.asarray(levels[row]).copy()})
        return BatchExecution(results=results, sim_seconds=seconds, runs=runs)

    def _execute_per_source(
        self, graph: CSRGraph, requests: list[QueryRequest]
    ) -> BatchExecution:
        """One run per unique source; duplicate sources share it."""
        params = requests[0].param_dict()
        by_source: dict[int, dict[str, np.ndarray]] = {}
        runs: list[RunResult] = []
        seconds = 0.0
        for source in sorted({int(req.source) for req in requests}):  # type: ignore[arg-type]
            app = make_single_app(requests[0].app, params)
            result = self._run(graph, app, source)
            by_source[source] = result.result
            runs.append(result)
            seconds += result.seconds
        results = [
            {k: np.asarray(v).copy()
             for k, v in by_source[int(req.source)].items()}  # type: ignore[arg-type]
            for req in requests
        ]
        return BatchExecution(results=results, sim_seconds=seconds, runs=runs)

    def _execute_shared(
        self, graph: CSRGraph, requests: list[QueryRequest]
    ) -> BatchExecution:
        """Source-independent apps: one run answers the whole batch."""
        app = make_single_app(requests[0].app, requests[0].param_dict())
        result = self._run(graph, app)
        results = [
            {k: np.asarray(v).copy() for k, v in result.result.items()}
            for _ in requests
        ]
        return BatchExecution(
            results=results, sim_seconds=result.seconds, runs=[result]
        )

    def _execute_sampling(
        self, graph: CSRGraph, requests: list[QueryRequest]
    ) -> BatchExecution:
        """Sampling queries of a batch share one combined-app run.

        The combined app carries ``sources=`` (the batch's sorted unique
        query sources) and advances every source's streams together, so
        each level's expansion kernel gathers the *union* frontier once.
        Counter-based RNG keys every draw by ``(seed, source, ...)``,
        never by batch composition, so slicing the combined result per
        source reproduces each single-query oracle run bit for bit.
        """
        kind = requests[0].app
        params = requests[0].param_dict()
        unique = sorted({int(req.source) for req in requests})  # type: ignore[arg-type]
        sources = np.array(unique, dtype=np.int64)
        group_of = {src: g for g, src in enumerate(unique)}
        app = make_single_app(kind, {**params, "sources": sources})
        result = self._run(graph, app)
        self.metrics.count("sampling.queries", len(requests))
        self.metrics.count("sampling.coalesced_batches")
        self.metrics.count("sampling.batched_sources", sources.size)
        combined = result.result
        results: list[dict[str, np.ndarray]] = []
        if kind in ("walk", "node2vec"):
            walks = combined["walks"]
            per_source = walks.shape[0] // sources.size
            self.metrics.count("sampling.walks", walks.shape[0])
            for req in requests:
                g = group_of[int(req.source)]  # type: ignore[arg-type]
                rows = walks[g * per_source:(g + 1) * per_source]
                results.append({"walks": rows.copy()})
        elif kind == "sppr":
            estimates = combined["sppr"]
            self.metrics.count(
                "sampling.walks", app.num_walks * sources.size  # type: ignore[attr-defined]
            )
            for req in requests:
                g = group_of[int(req.source)]  # type: ignore[arg-type]
                results.append({"sppr": estimates[g].copy()})
        elif kind == "khop":
            nodes = combined["nodes"]
            offsets = combined["offsets"]
            group_offsets = combined["group_offsets"]
            self.metrics.count("sampling.khop_nodes", int(nodes.size))
            for req in requests:
                g = group_of[int(req.source)]  # type: ignore[arg-type]
                lo, hi = int(group_offsets[g]), int(group_offsets[g + 1])
                results.append({
                    "nodes": nodes[lo:hi].copy(),
                    "offsets": offsets[g].copy(),
                })
        else:  # pragma: no cover - dispatch guarantees membership
            raise InvalidParameterError(f"unknown sampling app {kind!r}")
        return BatchExecution(
            results=results, sim_seconds=result.seconds, runs=[result]
        )
