"""Asynchronous batched traversal query service.

The serving layer of the reproduction: typed query requests, a
micro-batcher that coalesces compatible queries into MS-BFS-style
batched kernels, a bounded-queue broker with a worker pool over the
simulated multi-GPU runtime, seeded closed-/open-loop load generators,
and the cluster tier — sharded replicas behind pluggable routing,
adaptive admission control and a graph-epoch-versioned result cache.
See the README "Serving"/"Scaling out" sections for the API tour and
DESIGN.md for why micro-batching preserves the cost model's
comparisons.
"""

from repro.serve.admission import (
    AdaptiveConcurrencyLimiter,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.batching import (
    Batch,
    BatchItem,
    MicroBatcher,
    batch_key,
    occupancy_mean,
)
from repro.serve.broker import (
    BrokerStats,
    PendingQuery,
    QueryBroker,
    raise_for_status,
)
from repro.serve.cache import (
    GraphStore,
    ResultCache,
    graph_fingerprint,
    result_cache_key,
)
from repro.serve.cluster import (
    EVENT_COMPLETION,
    EVENT_FLUSH,
    EVENT_UPDATE,
    ROUTING_POLICIES,
    ClusterBenchReport,
    ClusterPool,
    Router,
    event_order,
    publish_cluster_gauges,
    simulate_cluster_open_loop,
)
from repro.serve.executor import (
    BatchExecution,
    BatchExecutor,
    make_single_app,
    run_direct,
)
from repro.serve.pipelined import (
    PipelineConfig,
    PipelinedBatch,
    PipelinedExecutor,
    ReplicaPipeline,
)
from repro.serve.loadgen import (
    DEFAULT_MIX,
    DEFAULT_PARAMS,
    SAMPLING_MIX,
    ServeBenchReport,
    generate_queries,
    open_loop_arrivals,
    publish_report_gauges,
    run_closed_loop,
    sequential_baseline,
    simulate_open_loop,
    skew_sources,
)
from repro.serve.request import (
    SAMPLING_APPS,
    SERVE_APPS,
    SOURCE_APPS,
    QueryRequest,
    QueryResponse,
    QueryStatus,
    normalize_params,
)

__all__ = [
    "AdaptiveConcurrencyLimiter",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "Batch",
    "BatchExecution",
    "BatchExecutor",
    "BatchItem",
    "BrokerStats",
    "ClusterBenchReport",
    "ClusterPool",
    "DEFAULT_MIX",
    "DEFAULT_PARAMS",
    "EVENT_COMPLETION",
    "EVENT_FLUSH",
    "EVENT_UPDATE",
    "GraphStore",
    "MicroBatcher",
    "PendingQuery",
    "PipelineConfig",
    "PipelinedBatch",
    "PipelinedExecutor",
    "QueryBroker",
    "QueryRequest",
    "QueryResponse",
    "QueryStatus",
    "ROUTING_POLICIES",
    "ReplicaPipeline",
    "ResultCache",
    "Router",
    "SAMPLING_APPS",
    "SAMPLING_MIX",
    "SERVE_APPS",
    "SOURCE_APPS",
    "ServeBenchReport",
    "TokenBucket",
    "batch_key",
    "event_order",
    "generate_queries",
    "graph_fingerprint",
    "make_single_app",
    "normalize_params",
    "occupancy_mean",
    "open_loop_arrivals",
    "publish_cluster_gauges",
    "publish_report_gauges",
    "raise_for_status",
    "result_cache_key",
    "run_closed_loop",
    "run_direct",
    "sequential_baseline",
    "simulate_cluster_open_loop",
    "simulate_open_loop",
    "skew_sources",
]
