"""Asynchronous batched traversal query service.

The serving layer of the reproduction: typed query requests, a
micro-batcher that coalesces compatible queries into MS-BFS-style
batched kernels, a bounded-queue broker with a worker pool over the
simulated multi-GPU runtime, and seeded closed-/open-loop load
generators.  See the README "Serving" section for the API tour and
DESIGN.md for why micro-batching preserves the cost model's
comparisons.
"""

from repro.serve.batching import (
    Batch,
    BatchItem,
    MicroBatcher,
    batch_key,
    occupancy_mean,
)
from repro.serve.broker import (
    BrokerStats,
    PendingQuery,
    QueryBroker,
    raise_for_status,
)
from repro.serve.executor import (
    BatchExecution,
    BatchExecutor,
    make_single_app,
    run_direct,
)
from repro.serve.loadgen import (
    DEFAULT_MIX,
    DEFAULT_PARAMS,
    ServeBenchReport,
    generate_queries,
    open_loop_arrivals,
    publish_report_gauges,
    run_closed_loop,
    sequential_baseline,
    simulate_open_loop,
)
from repro.serve.request import (
    SERVE_APPS,
    QueryRequest,
    QueryResponse,
    QueryStatus,
    normalize_params,
)

__all__ = [
    "Batch",
    "BatchExecution",
    "BatchExecutor",
    "BatchItem",
    "BrokerStats",
    "DEFAULT_MIX",
    "DEFAULT_PARAMS",
    "MicroBatcher",
    "PendingQuery",
    "QueryBroker",
    "QueryRequest",
    "QueryResponse",
    "QueryStatus",
    "SERVE_APPS",
    "ServeBenchReport",
    "batch_key",
    "generate_queries",
    "make_single_app",
    "normalize_params",
    "occupancy_mean",
    "open_loop_arrivals",
    "publish_report_gauges",
    "raise_for_status",
    "run_closed_loop",
    "run_direct",
    "sequential_baseline",
    "simulate_open_loop",
]
