"""Sharded multi-replica serving: routing, admission, versioned caching.

:class:`ClusterPool` scales the single :class:`~repro.serve.broker
.QueryBroker` out to ``num_replicas`` broker+device replicas behind one
front door that adds three things a single broker does not have:

* **routing** — a pluggable policy (:data:`ROUTING_POLICIES`) picks the
  replica for every admitted query: ``round_robin`` spreads blindly,
  ``least_outstanding`` tracks per-replica queued work, ``affinity``
  hashes the batch key so compatible queries land on the same replica
  and keep coalescing.
* **adaptive admission** — per-client token buckets plus an AIMD
  concurrency limiter (:mod:`repro.serve.admission`) shed load *before*
  it costs device time, tighten under deadline misses and reopen on
  recovery.
* **a versioned result cache** — :mod:`repro.serve.cache` keys on graph
  epoch + fingerprint, so repeated hot queries are answered without any
  replica and a :class:`~repro.graph.dynamic.DynamicGraph` merge can
  never surface a stale read.

:func:`simulate_cluster_open_loop` is the deterministic virtual-time
twin (same batching policy, same admission and cache objects, virtual
clock), which is what the CI benchmark tier gates; the threaded pool is
for exercising the stack end to end.  Both uphold the serving
invariant: a response is either bit-identical to the direct oracle or a
structured non-``OK`` status — never a wrong answer.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.races import RaceDetector
from repro.analysis.races import instrument as races
from repro.core.scheduler import Scheduler
from repro.errors import AdmissionError, InvalidParameterError, ThrottledError
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.graph.dynamic import DynamicGraph
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.batching import BatchKey, batch_key
from repro.serve.broker import PendingQuery, QueryBroker
from repro.serve.cache import CacheKey, GraphStore, ResultCache, result_cache_key
from repro.serve.executor import BatchExecutor
from repro.serve.loadgen import _percentiles
from repro.serve.pipelined import (
    PipelineConfig,
    PipelinedExecutor,
    ReplicaPipeline,
)
from repro.serve.request import QueryRequest, QueryResponse, QueryStatus

#: Replica-selection policies understood by :class:`Router`.
ROUTING_POLICIES = ("round_robin", "least_outstanding", "affinity")

# ----------------------------------------------------------------------
# Event-ordering contract of the virtual-time loop
# ----------------------------------------------------------------------
# When several events fall due at the same virtual instant, the loop
# plays them in a pinned order: batch *completions* land their results
# (and fill the cache) first, then graph *updates* bump epochs and purge
# stale entries, then window *flushes* dispatch new batches — so a batch
# dispatched at time t always executes against every update due at t,
# and a completion never caches under an epoch bumped at the same
# instant.  The regression test in tests/serve/ pins these constants;
# new event sources (e.g. pipeline device events) must pick one of them
# rather than invent an ordering.
EVENT_COMPLETION = 0
EVENT_UPDATE = 1
EVENT_FLUSH = 2


def event_order(when: float, kind: int) -> tuple[float, int]:
    """Total order for simulator events: time first, then the pinned
    tie-break ``EVENT_COMPLETION < EVENT_UPDATE < EVENT_FLUSH``."""
    return (float(when), int(kind))


class Router:
    """Picks the replica index for one admitted query.

    Deterministic by construction: ``round_robin`` is a counter,
    ``least_outstanding`` breaks ties toward the lowest index, and
    ``affinity`` hashes the batch key with md5 (stable across processes,
    unlike ``hash()`` under ``PYTHONHASHSEED``).
    """

    def __init__(self, policy: str, num_replicas: int) -> None:
        if policy not in ROUTING_POLICIES:
            raise InvalidParameterError(
                f"unknown routing policy {policy!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if num_replicas < 1:
            raise InvalidParameterError("num_replicas must be >= 1")
        self.policy = policy
        self.num_replicas = int(num_replicas)
        self._next = 0

    @staticmethod
    def _stable_hash(key: BatchKey) -> int:
        digest = hashlib.md5(repr(key).encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def route(self, request: QueryRequest, outstanding: list[int]) -> int:
        if self.policy == "round_robin":
            replica = self._next % self.num_replicas
            self._next += 1
            return replica
        if self.policy == "least_outstanding":
            return int(min(
                range(self.num_replicas), key=lambda r: (outstanding[r], r)
            ))
        return self._stable_hash(batch_key(request)) % self.num_replicas


@dataclass
class ClusterBenchReport:
    """Summary of one clustered serving run (see ``to_dict`` for JSON)."""

    num_queries: int
    num_replicas: int
    routing: str
    num_batches: int
    batch_occupancy_mean: float
    makespan_seconds: float
    sim_seconds_total: float
    per_replica_sim_seconds: list[float]
    single_broker_seconds: float
    cache_hits: int
    cache_misses: int
    throttled: int
    shed: int
    graph_updates: int
    throttle_level: float
    concurrency_limit: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    status_counts: dict[str, int] = field(default_factory=dict)
    pipeline_enabled: bool = False
    pipeline_busy_seconds: float = 0.0
    pipeline_overlap_saved_seconds: float = 0.0
    pipeline_inflight_peak: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def throughput_qps(self) -> float:
        served = self.status_counts.get(QueryStatus.OK.value, 0)
        if self.makespan_seconds <= 0:
            return 0.0
        return served / self.makespan_seconds

    @property
    def replica_occupancy_mean(self) -> float:
        """Mean busy fraction of the replicas over the makespan."""
        if self.makespan_seconds <= 0 or not self.per_replica_sim_seconds:
            return 0.0
        busy = [
            s / self.makespan_seconds for s in self.per_replica_sim_seconds
        ]
        return float(np.mean(busy))

    @property
    def pipeline_speedup_vs_serial(self) -> float:
        """Device-time ratio: serial work submitted ÷ busy device time.

        ``sim_seconds_total`` is the work the batches would occupy a
        batch-at-a-time device for; ``pipeline_busy_seconds`` is how
        long the stream devices were actually busy.  >= 1.0 by the
        work-conserving schedule; 0.0 when pipelining is off.
        """
        if not self.pipeline_enabled or self.pipeline_busy_seconds <= 0:
            return 0.0
        return self.sim_seconds_total / self.pipeline_busy_seconds

    @property
    def speedup_vs_single_broker(self) -> float:
        """Device-time ratio: single-broker sim seconds ÷ cluster's.

        Both sides serve the identical request/arrival trace, so the
        ratio isolates what the cluster tier adds (the cache answering
        repeats for free) from what batching already provides.  0.0
        means "no baseline supplied".
        """
        if self.single_broker_seconds <= 0:
            return 0.0
        if self.sim_seconds_total <= 0:
            return float("inf")
        return self.single_broker_seconds / self.sim_seconds_total

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_queries": self.num_queries,
            "num_replicas": self.num_replicas,
            "routing": self.routing,
            "num_batches": self.num_batches,
            "batch_occupancy_mean": self.batch_occupancy_mean,
            "makespan_seconds": self.makespan_seconds,
            "sim_seconds_total": self.sim_seconds_total,
            "per_replica_sim_seconds": list(self.per_replica_sim_seconds),
            "single_broker_seconds": self.single_broker_seconds,
            "speedup_vs_single_broker": self.speedup_vs_single_broker,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
            "throttled": self.throttled,
            "shed": self.shed,
            "graph_updates": self.graph_updates,
            "throttle_level": self.throttle_level,
            "concurrency_limit": self.concurrency_limit,
            "replica_occupancy_mean": self.replica_occupancy_mean,
            "throughput_qps": self.throughput_qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "status_counts": dict(self.status_counts),
            "pipeline_enabled": self.pipeline_enabled,
            "pipeline_busy_seconds": self.pipeline_busy_seconds,
            "pipeline_overlap_saved_seconds":
                self.pipeline_overlap_saved_seconds,
            "pipeline_inflight_peak": self.pipeline_inflight_peak,
            "pipeline_speedup_vs_serial": self.pipeline_speedup_vs_serial,
        }


def publish_cluster_gauges(
    metrics: MetricsRegistry, report: ClusterBenchReport
) -> None:
    """Mirror a cluster bench report into the ``cluster.*`` gauges."""
    metrics.set_gauge("cluster.cache_hit_ratio", report.cache_hit_ratio)
    metrics.set_gauge("cluster.throttle_level", report.throttle_level)
    metrics.set_gauge(
        "cluster.concurrency_limit", float(report.concurrency_limit)
    )
    metrics.set_gauge(
        "cluster.replica_occupancy_mean", report.replica_occupancy_mean
    )
    metrics.set_gauge("cluster.latency_p50", report.latency_p50)
    metrics.set_gauge("cluster.latency_p95", report.latency_p95)
    metrics.set_gauge("cluster.latency_p99", report.latency_p99)
    metrics.set_gauge("cluster.throughput_qps", report.throughput_qps)
    metrics.set_gauge(
        "cluster.speedup_vs_single_broker", report.speedup_vs_single_broker
    )
    if report.pipeline_enabled:
        metrics.set_gauge(
            "pipeline.busy_seconds", report.pipeline_busy_seconds
        )
        metrics.set_gauge(
            "pipeline.overlap_saved_seconds",
            report.pipeline_overlap_saved_seconds,
        )
        metrics.set_gauge(
            "pipeline.inflight_peak", float(report.pipeline_inflight_peak)
        )
        metrics.set_gauge(
            "pipeline.speedup_vs_serial", report.pipeline_speedup_vs_serial
        )


# ----------------------------------------------------------------------
# Deterministic virtual-time simulator
# ----------------------------------------------------------------------


@dataclass
class _Member:
    """One admitted query inside the simulator."""

    index: int
    request: QueryRequest
    arrival: float
    deadline: float | None


@dataclass
class _OpenBatch:
    """A forming batch on one replica (mirrors MicroBatcher policy)."""

    replica: int
    key: BatchKey
    open_time: float
    close_time: float
    members: list[_Member]


@dataclass
class _Completion:
    """An executed batch whose results land at ``finish``."""

    finish: float
    members: list[_Member]
    results: list[dict[str, np.ndarray]]
    cache_keys: list[CacheKey]
    batch_id: int
    share: float


def _busy_total(pipes: list[ReplicaPipeline], sim_total: float) -> float:
    """Summed device busy time, clamped to the serial device total.

    Busy time is a union of intervals whose endpoints accumulate node
    durations in a different order than the per-batch totals, so it can
    exceed ``sim_total`` by a few ulps even though busy <= work holds
    exactly in real arithmetic.  Clamp the noise: it would otherwise
    leak a speedup fractionally below 1.0 out of a run with no overlap.
    """
    return min(sum(p.device.busy_seconds for p in pipes), sim_total)


def simulate_cluster_open_loop(
    graphs: Mapping[str, CSRGraph | DynamicGraph] | GraphStore,
    requests: list[QueryRequest],
    arrivals: np.ndarray,
    scheduler_factory: Callable[[], Scheduler],
    *,
    num_replicas: int = 2,
    routing: str = "least_outstanding",
    batch_window: float = 0.01,
    max_batch_size: int = 64,
    cache_capacity: int = 1024,
    admission: AdmissionConfig | None = None,
    clients: list[str] | None = None,
    updates: list[tuple[float, str, Any, Any]] | None = None,
    executor: BatchExecutor | None = None,
    single_broker_seconds: float = 0.0,
    pipeline: PipelineConfig | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[list[QueryResponse], ClusterBenchReport]:
    """Deterministic virtual-time replay of the clustered service.

    The policy objects are the production ones (`MicroBatcher` windowing
    re-derived per replica, :class:`ResultCache`,
    :class:`AdmissionController`); only the clock is virtual, so equal
    traffic always yields byte-equal responses and the benchmark tier
    can be gated in CI.

    ``updates`` schedules mid-stream dynamic-graph merges as
    ``(virtual_time, handle, src_array, dst_array)`` tuples; each bumps
    the handle's epoch, purges its stale cache entries, and re-snapshots
    the graph served to later batches.  A batch executes against the
    snapshot current at its *dispatch* time and its results are cached
    under that snapshot's epoch — in-flight work can never pollute a
    newer epoch.  ``single_broker_seconds`` (total sim-device seconds of
    :func:`~repro.serve.loadgen.simulate_open_loop` over the same trace)
    feeds the report's speedup; pass 0.0 to skip the comparison.

    ``pipeline`` (a :class:`~repro.serve.pipelined.PipelineConfig` with
    any knob off its synchronous default) switches each replica from
    batch-at-a-time execution to a stream device with an in-flight
    admission window.  Responses are bit-identical either way — batches
    still form, snapshot, and execute identically at dispatch time; only
    the virtual timeline of the device changes.  One semantic nuance:
    with pipelining on, the pre-execution deadline check uses the
    batch's flush time (the device-start instant is not known until
    admission), so queueing delay surfaces as a post-execution timeout
    instead.
    """
    if num_replicas < 1:
        raise InvalidParameterError("num_replicas must be >= 1")
    if batch_window < 0:
        raise InvalidParameterError("batch_window must be >= 0")
    if max_batch_size < 1:
        raise InvalidParameterError("max_batch_size must be >= 1")
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.shape != (len(requests),):
        raise InvalidParameterError(
            f"need one arrival per request, got {arrivals.shape} "
            f"for {len(requests)} requests"
        )
    if clients is not None and len(clients) != len(requests):
        raise InvalidParameterError("need one client class per request")
    registry = metrics if metrics is not None else NULL_REGISTRY
    store = graphs if isinstance(graphs, GraphStore) else GraphStore(graphs)
    cache = ResultCache(cache_capacity, metrics=registry)
    controller = AdmissionController(admission, metrics=registry)
    router = Router(routing, num_replicas)
    pipelined = pipeline is not None and pipeline.enabled
    if pipelined:
        if executor is None:
            executor = PipelinedExecutor(
                scheduler_factory, metrics=registry, config=pipeline
            )
        elif not isinstance(executor, PipelinedExecutor):
            raise InvalidParameterError(
                "pipeline= needs a PipelinedExecutor (or executor=None)"
            )
        pipes = [
            ReplicaPipeline(pipeline, metrics=registry)
            for _ in range(num_replicas)
        ]
    else:
        executor = executor or BatchExecutor(scheduler_factory)
        pipes = []

    pending_updates = sorted(
        updates or [], key=lambda u: float(u[0])
    )
    update_ptr = 0
    graph_updates = 0

    responses: dict[int, QueryResponse] = {}
    open_batches: dict[tuple[int, BatchKey], _OpenBatch] = {}
    completions: list[tuple[float, int, _Completion]] = []
    pipeline_pending: dict[tuple[int, int], _Completion] = {}
    seq = itertools.count()
    replica_free = np.zeros(num_replicas, dtype=np.float64)
    per_replica_sim = [0.0] * num_replicas
    outstanding = [0] * num_replicas
    total_outstanding = 0
    sim_total = 0.0
    batch_sizes: list[int] = []
    next_batch_id = 0

    def resolve_timeout(member: _Member, now: float, phase: str,
                        batch_id: int, size: int) -> None:
        nonlocal total_outstanding
        outstanding[_replica_of[member.index]] -= 1
        total_outstanding -= 1
        controller.on_overload()
        responses[member.index] = QueryResponse(
            request_id=member.index,
            app=member.request.app,
            status=QueryStatus.TIMEOUT,
            error=f"deadline exceeded {phase}",
            error_type="DeadlineExceededError",
            batch_id=batch_id,
            batch_size=size,
            latency_seconds=now - member.arrival,
        )

    _replica_of: dict[int, int] = {}

    def dispatch(batch: _OpenBatch, ready: float) -> None:
        nonlocal sim_total, next_batch_id
        replica = batch.replica
        # With pipelining the device-start instant is unknown until the
        # window admits the batch; the pre-execution check then uses the
        # flush time and queueing delay is caught post-execution.
        start = (
            ready if pipelined
            else max(ready, float(replica_free[replica]))
        )
        batch_id = next_batch_id
        next_batch_id += 1
        live = []
        for member in batch.members:
            if member.deadline is not None and start > member.deadline:
                resolve_timeout(
                    member, start, "before execution", batch_id, 0
                )
            else:
                live.append(member)
        if not live:
            return
        handle = batch.key[0]
        graph = store.graph(handle)
        epoch = store.epoch(handle)
        fingerprint = store.fingerprint(handle)
        if pipelined:
            assert isinstance(executor, PipelinedExecutor)
            compiled = executor.compile(
                graph, [m.request for m in live]
            )
            execution = compiled.execution
            per_replica_sim[replica] += execution.sim_seconds
            sim_total += execution.sim_seconds
            batch_sizes.append(len(live))
            local = pipes[replica].submit(compiled.dag, ready)
            pipeline_pending[(replica, local)] = _Completion(
                finish=0.0,
                members=live,
                results=execution.results,
                cache_keys=[
                    result_cache_key(m.request, epoch, fingerprint)
                    for m in live
                ],
                batch_id=batch_id,
                share=execution.sim_seconds / len(live),
            )
            return
        execution = executor.execute(graph, [m.request for m in live])
        finish = start + execution.sim_seconds
        replica_free[replica] = finish
        per_replica_sim[replica] += execution.sim_seconds
        sim_total += execution.sim_seconds
        batch_sizes.append(len(live))
        heapq.heappush(completions, (
            finish,
            next(seq),
            _Completion(
                finish=finish,
                members=live,
                results=execution.results,
                cache_keys=[
                    result_cache_key(m.request, epoch, fingerprint)
                    for m in live
                ],
                batch_id=batch_id,
                share=execution.sim_seconds / len(live),
            ),
        ))

    def complete(done: _Completion) -> None:
        nonlocal total_outstanding
        size = len(done.members)
        for member, result, key in zip(
            done.members, done.results, done.cache_keys
        ):
            if member.deadline is not None and done.finish > member.deadline:
                resolve_timeout(
                    member, done.finish, "after execution",
                    done.batch_id, size,
                )
                continue
            outstanding[_replica_of[member.index]] -= 1
            total_outstanding -= 1
            controller.on_success()
            cache.put(key, result)
            responses[member.index] = QueryResponse(
                request_id=member.index,
                app=member.request.app,
                status=QueryStatus.OK,
                result=result,
                batch_id=done.batch_id,
                batch_size=size,
                sim_seconds=done.share,
                latency_seconds=done.finish - member.arrival,
            )

    def apply_stream_update(update: tuple[float, str, Any, Any]) -> None:
        nonlocal graph_updates
        _, handle, src, dst = update
        epoch = store.apply_edges(handle, src, dst)
        delta = store.last_delta(handle)
        if delta is None:
            cache.invalidate_graph(handle, keep_epoch=epoch)
        else:
            # Selective invalidation: provably-unaffected entries are
            # re-keyed to the new epoch and keep hitting.
            cache.apply_delta(
                handle, delta,
                new_epoch=epoch,
                new_fingerprint=store.fingerprint(handle),
            )
        registry.count("cluster.graph_updates")
        graph_updates += 1

    def advance(limit: float) -> None:
        """Play every due event ≤ ``limit`` in virtual-time order.

        Simultaneous events follow :func:`event_order`: completions,
        then updates, then flushes (the pinned tie-break contract).
        """
        nonlocal update_ptr
        while True:
            candidates: list[tuple[float, int]] = []
            if pipelined:
                due = [
                    t for t in (p.next_event_time() for p in pipes)
                    if t is not None
                ]
                if due:
                    candidates.append(
                        event_order(min(due), EVENT_COMPLETION)
                    )
            elif completions:
                candidates.append(
                    event_order(completions[0][0], EVENT_COMPLETION)
                )
            if update_ptr < len(pending_updates):
                candidates.append(event_order(
                    float(pending_updates[update_ptr][0]), EVENT_UPDATE
                ))
            if open_batches:
                flush = min(
                    open_batches.values(),
                    key=lambda b: (b.close_time, b.replica, repr(b.key)),
                )
                candidates.append(
                    event_order(flush.close_time, EVENT_FLUSH)
                )
            if not candidates:
                return
            when, kind = min(candidates)
            if when > limit:
                return
            if kind == EVENT_COMPLETION:
                if pipelined:
                    for replica, pipe in enumerate(pipes):
                        next_time = pipe.next_event_time()
                        if next_time is None or next_time > when:
                            continue
                        for local, finish in pipe.advance_to(when):
                            done = pipeline_pending.pop((replica, local))
                            done.finish = finish
                            complete(done)
                else:
                    _, _, done = heapq.heappop(completions)
                    complete(done)
            elif kind == EVENT_UPDATE:
                apply_stream_update(pending_updates[update_ptr])
                update_ptr += 1
            else:
                del open_batches[(flush.replica, flush.key)]
                dispatch(flush, ready=flush.close_time)

    order = np.argsort(arrivals, kind="stable")
    with registry.span(
        "cluster.run", replicas=num_replicas, routing=routing,
        queries=len(requests),
    ) as run_span:
        for i in order.tolist():
            t = float(arrivals[i])
            request = requests[i]
            client = clients[i] if clients is not None else "default"
            advance(t)
            registry.count("cluster.requests")
            decision = controller.check(t, total_outstanding, client)
            if decision is AdmissionDecision.THROTTLED:
                responses[i] = QueryResponse(
                    request_id=i,
                    app=request.app,
                    status=QueryStatus.SHED,
                    error=(
                        f"client class {client!r} over its token-bucket "
                        "rate limit"
                    ),
                    error_type=ThrottledError.__name__,
                )
                continue
            if decision is AdmissionDecision.OVERLOADED:
                responses[i] = QueryResponse(
                    request_id=i,
                    app=request.app,
                    status=QueryStatus.SHED,
                    error=(
                        "cluster over its adaptive concurrency limit "
                        f"({controller.concurrency_limit})"
                    ),
                    error_type=AdmissionError.__name__,
                )
                continue
            hit = cache.get(store.key_for(request))
            if hit is not None:
                controller.on_success()
                responses[i] = QueryResponse(
                    request_id=i,
                    app=request.app,
                    status=QueryStatus.OK,
                    result=hit,
                    latency_seconds=0.0,
                    extras={"cached": 1.0},
                )
                continue
            replica = router.route(request, outstanding)
            registry.count("cluster.routed")
            _replica_of[i] = replica
            outstanding[replica] += 1
            total_outstanding += 1
            deadline = (
                t + request.deadline_seconds
                if request.deadline_seconds is not None else None
            )
            member = _Member(
                index=i, request=request, arrival=t, deadline=deadline
            )
            bkey = batch_key(request)
            open_batch = open_batches.get((replica, bkey))
            if (
                open_batch is not None
                and t <= open_batch.close_time
                and len(open_batch.members) < max_batch_size
            ):
                open_batch.members.append(member)
                if len(open_batch.members) == max_batch_size:
                    # Filled before the window elapsed: dispatch at the
                    # filling arrival, exactly like MicroBatcher.
                    del open_batches[(replica, bkey)]
                    dispatch(
                        open_batch, ready=min(open_batch.close_time, t)
                    )
            else:
                open_batches[(replica, bkey)] = _OpenBatch(
                    replica=replica,
                    key=bkey,
                    open_time=t,
                    close_time=t + batch_window,
                    members=[member],
                )
        advance(float("inf"))
        run_span.set("batches", len(batch_sizes))
        run_span.set("cache_hits", cache.hits)
        run_span.set("sim_seconds_total", sim_total)
        if pipelined:
            run_span.set(
                "pipeline_busy_seconds",
                _busy_total(pipes, sim_total),
            )

    ordered = [responses[i] for i in range(len(requests))]
    makespan = max(
        (r.latency_seconds + float(arrivals[i])
         for i, r in enumerate(ordered)),
        default=0.0,
    )
    counts: dict[str, int] = {}
    for response in ordered:
        counts[response.status.value] = counts.get(
            response.status.value, 0
        ) + 1
    p50, p95, p99 = _percentiles([r.latency_seconds for r in ordered])
    report = ClusterBenchReport(
        num_queries=len(requests),
        num_replicas=num_replicas,
        routing=routing,
        num_batches=len(batch_sizes),
        batch_occupancy_mean=(
            float(np.mean(batch_sizes)) if batch_sizes else 0.0
        ),
        makespan_seconds=makespan,
        sim_seconds_total=sim_total,
        per_replica_sim_seconds=per_replica_sim,
        single_broker_seconds=float(single_broker_seconds),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        throttled=controller.throttled,
        shed=controller.overloaded,
        graph_updates=graph_updates,
        throttle_level=controller.throttle_level,
        concurrency_limit=controller.concurrency_limit,
        latency_p50=p50,
        latency_p95=p95,
        latency_p99=p99,
        status_counts=counts,
        pipeline_enabled=pipelined,
        pipeline_busy_seconds=(
            _busy_total(pipes, sim_total) if pipelined else 0.0
        ),
        pipeline_overlap_saved_seconds=(
            sum(p.device.overlap_saved_seconds for p in pipes)
            if pipelined else 0.0
        ),
        pipeline_inflight_peak=(
            max((p.inflight_peak for p in pipes), default=0)
            if pipelined else 0
        ),
    )
    if metrics is not None:
        publish_cluster_gauges(metrics, report)
    return ordered, report


# ----------------------------------------------------------------------
# Threaded replica pool
# ----------------------------------------------------------------------


class ClusterPool:
    """N broker replicas behind routing, admission and a shared cache.

    Construct via :func:`repro.api.cluster`.  ``submit`` never blocks on
    execution: a query is either shed with a structured response
    (throttled / over the adaptive concurrency limit), answered straight
    from the versioned cache, or routed to a replica broker whose
    :class:`~repro.serve.broker.PendingQuery` is returned as-is.  Graph
    updates applied through a registered
    :class:`~repro.graph.dynamic.DynamicGraph` propagate to every
    replica and invalidate the cache atomically with the epoch bump.
    """

    _guarded_by = {
        "_outstanding": "_lock",
        "_per_replica": "_lock",
        "graph_updates": "_lock",
    }

    def __init__(
        self,
        graphs: Mapping[str, CSRGraph | DynamicGraph] | GraphStore,
        scheduler_factory: Callable[[], Scheduler],
        *,
        num_replicas: int = 2,
        routing: str = "least_outstanding",
        batch_window: float = 0.01,
        max_batch_size: int = 64,
        num_workers: int = 2,
        queue_capacity: int = 256,
        num_gpus: int = 1,
        max_retries: int = 1,
        cache_capacity: int = 1024,
        admission: AdmissionConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        race_check: bool = False,
    ) -> None:
        if num_replicas < 1:
            raise InvalidParameterError("num_replicas must be >= 1")
        self.num_replicas = int(num_replicas)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # Activate before any lock, cache or replica exists so the whole
        # pool lifetime is tracked; join an already-active detector
        # rather than owning a second one.
        self.race_detector: RaceDetector | None = None
        self._owns_race_detector = False
        if race_check:
            self.race_detector = races.active_detector()
            if self.race_detector is None:
                self.race_detector = RaceDetector(metrics=self.metrics)
                races.activate(self.race_detector)
                self._owns_race_detector = True
        self.store = (
            graphs if isinstance(graphs, GraphStore) else GraphStore(graphs)
        )
        self.cache = ResultCache(cache_capacity, metrics=self.metrics)
        self.admission = AdmissionController(admission, metrics=self.metrics)
        self.router = Router(routing, num_replicas)
        self.routing = routing
        self._clock = clock
        self._lock = races.make_lock("cluster.lock")
        self._outstanding = 0
        self._per_replica = [0] * num_replicas
        self._local_ids = itertools.count()
        self.graph_updates = 0
        snapshot = self.store.snapshot()
        self.replicas = [
            QueryBroker(  # sage: allow(SAGE005) - replicas are the internal path
                snapshot,
                scheduler_factory,
                batch_window=batch_window,
                max_batch_size=max_batch_size,
                num_workers=num_workers,
                queue_capacity=queue_capacity,
                num_gpus=num_gpus,
                max_retries=max_retries,
                metrics=self.metrics,
                clock=clock,
                _internal=True,
            )
            for _ in range(num_replicas)
        ]
        self.store.subscribe(self._on_graph_update)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def submit(
        self, request: QueryRequest, *, client: str = "default"
    ) -> PendingQuery:
        """Admit, answer from cache, or route one query."""
        self.metrics.count("cluster.requests")
        now = self._clock()
        with self._lock:
            races.note_read(self, "_outstanding")
            decision = self.admission.check(now, self._outstanding, client)
        if decision is AdmissionDecision.THROTTLED:
            return self._resolved_shed(
                request,
                f"client class {client!r} over its token-bucket rate limit",
                ThrottledError.__name__,
            )
        if decision is AdmissionDecision.OVERLOADED:
            return self._resolved_shed(
                request,
                "cluster over its adaptive concurrency limit "
                f"({self.admission.concurrency_limit})",
                AdmissionError.__name__,
            )
        key = self.store.key_for(request)
        hit = self.cache.get(key)
        if hit is not None:
            self.admission.on_success()
            pending = PendingQuery(next(self._local_ids), request)
            pending._resolve(QueryResponse(
                request_id=pending.request_id,
                app=request.app,
                status=QueryStatus.OK,
                result=hit,
                latency_seconds=0.0,
                extras={"cached": 1.0},
            ))
            return pending
        with self._lock:
            races.note_write(self, "_outstanding")
            races.note_write(self, "_per_replica")
            replica = self.router.route(request, self._per_replica)
            self._outstanding += 1
            self._per_replica[replica] += 1
        self.metrics.count("cluster.routed")
        pending = self.replicas[replica].submit(request)
        pending.add_done_callback(
            lambda response: self._on_done(replica, key, request, response)
        )
        return pending

    def submit_many(
        self, requests: list[QueryRequest], *, client: str = "default"
    ) -> list[PendingQuery]:
        return [self.submit(request, client=client) for request in requests]

    def _resolved_shed(
        self, request: QueryRequest, detail: str, error_type: str
    ) -> PendingQuery:
        pending = PendingQuery(next(self._local_ids), request)
        pending._resolve(QueryResponse(
            request_id=pending.request_id,
            app=request.app,
            status=QueryStatus.SHED,
            error=detail,
            error_type=error_type,
        ))
        return pending

    # ------------------------------------------------------------------
    # Feedback path
    # ------------------------------------------------------------------

    def _on_done(
        self,
        replica: int,
        key: CacheKey,
        request: QueryRequest,
        response: QueryResponse,
    ) -> None:
        with self._lock:
            races.note_write(self, "_outstanding")
            races.note_write(self, "_per_replica")
            self._outstanding -= 1
            self._per_replica[replica] -= 1
        if response.status is QueryStatus.OK:
            # Fill only when no graph update raced this flight: a result
            # computed on an ambiguous snapshot must not enter the cache.
            if (
                response.result is not None
                and self.store.key_for(request) == key
            ):
                self.cache.put(key, response.result)
            self.admission.on_success()
        elif response.status in (QueryStatus.TIMEOUT, QueryStatus.SHED):
            self.admission.on_overload()
        # ERROR is a worker fault, not a load signal: no feedback.

    def _on_graph_update(
        self, handle: str, csr: CSRGraph, epoch: int, delta: GraphDelta
    ) -> None:
        # Replica-local CSR patching: each broker applies the structured
        # delta to its own copy (bit-identical to the store's new CSR)
        # instead of receiving a full snapshot swap.
        for broker in self.replicas:
            broker.patch_graph(handle, delta, csr)
        self.cache.apply_delta(
            handle, delta,
            new_epoch=epoch,
            new_fingerprint=self.store.fingerprint(handle),
        )
        self.metrics.count("cluster.graph_updates")
        with self._lock:
            races.note_write(self, "graph_updates")
            self.graph_updates += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        for broker in self.replicas:
            broker.close(drain=drain)
        self.metrics.set_gauge(
            "cluster.cache_hit_ratio", self.cache.hit_ratio
        )
        self.metrics.set_gauge(
            "cluster.throttle_level", self.admission.throttle_level
        )
        self.metrics.set_gauge(
            "cluster.concurrency_limit",
            float(self.admission.concurrency_limit),
        )
        if self._owns_race_detector:
            self._owns_race_detector = False
            races.deactivate()
            assert self.race_detector is not None
            self.race_detector.finalize()

    def __enter__(self) -> "ClusterPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)
