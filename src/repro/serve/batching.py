"""Micro-batching: coalesce compatible queries into one batched kernel.

Two queries are *compatible* when they target the same graph with the
same application and parameters (:func:`batch_key`) — exactly the
condition under which the MS-BFS-style batched executor answers them
with one traversal.  :class:`MicroBatcher` is pure and deterministic: it
maps a list of timestamped arrivals to a list of :class:`Batch` objects
without touching a clock, so the threaded broker and the virtual-time
load simulator share one batching policy and the differential tests can
sweep batch boundaries reproducibly.

Policy (per compatibility key, arrivals in time order): the first
pending query *opens* a batch at its arrival time; queries arriving
within ``window_seconds`` of the open join it, up to
``max_batch_size``; the batch becomes *ready* when the window elapses or
the batch fills, whichever is first.  A later arrival then opens the
next batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import InvalidParameterError
from repro.serve.request import QueryRequest

#: A compatibility key: (graph handle, app kind, normalized params).
BatchKey = tuple[str, str, tuple[tuple[str, Any], ...]]


def batch_key(request: QueryRequest) -> BatchKey:
    """Queries coalesce iff they share this key (source excluded)."""
    return (request.graph, request.app, request.params)


@dataclass(frozen=True)
class BatchItem:
    """One admitted query, tagged with its arrival time and identity."""

    index: int
    arrival: float
    request: QueryRequest


@dataclass
class Batch:
    """A group of compatible queries dispatched as one batched run."""

    batch_id: int
    key: BatchKey
    items: list[BatchItem]
    open_time: float
    ready_time: float

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def requests(self) -> list[QueryRequest]:
        return [item.request for item in self.items]


class MicroBatcher:
    """Deterministic batching policy over timestamped arrivals."""

    def __init__(self, window_seconds: float, max_batch_size: int) -> None:
        if window_seconds < 0:
            raise InvalidParameterError("window_seconds must be >= 0")
        if max_batch_size < 1:
            raise InvalidParameterError("max_batch_size must be >= 1")
        self.window_seconds = float(window_seconds)
        self.max_batch_size = int(max_batch_size)

    def form_batches(
        self, arrivals: list[tuple[float, QueryRequest]]
    ) -> list[Batch]:
        """Batch the full arrival sequence (offline / virtual-time mode).

        Batch ids are assigned in dispatch order — sorted by
        ``(ready_time, open_time, key)`` — so equal traffic always
        produces the same batch identities regardless of the dict-group
        iteration order.
        """
        items = [
            BatchItem(index=i, arrival=float(t), request=req)
            for i, (t, req) in enumerate(arrivals)
        ]
        by_key: dict[BatchKey, list[BatchItem]] = {}
        for item in sorted(items, key=lambda it: (it.arrival, it.index)):
            by_key.setdefault(batch_key(item.request), []).append(item)

        batches: list[Batch] = []
        for key, group in by_key.items():
            start = 0
            while start < len(group):
                opener = group[start]
                close = opener.arrival + self.window_seconds
                end = start + 1
                while (
                    end < len(group)
                    and end - start < self.max_batch_size
                    and group[end].arrival <= close
                ):
                    end += 1
                members = group[start:end]
                if len(members) == self.max_batch_size:
                    # Filled before the window elapsed: dispatch at the
                    # filling member's arrival instead of waiting it out.
                    ready = min(close, members[-1].arrival)
                else:
                    ready = close
                batches.append(
                    Batch(
                        batch_id=-1,
                        key=key,
                        items=members,
                        open_time=opener.arrival,
                        ready_time=ready,
                    )
                )
                start = end

        batches.sort(key=lambda b: (b.ready_time, b.open_time, repr(b.key)))
        for bid, batch in enumerate(batches):
            batch.batch_id = bid
        return batches


def occupancy_mean(batches: list[Batch]) -> float:
    """Mean queries per batch (0.0 for empty traffic)."""
    if not batches:
        return 0.0
    return sum(b.size for b in batches) / len(batches)
