"""The asynchronous query broker: admission, batching, worker dispatch.

:class:`QueryBroker` is the serving front door.  Clients ``submit``
typed :class:`~repro.serve.request.QueryRequest` objects and get a
:class:`PendingQuery` future back; a pool of worker threads claims the
queue head, waits out the micro-batching window, coalesces every
compatible queued query (same graph + app + params, up to the batch
cap) and dispatches the batch to a
:class:`~repro.serve.executor.BatchExecutor` over simulated devices.

Overload and failure handling is structural, never silent:

* **admission control** — the queue is bounded; a submit against a full
  queue is *shed* immediately (``SHED`` response, ``serve.shed``).
* **deadlines** — a query whose absolute deadline passes before (or
  during) execution resolves to ``TIMEOUT``; late results are dropped,
  so a client never observes a wrong-but-on-time answer.
* **worker failures** — an executor exception fails only its batch;
  affected queries are re-queued up to ``max_retries`` times and then
  rejected with a structured ``ERROR`` response carrying the original
  exception type; queries in other batches are untouched.

Every lifecycle event is counted/spanned through :mod:`repro.obs` under
the ``serve.*`` names registered in :mod:`repro.obs.names`.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.races import RaceDetector
from repro.analysis.races import instrument as races
from repro.core.scheduler import Scheduler
from repro.deprecation import warn_once
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    InvalidParameterError,
    ServiceError,
    WorkerFailureError,
)
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta, patch_csr
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve.batching import batch_key
from repro.serve.executor import BatchExecutor
from repro.serve.request import QueryRequest, QueryResponse, QueryStatus


class PendingQuery:
    """Future handed back by :meth:`QueryBroker.submit`."""

    _guarded_by = {
        "_response": "_callback_lock",
        "_callbacks": "_callback_lock",
    }

    def __init__(self, request_id: int, request: QueryRequest) -> None:
        self.request_id = request_id
        self.request = request
        self._event = races.make_event("pending.event")
        self._response: QueryResponse | None = None
        self._callbacks: list[Callable[[QueryResponse], None]] = []
        self._callback_lock = races.make_lock("pending.callback")

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryResponse:
        """Block until the response is available."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query {self.request_id} still pending after {timeout}s"
            )
        races.note_read(self, "_response")
        # Published before the event was set, so the lock-free read is
        # ordered by the event wait above.
        response = self._response  # sage: allow(SAGE006)
        assert response is not None
        return response

    def add_done_callback(
        self, callback: Callable[[QueryResponse], None]
    ) -> None:
        """Call ``callback(response)`` when the query resolves.

        Invoked synchronously by the resolving thread; if the query has
        already resolved, the callback fires immediately.  The cluster
        layer uses this for cache fills and admission feedback.
        """
        with self._callback_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
            races.note_read(self, "_response")
            response = self._response
        assert response is not None
        callback(response)

    def _resolve(self, response: QueryResponse) -> None:
        with self._callback_lock:
            races.note_write(self, "_response")
            self._response = response
            self._event.set()
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(response)


def raise_for_status(response: QueryResponse) -> QueryResponse:
    """Map a non-``OK`` response to its typed :class:`ServiceError`."""
    if response.status is QueryStatus.OK:
        return response
    detail = response.error or response.status.value
    if response.status is QueryStatus.SHED:
        raise AdmissionError(detail)
    if response.status is QueryStatus.TIMEOUT:
        raise DeadlineExceededError(detail)
    raise WorkerFailureError(f"{response.error_type}: {detail}")


@dataclass
class _Entry:
    """One admitted query riding the broker queue."""

    pending: PendingQuery
    arrival: float
    deadline: float | None
    retries: int = 0

    @property
    def request(self) -> QueryRequest:
        return self.pending.request


@dataclass
class BrokerStats:
    """Aggregates the broker folds into gauges at :meth:`~QueryBroker.close`."""

    queue_depth_peak: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)


class QueryBroker:
    """Bounded-queue, micro-batching broker over a worker pool."""

    _guarded_by = {
        "_queue": ("_lock", "_cond"),
        "_closed": ("_lock", "_cond"),
        "_inflight": ("_lock", "_cond"),
        "_next_request_id": ("_lock", "_cond"),
        "_next_batch_id": ("_lock", "_cond"),
        "graphs": ("_lock", "_cond"),
    }

    def __init__(
        self,
        graphs: Mapping[str, CSRGraph],
        scheduler_factory: Callable[[], Scheduler],
        *,
        batch_window: float = 0.01,
        max_batch_size: int = 64,
        num_workers: int = 2,
        queue_capacity: int = 256,
        num_gpus: int = 1,
        max_retries: int = 1,
        executor: BatchExecutor | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        race_check: bool = False,
        _internal: bool = False,
    ) -> None:
        if not _internal:
            warn_once(
                "QueryBroker",
                "constructing QueryBroker directly is deprecated; use "
                "repro.api.serve(...) which wires graphs, scheduler and "
                "metrics consistently",
            )
        if batch_window < 0:
            raise InvalidParameterError("batch_window must be >= 0")
        if max_batch_size < 1:
            raise InvalidParameterError("max_batch_size must be >= 1")
        if num_workers < 1:
            raise InvalidParameterError("num_workers must be >= 1")
        if queue_capacity < 1:
            raise InvalidParameterError("queue_capacity must be >= 1")
        if max_retries < 0:
            raise InvalidParameterError("max_retries must be >= 0")
        self.graphs = dict(graphs)
        self.batch_window = float(batch_window)
        self.max_batch_size = int(max_batch_size)
        self.num_workers = int(num_workers)
        self.queue_capacity = int(queue_capacity)
        self.max_retries = int(max_retries)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # Activate before any lock or worker is created so the whole
        # broker lifetime is tracked.  If a detector is already active
        # (an enclosing ``instrumented`` block or pytest fixture), join
        # it instead of owning a second one.
        self.race_detector: RaceDetector | None = None
        self._owns_race_detector = False
        if race_check:
            self.race_detector = races.active_detector()
            if self.race_detector is None:
                self.race_detector = RaceDetector(metrics=self.metrics)
                races.activate(self.race_detector)
                self._owns_race_detector = True
        self.executor = executor or BatchExecutor(
            scheduler_factory, num_gpus=num_gpus, metrics=self.metrics
        )
        self._clock = clock
        self._queue: deque[_Entry] = deque()
        # Reentrant: _finalize (which appends to stats under the lock)
        # is reachable from submit/close while the condition is held.
        self._lock = races.make_rlock("broker.lock")
        self._cond = races.make_condition(self._lock, "broker.cond")
        self._closed = False
        self._inflight = 0
        self._next_request_id = 0
        self._next_batch_id = 0
        self.stats = BrokerStats()
        self._start_time = self._clock()
        self._run_span = self.metrics.span(
            "serve.run", workers=self.num_workers,
            batch_window=self.batch_window,
            max_batch_size=self.max_batch_size,
        )
        self._run_span.__enter__()
        self._workers = [
            races.spawn_thread(
                self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(self.num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def submit(self, request: QueryRequest) -> PendingQuery:
        """Admit (or shed) one query; never blocks on execution."""
        with self._lock:
            races.note_read(self, "graphs")
            known = request.graph in self.graphs
            registered = sorted(self.graphs) if not known else []
        if not known:
            raise InvalidParameterError(
                f"unknown graph handle {request.graph!r}; "
                f"registered: {registered}"
            )
        self.metrics.count("serve.requests")
        now = self._clock()
        with self._cond:
            if self._closed:
                raise ServiceError("broker is closed")
            request_id = self._next_request_id
            self._next_request_id += 1
            pending = PendingQuery(request_id, request)
            if len(self._queue) >= self.queue_capacity:
                self.metrics.count("serve.shed")
                self._finalize(
                    pending,
                    QueryResponse(
                        request_id=request_id,
                        app=request.app,
                        status=QueryStatus.SHED,
                        error=(
                            f"queue full ({self.queue_capacity} pending); "
                            "request shed at admission"
                        ),
                        error_type=AdmissionError.__name__,
                    ),
                    latency=0.0,
                )
                return pending
            deadline = (
                now + request.deadline_seconds
                if request.deadline_seconds is not None else None
            )
            self._queue.append(
                _Entry(pending=pending, arrival=now, deadline=deadline)
            )
            self.metrics.count("serve.accepted")
            depth = len(self._queue)
            if depth > self.stats.queue_depth_peak:
                races.note_write(self.stats, "queue_depth_peak")
                self.stats.queue_depth_peak = depth
            self._cond.notify_all()
        return pending

    def submit_many(
        self, requests: list[QueryRequest]
    ) -> list[PendingQuery]:
        return [self.submit(request) for request in requests]

    def update_graph(self, handle: str, graph: CSRGraph) -> None:
        """Swap in a fresh snapshot for ``handle``.

        The cluster tier's graph-update fanout: later batches execute
        against the new snapshot, in-flight batches keep the one they
        grabbed (under the same lock) at dispatch.
        """
        with self._lock:
            races.note_write(self, "graphs")
            self.graphs[handle] = graph

    def patch_graph(
        self, handle: str, delta: GraphDelta, snapshot: CSRGraph
    ) -> None:
        """Apply a structured delta to the local CSR instead of swapping.

        The replica-local half of the cluster's delta fanout: the
        broker's own copy of ``handle`` is patched with one sorted-merge
        pass (:func:`~repro.graph.delta.patch_csr`), which is
        bit-identical to the producing merge's output — no full snapshot
        needs shipping.  ``snapshot`` (the store's authoritative new
        CSR) is the fallback when the local copy is missing or from a
        different vertex set, so the swap semantics of
        :meth:`update_graph` are never weaker.
        """
        with self._lock:
            races.note_write(self, "graphs")
            current = self.graphs.get(handle)
            if (
                current is None
                or current.num_nodes != delta.num_nodes
            ):
                self.graphs[handle] = snapshot
                return
            self.graphs[handle] = patch_csr(current, delta)
        self.metrics.count("delta.replica_patches")

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _claim_batch(self) -> list[_Entry] | None:
        """Claim the queue head and its compatible followers.

        Blocks until the head's batching window elapses, the batch cap
        fills, or the broker closes (which short-circuits the window so
        drain is prompt).  Returns ``None`` when the broker is closed
        and the queue is empty.
        """
        with self._cond:
            while True:
                if not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                head = self._queue[0]
                key = batch_key(head.request)
                same = [
                    entry for entry in self._queue
                    if batch_key(entry.request) == key
                ]
                now = self._clock()
                window_closes = head.arrival + self.batch_window
                if (
                    len(same) >= self.max_batch_size
                    or now >= window_closes
                    or self._closed
                ):
                    batch = same[:self.max_batch_size]
                    taken = set(map(id, batch))
                    remaining = [
                        entry for entry in self._queue
                        if id(entry) not in taken
                    ]
                    self._queue.clear()
                    self._queue.extend(remaining)
                    self._inflight += 1
                    self._cond.notify_all()
                    return batch
                self._cond.wait(timeout=window_closes - now)

    def _worker_loop(self) -> None:
        while True:
            batch = self._claim_batch()
            if batch is None:
                return
            try:
                self._execute_batch(batch)
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _execute_batch(self, batch: list[_Entry]) -> None:
        with self._lock:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
        # Pre-execution deadline sweep: expired queries must not consume
        # device time (and must never receive a late result).
        now = self._clock()
        live: list[_Entry] = []
        for entry in batch:
            if entry.deadline is not None and now > entry.deadline:
                self._resolve_timeout(entry, batch_id, "before execution")
            else:
                live.append(entry)
        if not live:
            return
        with self._lock:
            # Snapshot under the lock: a cluster-tier graph swap
            # (GraphStore.update) may land concurrently, and list
            # appends on the stats aggregate come from every worker.
            races.note_read(self, "graphs")
            graph = self.graphs[live[0].request.graph]
            races.note_write(self.stats, "batch_sizes")
            self.stats.batch_sizes.append(len(live))
        requests = [entry.request for entry in live]
        self.metrics.count("serve.batches")
        self.metrics.count("serve.batched_queries", len(live))
        with self.metrics.span(
            "serve.batch", batch_id=batch_id,
            app=requests[0].app, graph=requests[0].graph, size=len(live),
        ) as batch_span:
            try:
                execution = self.executor.execute(graph, requests)
            except Exception as exc:  # noqa: BLE001 - fault boundary
                batch_span.set("failed", True)
                self._handle_batch_failure(live, exc)
                return
            batch_span.set("sim_seconds", execution.sim_seconds)
            batch_span.set("runs", execution.num_runs)
        finish = self._clock()
        share = execution.sim_seconds / len(live)
        for entry, result in zip(live, execution.results):
            if entry.deadline is not None and finish > entry.deadline:
                # The answer exists but arrived late: surface a timeout,
                # never a stale-looking success.
                self._resolve_timeout(entry, batch_id, "after execution")
                continue
            self._finalize(
                entry.pending,
                QueryResponse(
                    request_id=entry.pending.request_id,
                    app=entry.request.app,
                    status=QueryStatus.OK,
                    result=result,
                    batch_id=batch_id,
                    batch_size=len(live),
                    sim_seconds=share,
                    latency_seconds=finish - entry.arrival,
                    retries=entry.retries,
                ),
                latency=finish - entry.arrival,
            )

    def _handle_batch_failure(
        self, batch: list[_Entry], exc: Exception
    ) -> None:
        """Retry or reject the failed batch's queries, one by one."""
        requeue: list[_Entry] = []
        now = self._clock()
        for entry in batch:
            if entry.retries < self.max_retries:
                entry.retries += 1
                self.metrics.count("serve.retries")
                requeue.append(entry)
            else:
                self.metrics.count("serve.errors")
                self._finalize(
                    entry.pending,
                    QueryResponse(
                        request_id=entry.pending.request_id,
                        app=entry.request.app,
                        status=QueryStatus.ERROR,
                        error=f"batch execution failed: {exc}",
                        error_type=type(exc).__name__,
                        retries=entry.retries,
                        latency_seconds=now - entry.arrival,
                    ),
                    latency=now - entry.arrival,
                )
        if requeue:
            with self._cond:
                self._queue.extend(requeue)
                self._cond.notify_all()

    def _resolve_timeout(
        self, entry: _Entry, batch_id: int, phase: str
    ) -> None:
        now = self._clock()
        self.metrics.count("serve.timeouts")
        self._finalize(
            entry.pending,
            QueryResponse(
                request_id=entry.pending.request_id,
                app=entry.request.app,
                status=QueryStatus.TIMEOUT,
                error=f"deadline exceeded {phase}",
                error_type=DeadlineExceededError.__name__,
                batch_id=batch_id,
                retries=entry.retries,
                latency_seconds=now - entry.arrival,
            ),
            latency=now - entry.arrival,
        )

    def _finalize(
        self, pending: PendingQuery, response: QueryResponse, *,
        latency: float,
    ) -> None:
        self.metrics.count("serve.responses")
        with self._lock:
            races.note_write(self.stats, "latencies")
            self.stats.latencies.append(latency)
        with self.metrics.span(
            "serve.request", request_id=response.request_id,
            app=response.app, status=response.status.value,
        ) as sp:
            sp.set("latency_seconds", latency)
            sp.set("batch_id", response.batch_id)
        pending._resolve(response)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop the broker.  ``drain=True`` serves queued queries first;
        ``drain=False`` sheds them with structured responses."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    entry = self._queue.popleft()
                    self.metrics.count("serve.shed")
                    self._finalize(
                        entry.pending,
                        QueryResponse(
                            request_id=entry.pending.request_id,
                            app=entry.request.app,
                            status=QueryStatus.SHED,
                            error="broker closed before execution",
                            error_type=AdmissionError.__name__,
                        ),
                        latency=self._clock() - entry.arrival,
                    )
            self._cond.notify_all()
        for worker in self._workers:
            worker.join()
        self._publish_gauges()
        self._run_span.set("responses", len(self.stats.latencies))
        self._run_span.__exit__(None, None, None)
        if self._owns_race_detector:
            self._owns_race_detector = False
            races.deactivate()
            assert self.race_detector is not None
            self.race_detector.finalize()

    def _publish_gauges(self) -> None:
        elapsed = max(self._clock() - self._start_time, 1e-12)
        # Lock-free reads: every worker has been joined by close(), so
        # their writes happen-before this fold.
        races.note_read(self.stats, "queue_depth_peak")
        races.note_read(self.stats, "batch_sizes")
        races.note_read(self.stats, "latencies")
        self.metrics.set_gauge(
            "serve.queue_depth_peak", float(self.stats.queue_depth_peak)
        )
        if self.stats.batch_sizes:
            self.metrics.set_gauge(
                "serve.batch_occupancy_mean",
                float(np.mean(self.stats.batch_sizes)),
            )
        if self.stats.latencies:
            p50, p95, p99 = np.percentile(
                np.asarray(self.stats.latencies), [50, 95, 99]
            )
            self.metrics.set_gauge("serve.latency_p50", float(p50))
            self.metrics.set_gauge("serve.latency_p95", float(p95))
            self.metrics.set_gauge("serve.latency_p99", float(p99))
        self.metrics.set_gauge(
            "serve.throughput_qps", len(self.stats.latencies) / elapsed
        )

    def __enter__(self) -> "QueryBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)
