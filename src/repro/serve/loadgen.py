"""Load generation and serving benchmarks (closed- and open-loop).

Two execution modes share the query generator and the report format:

* :func:`simulate_open_loop` — a **deterministic virtual-time** model of
  the service: queries arrive on a fixed (seeded) Poisson schedule, the
  pure :class:`~repro.serve.batching.MicroBatcher` forms the exact same
  batches every run, and a greedy earliest-free-worker assignment plays
  the batches onto ``num_workers`` simulated devices.  All times are
  *simulated* seconds, so the serving benchmark tier can be gated in CI
  like every other trajectory metric.
* :func:`run_closed_loop` — drives the real threaded
  :class:`~repro.serve.broker.QueryBroker` with ``concurrency`` client
  threads (each submits, waits, repeats).  Wall-clock mode: useful for
  exercising the broker end to end, not for gating.

The speedup both report is against the **sequential baseline**: the sum
of one-query-at-a-time :func:`~repro.serve.executor.run_direct` oracle
runs over the identical query list.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.races import instrument as races
from repro.core.scheduler import Scheduler
from repro.errors import DeadlineExceededError, InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.obs import MetricsRegistry
from repro.serve.batching import MicroBatcher, occupancy_mean
from repro.serve.broker import QueryBroker
from repro.serve.executor import BatchExecutor, run_direct
from repro.serve.request import (
    SOURCE_APPS,
    QueryRequest,
    QueryResponse,
    QueryStatus,
)

#: Default per-app parameter presets used by the query generator.
DEFAULT_PARAMS: dict[str, dict[str, Any]] = {
    "bfs": {},
    "sssp": {},
    "pr": {"max_iterations": 10},
    "ppr": {"max_iterations": 10},
    "walk": {"num_walks": 4, "walk_length": 8, "seed": 7},
    "node2vec": {
        "num_walks": 4, "walk_length": 8, "seed": 7, "p": 2.0, "q": 0.5,
    },
    "khop": {"fanouts": (4, 3), "seed": 7},
    "sppr": {"num_walks": 256, "max_steps": 32, "damping": 0.85, "seed": 7},
}

#: Default app mix of the serving benchmark (BFS-heavy, as a traversal
#: service would be; PR rides along to exercise shared-run batching).
DEFAULT_MIX: dict[str, float] = {"bfs": 0.8, "pr": 0.1, "sssp": 0.1}

#: Sampling-service mix (GNN/embedding traffic): mostly walks, some
#: second-order node2vec, GNN k-hop mini-batches, and Monte Carlo PPR.
SAMPLING_MIX: dict[str, float] = {
    "walk": 0.5, "node2vec": 0.2, "khop": 0.2, "sppr": 0.1,
}


def generate_queries(
    graph_name: str,
    num_nodes: int,
    num_queries: int,
    *,
    mix: Mapping[str, float] | None = None,
    params: Mapping[str, dict[str, Any]] | None = None,
    deadline_seconds: float | None = None,
    seed: int = 0,
) -> list[QueryRequest]:
    """A seeded random query mix over one graph handle."""
    if num_queries < 1:
        raise InvalidParameterError("num_queries must be >= 1")
    mix = dict(mix if mix is not None else DEFAULT_MIX)
    presets = dict(DEFAULT_PARAMS)
    presets.update(params or {})
    kinds = sorted(mix)
    weights = np.array([mix[k] for k in kinds], dtype=np.float64)
    if weights.min() < 0 or weights.sum() <= 0:
        raise InvalidParameterError(f"invalid app mix {mix}")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(kinds), size=num_queries, p=weights / weights.sum())
    sources = rng.integers(0, num_nodes, size=num_queries)
    requests = []
    for kind_idx, source in zip(chosen.tolist(), sources.tolist()):
        kind = kinds[kind_idx]
        requests.append(
            QueryRequest(
                app=kind,
                graph=graph_name,
                source=int(source) if kind in SOURCE_APPS else None,
                params=tuple(sorted(presets.get(kind, {}).items())),
                deadline_seconds=deadline_seconds,
            )
        )
    return requests


def skew_sources(
    requests: list[QueryRequest],
    *,
    hot_set_size: int,
    hot_fraction: float,
    num_nodes: int,
    seed: int = 0,
) -> list[QueryRequest]:
    """Remap query sources onto a hot set (serving traffic is skewed).

    With probability ``hot_fraction`` a source-bearing query is redrawn
    from a fixed ``hot_set_size``-node hot set; otherwise it keeps its
    original (uniform) source.  This is the workload shape that makes a
    result cache earn its keep — repeated hot keys across the whole run,
    not just within one batching window.
    """
    if hot_set_size < 1:
        raise InvalidParameterError("hot_set_size must be >= 1")
    if not 0.0 <= hot_fraction <= 1.0:
        raise InvalidParameterError("hot_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    hot_set = rng.choice(num_nodes, size=min(hot_set_size, num_nodes),
                         replace=False)
    skewed: list[QueryRequest] = []
    for request in requests:
        if request.source is None:
            skewed.append(request)
            continue
        source = request.source
        if rng.random() < hot_fraction:
            source = int(rng.choice(hot_set))
        skewed.append(
            QueryRequest(
                app=request.app,
                graph=request.graph,
                source=source,
                params=request.params,
                deadline_seconds=request.deadline_seconds,
            )
        )
    return skewed


def open_loop_arrivals(
    num_queries: int, rate_qps: float, *, seed: int = 0
) -> np.ndarray:
    """Seeded Poisson arrival times (seconds), anchored at t=0."""
    if rate_qps <= 0:
        raise InvalidParameterError("rate_qps must be > 0")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_qps, size=num_queries)
    arrivals = np.cumsum(gaps)
    return arrivals - arrivals[0]


@dataclass
class ServeBenchReport:
    """Summary of one serving-benchmark run (see ``to_dict`` for JSON)."""

    mode: str
    num_queries: int
    num_batches: int
    batch_occupancy_mean: float
    makespan_seconds: float
    sequential_seconds: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    status_counts: dict[str, int] = field(default_factory=dict)
    sim_seconds_total: float = 0.0

    @property
    def throughput_qps(self) -> float:
        served = self.status_counts.get(QueryStatus.OK.value, 0)
        if self.makespan_seconds <= 0:
            return 0.0
        return served / self.makespan_seconds

    @property
    def sequential_qps(self) -> float:
        if self.sequential_seconds <= 0:
            return 0.0
        return self.num_queries / self.sequential_seconds

    @property
    def speedup_vs_sequential(self) -> float:
        """Device-time amortization: sequential ÷ batched sim seconds.

        End-to-end makespan is dominated by the arrival schedule and the
        batching window, so the serving claim — batching reduces the
        device work per query, i.e. raises sustainable throughput — is
        measured in the simulated-device-time domain: total oracle
        seconds over the same query list divided by the batched
        service's total simulated seconds.
        """
        if self.sequential_seconds <= 0 or self.sim_seconds_total <= 0:
            return 0.0
        return self.sequential_seconds / self.sim_seconds_total

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "num_queries": self.num_queries,
            "num_batches": self.num_batches,
            "batch_occupancy_mean": self.batch_occupancy_mean,
            "makespan_seconds": self.makespan_seconds,
            "sequential_seconds": self.sequential_seconds,
            "throughput_qps": self.throughput_qps,
            "sequential_qps": self.sequential_qps,
            "speedup_vs_sequential": self.speedup_vs_sequential,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "status_counts": dict(self.status_counts),
            "sim_seconds_total": self.sim_seconds_total,
        }


def publish_report_gauges(
    metrics: MetricsRegistry, report: ServeBenchReport
) -> None:
    """Mirror a bench report into the ``serve.*`` gauges."""
    metrics.set_gauge("serve.batch_occupancy_mean",
                      report.batch_occupancy_mean)
    metrics.set_gauge("serve.latency_p50", report.latency_p50)
    metrics.set_gauge("serve.latency_p95", report.latency_p95)
    metrics.set_gauge("serve.latency_p99", report.latency_p99)
    metrics.set_gauge("serve.throughput_qps", report.throughput_qps)
    metrics.set_gauge("serve.speedup_vs_sequential",
                      report.speedup_vs_sequential)


def sequential_baseline(
    graph: CSRGraph,
    requests: list[QueryRequest],
    scheduler_factory: Callable[[], Scheduler],
) -> float:
    """Total simulated seconds of one-query-at-a-time oracle service."""
    return sum(
        run_direct(graph, request, scheduler_factory).seconds
        for request in requests
    )


def _percentiles(latencies: list[float]) -> tuple[float, float, float]:
    if not latencies:
        return (0.0, 0.0, 0.0)
    p50, p95, p99 = np.percentile(np.asarray(latencies), [50, 95, 99])
    return (float(p50), float(p95), float(p99))


def simulate_open_loop(
    graph: CSRGraph,
    requests: list[QueryRequest],
    arrivals: np.ndarray,
    scheduler_factory: Callable[[], Scheduler],
    *,
    batch_window: float,
    max_batch_size: int,
    num_workers: int = 1,
    num_gpus: int = 1,
    executor: BatchExecutor | None = None,
    sequential_seconds: float | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[list[QueryResponse], ServeBenchReport]:
    """Deterministic virtual-time replay of the batched service.

    Returns per-query responses (aligned with ``requests``) and the
    bench report.  ``sequential_seconds`` may be supplied to avoid
    re-running the oracle when the caller already measured it; pass
    ``0.0`` to skip speedup accounting entirely.
    """
    if num_workers < 1:
        raise InvalidParameterError("num_workers must be >= 1")
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.shape != (len(requests),):
        raise InvalidParameterError(
            f"need one arrival per request, got {arrivals.shape} "
            f"for {len(requests)} requests"
        )
    executor = executor or BatchExecutor(scheduler_factory, num_gpus=num_gpus)
    batcher = MicroBatcher(batch_window, max_batch_size)
    batches = batcher.form_batches(list(zip(arrivals.tolist(), requests)))

    responses: dict[int, QueryResponse] = {}
    worker_free = np.zeros(num_workers, dtype=np.float64)
    sim_total = 0.0
    for batch in batches:
        worker = int(np.argmin(worker_free))
        start = max(batch.ready_time, float(worker_free[worker]))
        live = []
        for item in batch.items:
            deadline = (
                item.arrival + item.request.deadline_seconds
                if item.request.deadline_seconds is not None else None
            )
            if deadline is not None and start > deadline:
                responses[item.index] = QueryResponse(
                    request_id=item.index,
                    app=item.request.app,
                    status=QueryStatus.TIMEOUT,
                    error="deadline exceeded before execution",
                    error_type=DeadlineExceededError.__name__,
                    batch_id=batch.batch_id,
                    latency_seconds=start - item.arrival,
                )
            else:
                live.append((item, deadline))
        if not live:
            continue
        execution = executor.execute(graph, [item.request for item, _ in live])
        finish = start + execution.sim_seconds
        worker_free[worker] = finish
        sim_total += execution.sim_seconds
        share = execution.sim_seconds / len(live)
        for (item, deadline), result in zip(live, execution.results):
            if deadline is not None and finish > deadline:
                responses[item.index] = QueryResponse(
                    request_id=item.index,
                    app=item.request.app,
                    status=QueryStatus.TIMEOUT,
                    error="deadline exceeded after execution",
                    error_type=DeadlineExceededError.__name__,
                    batch_id=batch.batch_id,
                    batch_size=len(live),
                    latency_seconds=finish - item.arrival,
                )
            else:
                responses[item.index] = QueryResponse(
                    request_id=item.index,
                    app=item.request.app,
                    status=QueryStatus.OK,
                    result=result,
                    batch_id=batch.batch_id,
                    batch_size=len(live),
                    sim_seconds=share,
                    latency_seconds=finish - item.arrival,
                )

    ordered = [responses[i] for i in range(len(requests))]
    if sequential_seconds is None:
        sequential_seconds = sequential_baseline(
            graph, requests, scheduler_factory
        )
    makespan = max(
        (r.latency_seconds + float(arrivals[i])
         for i, r in enumerate(ordered)),
        default=0.0,
    )
    counts: dict[str, int] = {}
    for response in ordered:
        counts[response.status.value] = counts.get(
            response.status.value, 0
        ) + 1
    p50, p95, p99 = _percentiles([r.latency_seconds for r in ordered])
    report = ServeBenchReport(
        mode="open-loop",
        num_queries=len(requests),
        num_batches=len(batches),
        batch_occupancy_mean=occupancy_mean(batches),
        makespan_seconds=makespan,
        sequential_seconds=float(sequential_seconds),
        latency_p50=p50,
        latency_p95=p95,
        latency_p99=p99,
        status_counts=counts,
        sim_seconds_total=sim_total,
    )
    if metrics is not None:
        publish_report_gauges(metrics, report)
    return ordered, report


def run_closed_loop(
    graph_name: str,
    graph: CSRGraph,
    requests: list[QueryRequest],
    scheduler_factory: Callable[[], Scheduler],
    *,
    concurrency: int = 4,
    batch_window: float = 0.01,
    max_batch_size: int = 64,
    num_workers: int = 2,
    queue_capacity: int = 256,
    num_gpus: int = 1,
    metrics: MetricsRegistry | None = None,
) -> tuple[list[QueryResponse], ServeBenchReport]:
    """Drive the threaded broker with ``concurrency`` client threads.

    Each client submits the next unclaimed query, blocks on its result,
    and repeats — the classic closed-loop load model.  Times are
    wall-clock (non-deterministic); the deterministic benchmark tier
    uses :func:`simulate_open_loop` instead.
    """
    if concurrency < 1:
        raise InvalidParameterError("concurrency must be >= 1")
    responses: list[QueryResponse | None] = [None] * len(requests)
    cursor = {"next": 0}
    cursor_lock = races.make_lock("loadgen.cursor")
    broker = QueryBroker(  # sage: allow(SAGE005) - sanctioned internal path
        {graph_name: graph},
        scheduler_factory,
        batch_window=batch_window,
        max_batch_size=max_batch_size,
        num_workers=num_workers,
        queue_capacity=queue_capacity,
        num_gpus=num_gpus,
        metrics=metrics,
        _internal=True,
    )

    def client() -> None:
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] = index + 1
            pending = broker.submit(requests[index])
            responses[index] = pending.result()

    start = time.monotonic()
    clients = [
        races.spawn_thread(client, name=f"serve-client-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    broker.close(drain=True)
    makespan = time.monotonic() - start

    done = [r for r in responses if r is not None]
    counts: dict[str, int] = {}
    for response in done:
        counts[response.status.value] = counts.get(
            response.status.value, 0
        ) + 1
    p50, p95, p99 = _percentiles([r.latency_seconds for r in done])
    # Closed-loop times are wall-clock while the sequential oracle is
    # simulated time; a cross-domain speedup would be meaningless, so it
    # is reported as 0 ("n/a") in this mode.
    report = ServeBenchReport(
        mode="closed-loop",
        num_queries=len(requests),
        num_batches=len(broker.stats.batch_sizes),
        batch_occupancy_mean=(
            float(np.mean(broker.stats.batch_sizes))
            if broker.stats.batch_sizes else 0.0
        ),
        makespan_seconds=makespan,
        sequential_seconds=0.0,
        latency_p50=p50,
        latency_p95=p95,
        latency_p99=p99,
        status_counts=counts,
        sim_seconds_total=sum(
            r.sim_seconds for r in done if r.status is QueryStatus.OK
        ),
    )
    if metrics is not None:
        publish_report_gauges(metrics, report)
    return [r for r in responses if r is not None], report
