"""Multi-GPU traversal runner (paper Figure 9).

Nodes are partitioned across devices; every iteration each GPU expands
its share of the frontier, then boundary-crossing frontier updates are
exchanged over the peer link and the devices synchronize.  The paper's
observation that "using two GPUs does not always lead to better
performance" falls out of the model: per-iteration kernels shrink, but
the exchange + synchronization cost is paid every iteration.

Bulk-synchronous engines (Gunrock-style, SAGE) pay the full barrier;
Groute's asynchronous model overlaps communication with compute and pays
a reduced coordination cost (``async_mode=True``).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.apps.base import App
from repro.core.frontier import FrontierQueue
from repro.core.pipeline import RunResult
from repro.core.scheduler import Scheduler
from repro.errors import ConvergenceError, InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.gpusim.profiler import Profiler
from repro.gpusim.spec import LinkSpec, NVLINK2
from repro.gpusim.streams import KERNEL, TraceNode, kernel_occupancy
from repro.obs import NULL_REGISTRY, MetricsRegistry

#: bulk-synchronous barrier cost per iteration (all-device sync).
SYNC_BARRIER_US = 1.5
#: Groute-style asynchronous coordination cost per iteration.
ASYNC_COORD_US = 0.8
#: bytes per exchanged frontier update (node id + payload value).
BYTES_PER_MESSAGE = 8


class MultiGpuRunner:
    """Runs one application across ``k`` simulated GPUs."""

    def __init__(
        self,
        scheduler_factory: Callable[[], Scheduler],
        assignment: np.ndarray,
        *,
        num_gpus: int = 2,
        link: LinkSpec = NVLINK2,
        async_mode: bool = False,
        name: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_gpus < 1:
            raise InvalidParameterError("num_gpus must be >= 1")
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.size and self.assignment.max() >= num_gpus:
            raise InvalidParameterError("assignment references unknown GPU")
        self.num_gpus = num_gpus
        self.link = link
        self.async_mode = async_mode
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # Each simulated GPU reports into its own registry — mirroring a
        # per-device collector in a real deployment — and the per-device
        # registries are merged into the run registry under gpu<i>.*.
        self.device_metrics = [
            MetricsRegistry(enabled=self.metrics.enabled)
            for _ in range(num_gpus)
        ]
        self.schedulers = [scheduler_factory() for _ in range(num_gpus)]
        for scheduler, registry in zip(self.schedulers, self.device_metrics):
            scheduler.set_metrics(registry)
        self.devices = [Device(s.spec) for s in self.schedulers]
        base = self.schedulers[0].name
        self.name = name or f"{base}-x{num_gpus}"

    def run(
        self,
        graph: CSRGraph,
        app: App,
        source: int | None = None,
        *,
        max_iterations: int = 100_000,
    ) -> RunResult:
        """Execute ``app`` across the GPUs; returns makespan timing."""
        metrics = self.metrics
        app.setup(graph, source)
        for scheduler, registry in zip(self.schedulers, self.device_metrics):
            scheduler.set_metrics(registry)
            scheduler.reset(graph)
        queue = FrontierQueue(app.initial_frontier())
        seconds = 0.0
        comm_seconds = 0.0
        edges_traversed = 0
        messages = 0
        iterations = 0
        node_trace: list[TraceNode] = []
        run_span = metrics.span(
            "multigpu.run", runner=self.name, app=app.name,
            num_gpus=self.num_gpus, async_mode=self.async_mode,
        )
        with run_span:
            while not queue.empty:
                if iterations >= max_iterations:
                    raise ConvergenceError(
                        f"{app.name} exceeded {max_iterations} iterations"
                    )
                frontier = queue.current
                owners = self.assignment[frontier]
                gpu_seconds = np.zeros(self.num_gpus)
                gpu_timings = []
                all_src: list[np.ndarray] = []
                all_dst: list[np.ndarray] = []
                all_pos: list[np.ndarray] = []
                remote_updates = 0
                it_span = metrics.span(
                    "iteration", index=iterations,
                    frontier_size=int(frontier.size),
                )
                with it_span:
                    for gpu in range(self.num_gpus):
                        local = frontier[owners == gpu]
                        if local.size == 0:
                            continue
                        edge_src, edge_dst, edge_pos = (
                            graph.expand_frontier(local)
                        )
                        degrees = (graph.offsets[local + 1]
                                   - graph.offsets[local])
                        stats = self.schedulers[gpu].kernel_stats(
                            local, degrees, edge_dst, graph, app
                        )
                        with metrics.span("kernel", gpu=gpu) as k_span:
                            timing = self.devices[gpu].run_kernel(stats)
                            k_span.set("cycles", timing.cycles)
                            k_span.set("dram_bytes", timing.dram_bytes)
                        spec = self.devices[gpu].spec
                        gpu_seconds[gpu] = spec.cycles_to_seconds(
                            timing.cycles
                        )
                        gpu_timings.append(timing)
                        remote = edge_dst[self.assignment[edge_dst] != gpu]
                        # Engines aggregate frontier updates per node
                        # before shipping: a remote node is announced
                        # once, not once per incoming edge.
                        remote_updates += int(np.unique(remote).size)
                        all_src.append(edge_src)
                        all_dst.append(edge_dst)
                        all_pos.append(edge_pos)
                        edges_traversed += int(edge_dst.size)
                    if all_src:
                        edge_src = np.concatenate(all_src)
                        edge_dst = np.concatenate(all_dst)
                        edge_pos = np.concatenate(all_pos)
                    else:
                        edge_src = edge_dst = edge_pos = np.empty(
                            0, dtype=np.int64
                        )

                    exchange = self._exchange_seconds(remote_updates)
                    if self.async_mode:
                        # Asynchronous engines overlap communication with
                        # the slowest device's compute.
                        iter_seconds = max(
                            float(gpu_seconds.max(initial=0.0)), exchange
                        ) + ASYNC_COORD_US * 1e-6
                    else:
                        iter_seconds = (
                            float(gpu_seconds.max(initial=0.0)) + exchange
                            + (SYNC_BARRIER_US * 1e-6
                               if self.num_gpus > 1 else 0.0)
                        )
                    it_span.set("exchange_seconds", exchange)
                    it_span.set("remote_updates", remote_updates)
                    # With one device the iteration is exactly one kernel,
                    # so the trace can carry its honest occupancy; the
                    # multi-device makespan (kernels + exchange + barrier)
                    # is opaque to overlap and pinned at full occupancy.
                    occupancy = (
                        kernel_occupancy(gpu_timings[0])
                        if self.num_gpus == 1 and len(gpu_timings) == 1
                        else 1.0
                    )
                    node_trace.append(TraceNode(
                        KERNEL, iter_seconds, occupancy=occupancy,
                        iteration=iterations,
                    ))
                    seconds += iter_seconds
                    comm_seconds += exchange
                    messages += remote_updates

                    next_frontier = app.process_level(
                        edge_src, edge_dst,
                        edge_pos if app.needs_edge_positions else None,
                    )
                    queue.publish_next(next_frontier)
                    queue.swap()
                    iterations += 1

            run_span.set("simulated_seconds", seconds)
            run_span.set("comm_seconds", comm_seconds)
            metrics.count("multigpu.messages", messages)
            metrics.count("multigpu.comm_seconds", comm_seconds)
            metrics.count("multigpu.iterations", iterations)

        profiler = Profiler()
        for gpu, device in enumerate(self.devices):
            profiler = profiler.merged_with(device.profiler)
            self.device_metrics[gpu].fold_profiler(device.profiler)
            metrics.merge(self.device_metrics[gpu], prefix=f"gpu{gpu}.")
            self.device_metrics[gpu].reset()
        metrics.fold_profiler(profiler)
        result = RunResult(
            app_name=app.name,
            scheduler_name=self.name,
            seconds=seconds,
            iterations=iterations,
            edges_traversed=edges_traversed,
            result=app.result(),
            profiler=profiler,
            node_trace=node_trace,
        )
        result.extras["comm_seconds"] = comm_seconds
        result.extras["messages"] = float(messages)
        return result

    def _exchange_seconds(self, remote_updates: int) -> float:
        if self.num_gpus == 1 or remote_updates == 0:
            return 0.0
        payload = remote_updates * BYTES_PER_MESSAGE
        # One aggregated buffer per peer pair; engines batch messages.
        requests = self.num_gpus - 1
        return self.link.transfer_seconds(payload, requests=requests)
