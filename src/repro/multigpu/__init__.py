"""Multi-GPU execution: partitioning + collaborative traversal (Figure 9)."""

from repro.multigpu.partition import (
    chunk_partition,
    edge_cut,
    metis_like,
    partition_sizes,
    random_partition,
)
from repro.multigpu.runner import MultiGpuRunner

__all__ = [
    "MultiGpuRunner",
    "chunk_partition",
    "edge_cut",
    "metis_like",
    "partition_sizes",
    "random_partition",
]
