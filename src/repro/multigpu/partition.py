"""Graph partitioning for multi-GPU execution (paper Figure 9).

The paper compares baselines with and without **metis** pre-partitioning
(cost excluded from reported traversal times, as here).  Three
partitioners cover the spectrum:

* :func:`chunk_partition` — contiguous id ranges: what a
  preprocessing-free system (SAGE) gets by splitting the CSR in place.
* :func:`random_partition` — the worst case for communication volume.
* :func:`metis_like` — greedy BFS-grown balanced partitions minimizing
  edge cut, standing in for metis [22].
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


def _check_k(n: int, k: int) -> None:
    if k < 1 or k > max(1, n):
        raise InvalidParameterError(f"invalid partition count {k} for {n} nodes")


def chunk_partition(num_nodes: int, k: int) -> np.ndarray:
    """Assign contiguous id ranges to partitions."""
    _check_k(num_nodes, k)
    size = -(-num_nodes // k)
    return np.minimum(np.arange(num_nodes, dtype=np.int64) // size, k - 1)


def random_partition(num_nodes: int, k: int, seed: int = 0) -> np.ndarray:
    """Assign nodes uniformly at random (balanced by shuffling)."""
    _check_k(num_nodes, k)
    assignment = np.arange(num_nodes, dtype=np.int64) % k
    return np.random.default_rng(seed).permutation(assignment)


def metis_like(graph: CSRGraph, k: int, seed: int = 0) -> np.ndarray:
    """Greedy BFS-grown balanced k-way partitioning.

    Grows each part by BFS from a random unassigned seed until it reaches
    its *edge-weight* budget (balancing work, as metis does with vertex
    weights = degrees), then starts the next part — the multilevel
    intuition of metis (connected, low-cut parts) without its refinement
    phases.
    """
    n = graph.num_nodes
    _check_k(n, k)
    sym = CSRGraph.from_coo(graph.to_coo().symmetrized())
    degrees = np.maximum(1, graph.out_degrees())
    total_weight = int(degrees.sum())
    rng = np.random.default_rng(seed)
    assignment = np.full(n, -1, dtype=np.int64)
    budget = total_weight / k
    visit_order = rng.permutation(n)
    part = 0
    filled = 0
    queue: deque[int] = deque()
    cursor = 0
    while filled < n and part < k:
        weight = 0.0
        last_part = part == k - 1
        while (last_part or weight < budget) and filled < n:
            if not queue:
                while cursor < n and assignment[visit_order[cursor]] >= 0:
                    cursor += 1
                if cursor >= n:
                    break
                seed_node = int(visit_order[cursor])
                assignment[seed_node] = part
                queue.append(seed_node)
                weight += degrees[seed_node]
                filled += 1
                continue
            u = queue.popleft()
            for v in sym.neighbors(u).tolist():
                if not last_part and weight >= budget:
                    break
                if assignment[v] < 0:
                    assignment[v] = part
                    queue.append(v)
                    weight += degrees[v]
                    filled += 1
        queue.clear()
        part += 1
    # Any stragglers (k exhausted early) join the last part.
    assignment[assignment < 0] = k - 1
    return assignment


def edge_cut(graph: CSRGraph, assignment: np.ndarray) -> int:
    """Number of edges crossing partition boundaries."""
    coo = graph.to_coo()
    assignment = np.asarray(assignment, dtype=np.int64)
    return int(np.count_nonzero(assignment[coo.src] != assignment[coo.dst]))


def partition_sizes(assignment: np.ndarray, k: int) -> np.ndarray:
    """Node count per partition."""
    return np.bincount(np.asarray(assignment, dtype=np.int64), minlength=k)
