"""Simulated GPU device: executes kernels, accumulates time and counters."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gpusim.cost import KernelCostModel, KernelStats, KernelTiming
from repro.gpusim.profiler import Profiler
from repro.gpusim.spec import GPUSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import Sanitizer


class Device:
    """One simulated GPU.

    Schedulers submit :class:`KernelStats` via :meth:`run_kernel`; the
    device scores them with its cost model and keeps a running clock plus
    a :class:`Profiler`.  Extra non-kernel time (host link transfers,
    inter-GPU synchronization) is added with :meth:`add_seconds`.  An
    attached :class:`~repro.analysis.sanitizer.Sanitizer` audits every
    submitted batch for inconsistent stats before it is scored; it never
    affects timing.
    """

    def __init__(
        self,
        spec: GPUSpec | None = None,
        *,
        sanitizer: "Sanitizer | None" = None,
    ) -> None:
        self.spec = spec or GPUSpec()
        self.cost_model = KernelCostModel(self.spec)
        self.profiler = Profiler()
        self.elapsed_seconds = 0.0
        self.sanitizer = sanitizer

    def run_kernel(self, stats: KernelStats) -> KernelTiming:
        """Execute one kernel; advances the device clock."""
        if self.sanitizer is not None:
            self.sanitizer.check_kernel_stats(stats, self.spec)
        timing = self.cost_model.time_kernel(stats)
        self.profiler.record(stats, timing)
        self.elapsed_seconds += self.spec.cycles_to_seconds(timing.cycles)
        return timing

    def add_seconds(self, seconds: float) -> None:
        """Advance the clock by non-kernel time (transfers, sync)."""
        self.elapsed_seconds += seconds

    def reset(self) -> None:
        """Zero the clock and counters (spec is kept)."""
        self.profiler = Profiler()
        self.elapsed_seconds = 0.0

    def fits_in_memory(self, num_bytes: int) -> bool:
        """Whether a resident data structure fits in device DRAM."""
        return num_bytes <= self.spec.device_memory_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device({self.spec.name}, elapsed={self.elapsed_seconds * 1e3:.3f} ms, "
            f"kernels={self.profiler.kernels})"
        )
