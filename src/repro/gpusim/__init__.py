"""Functional + analytic GPU execution simulator (the hardware substrate)."""

from repro.gpusim.cost import (
    KernelCostModel,
    KernelStats,
    KernelTiming,
    block_placement,
    even_placement,
)
from repro.gpusim.device import Device
from repro.gpusim.events import (
    MakespanReport,
    MakespanSimulator,
    Task,
    tasks_from_decomposition,
)
from repro.gpusim.memory import (
    LRUCacheModel,
    coalesced_sectors,
    distinct_sectors,
    estimate_dram_sectors,
    sector_ids,
    segmented_distinct_sectors,
)
from repro.gpusim.profiler import Profiler
from repro.gpusim.spec import NVLINK2, PCIE3_X16, CPUSpec, GPUSpec, LinkSpec
from repro.gpusim.streams import (
    D2H,
    H2D,
    HOST,
    KERNEL,
    BatchDag,
    DagCompletion,
    DagNode,
    StreamDevice,
    TraceNode,
    dag_from_run,
    kernel_occupancy,
)
from repro.gpusim.trace import CacheTraceReport, replay_cache_trace

__all__ = [
    "BatchDag",
    "CPUSpec",
    "CacheTraceReport",
    "D2H",
    "DagCompletion",
    "DagNode",
    "Device",
    "GPUSpec",
    "H2D",
    "HOST",
    "KERNEL",
    "StreamDevice",
    "TraceNode",
    "KernelCostModel",
    "KernelStats",
    "KernelTiming",
    "LinkSpec",
    "MakespanReport",
    "MakespanSimulator",
    "Task",
    "LRUCacheModel",
    "NVLINK2",
    "PCIE3_X16",
    "Profiler",
    "block_placement",
    "coalesced_sectors",
    "dag_from_run",
    "distinct_sectors",
    "estimate_dram_sectors",
    "even_placement",
    "kernel_occupancy",
    "replay_cache_trace",
    "sector_ids",
    "segmented_distinct_sectors",
    "tasks_from_decomposition",
]
