"""Kernel cost model.

Schedulers (SAGE and every baseline) describe one pipeline step as a
:class:`KernelStats`: how many lane-cycles were issued vs active (warp
divergence), how the work landed on SMs (load balance), how many memory
sectors were touched (locality), how many warps were in flight (latency
hiding), and how many cycles of scheduling overhead the strategy itself
spent.  :class:`KernelCostModel` converts that into simulated time.

These are exactly the four effects the paper's techniques target:

* Tiled Partitioning   -> raises lane efficiency (Section 5.1)
* Resident Tile Stealing -> removes inter-SM imbalance, raises
  concurrency, amortizes scheduling overhead (Section 5.2)
* Sampling-based Reordering -> cuts distinct value sectors (Section 6)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.errors import SchedulingError
from repro.gpusim.memory import estimate_dram_sectors
from repro.gpusim.spec import GPUSpec


@dataclass
class KernelStats:
    """Scheduler-reported execution shape of one kernel.

    Attributes:
        active_edges: edges actually processed (useful work).
        issued_lane_cycles: lane-slots issued including divergence waste;
            always >= active_edges.
        per_sm_lane_cycles: length ``num_sms`` array distributing the
            issued lane-cycles over SMs according to the scheduler's
            placement rule (max drives compute time).
        value_sector_touches: per-tile distinct value sectors, summed over
            tiles (scattered attribute reads/writes).
        value_sector_unique: kernel-wide distinct value sectors (for the
            L2 reuse estimate).
        csr_sector_touches: coalesced CSR gather transactions.
        concurrency_warps: cooperative groups simultaneously in flight
            device-wide (latency hiding).
        overhead_cycles: strategy scheduling cost (elections, partitions,
            bucket syncs, binary searches, ...) in SM cycles.
        extra_dram_bytes: additional DRAM traffic (tile-store writes,
            auxiliary structures, ...).
        atomic_conflicts: serialized atomic collisions (BC/PR accumulate
            with atomics; improved locality increases conflicts —
            the paper's "double-edged sword", Section 7.2).
        compute_scale: per-edge instruction weight of the running
            application's filter (PR's fp divide + atomicAdd costs more
            than BFS's compare-and-set).
    """

    active_edges: int = 0
    issued_lane_cycles: int = 0
    per_sm_lane_cycles: npt.NDArray[np.float64] = field(
        default_factory=lambda: np.zeros(0)
    )
    value_sector_touches: int = 0
    value_sector_unique: int = 0
    csr_sector_touches: int = 0
    concurrency_warps: float = 0.0
    overhead_cycles: float = 0.0
    extra_dram_bytes: float = 0.0
    atomic_conflicts: float = 0.0
    compute_scale: float = 1.0

    def validate(self, spec: GPUSpec) -> None:
        """Raise :class:`SchedulingError` on inconsistent stats."""
        if self.issued_lane_cycles + 1e-9 < self.active_edges:
            raise SchedulingError(
                f"issued lanes ({self.issued_lane_cycles}) < active edges "
                f"({self.active_edges})"
            )
        if self.value_sector_unique > self.value_sector_touches:
            raise SchedulingError("unique sectors exceed total touches")
        if self.per_sm_lane_cycles.size not in (0, spec.num_sms):
            raise SchedulingError(
                f"per-SM array has {self.per_sm_lane_cycles.size} entries, "
                f"expected 0 or {spec.num_sms}"
            )

    @property
    def lane_efficiency(self) -> float:
        """Active / issued lanes; 1.0 means divergence-free."""
        if self.issued_lane_cycles == 0:
            return 1.0
        return self.active_edges / self.issued_lane_cycles


@dataclass(frozen=True)
class KernelTiming:
    """Cost-model output for one kernel."""

    cycles: float
    compute_cycles: float
    memory_cycles: float
    overhead_cycles: float
    launch_cycles: float
    dram_bytes: float
    bound: str  # "compute" | "memory"

    @property
    def total_cycles(self) -> float:
        return self.cycles


class KernelCostModel:
    """Converts :class:`KernelStats` into :class:`KernelTiming`."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    def time_kernel(self, stats: KernelStats) -> KernelTiming:
        """Score one kernel.

        kernel = max(compute, memory / hiding) + overhead + launch

        * compute: the busiest SM's issued lane-cycles, converted to
          cycles at ``warp_size`` lanes retired per cycle, scaled by the
          per-edge instruction cost.
        * memory: DRAM sectors (after the L2 reuse estimate) at device
          bandwidth; divided by a latency-hiding factor < 1 when fewer
          warps are in flight than the device needs to cover DRAM latency.
        * atomics: serialized collisions add compute cycles.
        """
        spec = self.spec
        stats.validate(spec)

        # --- compute side -------------------------------------------------
        if stats.per_sm_lane_cycles.size:
            busiest = float(stats.per_sm_lane_cycles.max())
        else:
            busiest = stats.issued_lane_cycles / max(1, spec.num_sms)
        edge_cycles = spec.cycles_per_edge * stats.compute_scale
        compute_cycles = busiest * edge_cycles / spec.warp_size
        compute_cycles += stats.atomic_conflicts * edge_cycles

        # --- memory side --------------------------------------------------
        value_dram = estimate_dram_sectors(
            stats.value_sector_touches,
            stats.value_sector_unique,
            spec.l2_sectors,
        )
        dram_bytes = (
            (value_dram + stats.csr_sector_touches) * spec.sector_bytes
            + stats.extra_dram_bytes
        )
        memory_cycles = dram_bytes / spec.bytes_per_cycle
        hiding_needed = spec.num_sms * spec.latency_hiding_warps
        if stats.concurrency_warps > 0:
            shortfall = hiding_needed / stats.concurrency_warps
            if shortfall > 1.0:
                # Exposed latency: bounded by the full-stall case where
                # every transaction serializes behind DRAM latency.
                memory_cycles *= min(shortfall, spec.mem_latency_cycles / 8.0)

        total = (
            max(compute_cycles, memory_cycles)
            + stats.overhead_cycles
            + spec.kernel_launch_cycles
        )
        return KernelTiming(
            cycles=total,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            overhead_cycles=stats.overhead_cycles,
            launch_cycles=spec.kernel_launch_cycles,
            dram_bytes=dram_bytes,
            bound="compute" if compute_cycles >= memory_cycles else "memory",
        )


def even_placement(
    total_lane_cycles: float, num_sms: int
) -> npt.NDArray[np.float64]:
    """Work-conserving placement: every SM gets an equal share.

    This is what a device-global work queue (Resident Tile Stealing,
    Gunrock's balanced advance) achieves.
    """
    return np.full(num_sms, total_lane_cycles / max(1, num_sms))


def block_placement(
    per_block_lane_cycles: npt.ArrayLike, num_sms: int
) -> npt.NDArray[np.float64]:
    """Owner placement: blocks are bound round-robin to SMs.

    Work scheduled inside a block stays on its SM (no inter-SM stealing —
    the limitation of Tiled Partitioning alone and of B40C, Sections
    5.2/5.3), so a heavy block makes its SM the straggler.
    """
    per_block = np.asarray(per_block_lane_cycles, dtype=np.float64)
    out = np.zeros(num_sms, dtype=np.float64)
    if per_block.size == 0:
        return out
    sm_of_block = np.arange(per_block.size) % num_sms
    np.add.at(out, sm_of_block, per_block)
    return out
