"""Stream/event scheduler: DAGs of kernel, transfer, and sync nodes.

This module layers a CUDA-like stream execution model on top of the
discrete-event idiom of :mod:`repro.gpusim.events`.  A query batch
compiles to a :class:`BatchDag` — kernel, transfer, and host nodes with
explicit event dependencies — and a :class:`StreamDevice` replays many
such DAGs concurrently on one simulated device:

* **streams** are FIFO launch queues: nodes bound to the same stream
  issue in enqueue order, exactly like CUDA streams, so ``num_streams=1``
  reproduces the batch-at-a-time serial timeline bit-for-bit;
* **copy engines** (one per direction, H2D and D2H) run transfers
  concurrently with compute, which is how real devices hide PCIe
  traffic behind another batch's kernels;
* **per-resource occupancy** keeps the co-run honest: a kernel occupies
  the compute resource in proportion to how much of the device its cost
  model says it uses (:func:`kernel_occupancy`), so two saturating
  kernels serialize while launch-latency-dominated frontier kernels
  genuinely overlap.  Capacity never exceeds the whole device, so the
  schedule can never beat ``sum(durations)`` by more than the idle time
  the synchronous executor was leaving on the table.

Determinism: grants are strict FIFO per queue with a fixed queue scan
order, all event ties break on (time, admission sequence), and no wall
clock or RNG is involved — the same DAGs admitted at the same virtual
times always produce the same timeline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.gpusim.cost import KernelTiming

#: node kinds (the DAG taxonomy; see DESIGN.md "Pipelined execution").
KERNEL = "kernel"
H2D = "h2d"
D2H = "d2h"
HOST = "host"

_NODE_KINDS = frozenset({KERNEL, H2D, D2H, HOST})
_COPY_KINDS = frozenset({H2D, D2H})

#: floor on a kernel's device share: even a one-warp launch holds the
#: front end and a sliver of SM issue slots.
MIN_OCCUPANCY = 1.0 / 64.0

#: tolerance for float accumulation when packing occupancies.  Time
#: comparisons are exact: the outer loop passes back the very floats
#: :meth:`StreamDevice.next_event_time` produced, so no epsilon is
#: needed (or safe — virtual times sit at microsecond scale).
_EPS = 1e-9


def kernel_occupancy(timing: KernelTiming) -> float:
    """Device share a kernel holds while resident, in ``(0, 1]``.

    The cost model already splits a kernel's cycles into the roofline
    term ``max(compute, memory)`` plus launch + scheduling overhead.
    Only the roofline term contends for SMs and DRAM; launch latency and
    host-side scheduling leave the device nearly idle, which is exactly
    the window concurrent kernels from another batch can fill.  The
    share is therefore the roofline fraction of the kernel's total
    cycles, floored at :data:`MIN_OCCUPANCY`.
    """
    if timing.cycles <= 0:
        return MIN_OCCUPANCY
    busy = max(timing.compute_cycles, timing.memory_cycles)
    return min(1.0, max(MIN_OCCUPANCY, busy / timing.cycles))


@dataclass(frozen=True)
class TraceNode:
    """One replayable unit of device work recorded during a run.

    Runners append these to ``RunResult.node_trace`` as they drive the
    synchronous simulator; :func:`dag_from_run` later recompiles the
    trace into an event DAG with identical total work.

    Attributes:
        kind: one of :data:`KERNEL`, :data:`H2D`, :data:`D2H`,
            :data:`HOST`.
        seconds: virtual duration of the node.
        occupancy: device share while resident (kernels only; transfers
            and host nodes occupy their own engine).
        iteration: the traversal iteration the node belongs to; nodes
            sharing an iteration form one barrier group.
        overlap: ``True`` when the synchronous runner already overlapped
            this node with its iteration's kernel (``max(k, t)``
            semantics); ``False`` appends it to the iteration's serial
            chain (``k + t`` semantics).
    """

    kind: str
    seconds: float
    occupancy: float = 1.0
    iteration: int = 0
    overlap: bool = False


@dataclass(frozen=True)
class DagNode:
    """One scheduled node of a compiled batch DAG."""

    node_id: int
    kind: str
    seconds: float
    deps: tuple[int, ...]
    occupancy: float
    lane: int


class BatchDag:
    """An append-only DAG of device work (acyclic by construction).

    Nodes are added in topological order — dependencies must reference
    already-added nodes — so every DAG a builder can express is
    schedulable and queue order is consistent with the edges.
    """

    def __init__(self) -> None:
        self.nodes: list[DagNode] = []

    def add_node(
        self,
        kind: str,
        seconds: float,
        *,
        deps: tuple[int, ...] | list[int] = (),
        occupancy: float = 1.0,
        lane: int = 0,
    ) -> int:
        """Append one node and return its id."""
        if kind not in _NODE_KINDS:
            raise InvalidParameterError(f"unknown DAG node kind {kind!r}")
        if seconds < 0:
            raise InvalidParameterError("node duration must be >= 0")
        if not 0.0 < occupancy <= 1.0 + _EPS:
            raise InvalidParameterError(
                f"occupancy must be in (0, 1], got {occupancy}"
            )
        node_id = len(self.nodes)
        dep_ids = tuple(sorted(set(int(d) for d in deps)))
        for dep in dep_ids:
            if not 0 <= dep < node_id:
                raise InvalidParameterError(
                    f"node {node_id} depends on unknown node {dep}"
                )
        self.nodes.append(DagNode(
            node_id=node_id, kind=kind, seconds=float(seconds),
            deps=dep_ids, occupancy=min(1.0, float(occupancy)), lane=lane,
        ))
        return node_id

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_lanes(self) -> int:
        if not self.nodes:
            return 0
        return len({node.lane for node in self.nodes})

    @property
    def total_seconds(self) -> float:
        """Sum of node durations (the no-overlap serial cost)."""
        return sum(node.seconds for node in self.nodes)

    def kind_seconds(self, kind: str) -> float:
        return sum(n.seconds for n in self.nodes if n.kind == kind)

    def critical_path_seconds(self) -> float:
        """Longest dependency chain — a lower bound on any schedule."""
        finish = [0.0] * len(self.nodes)
        for node in self.nodes:
            ready = max((finish[d] for d in node.deps), default=0.0)
            finish[node.node_id] = ready + node.seconds
        return max(finish, default=0.0)


def dag_from_run(
    result,
    *,
    dag: BatchDag | None = None,
    lane: int = 0,
    prefetch_depth: int = 0,
) -> BatchDag:
    """Compile one run's ``node_trace`` into DAG nodes on ``lane``.

    Nodes sharing an iteration form a barrier group: iteration ``i``
    starts only when every node of iteration ``i-1`` has finished,
    mirroring the synchronous per-level barrier.  Within a group,
    ``overlap`` nodes run beside the group's serial chain (the
    ``max(kernel, transfer)`` shape of async out-of-core runners) while
    non-overlap nodes extend the chain (``kernel + transfer``).

    ``prefetch_depth=d`` re-anchors an overlap *transfer* of iteration
    ``i`` to the barrier of iteration ``i-1-d``: the fetch is issued
    ``d`` iterations early, so it can hide behind earlier compute.  The
    consuming barrier is unchanged — iteration ``i+1`` still waits for
    the transfer — so loosening only ever shortens the timeline.  The
    trace is a replay of a completed deterministic run, which is what
    makes perfect lookahead legitimate here (DESIGN.md discusses why).
    """
    if prefetch_depth < 0:
        raise InvalidParameterError("prefetch_depth must be >= 0")
    dag = dag if dag is not None else BatchDag()
    trace: list[TraceNode] = getattr(result, "node_trace", [])
    groups: list[list[TraceNode]] = []
    for tn in trace:
        if not groups or groups[-1][0].iteration != tn.iteration:
            groups.append([tn])
        else:
            groups[-1].append(tn)
    barriers: list[tuple[int, ...]] = []
    prev_barrier: tuple[int, ...] = ()
    for gi, group in enumerate(groups):
        chain_prev = prev_barrier
        group_ids: list[int] = []
        for tn in group:
            if tn.overlap and tn.kind in _COPY_KINDS:
                src = gi - 1 - prefetch_depth
                deps = barriers[src] if src >= 0 else ()
            elif tn.overlap:
                deps = prev_barrier
            else:
                deps = chain_prev
            node_id = dag.add_node(
                tn.kind, tn.seconds, deps=deps,
                occupancy=tn.occupancy if tn.kind == KERNEL else 1.0,
                lane=lane,
            )
            group_ids.append(node_id)
            if not tn.overlap:
                chain_prev = (node_id,)
        barrier = tuple(group_ids)
        barriers.append(barrier)
        prev_barrier = barrier
    return dag


@dataclass(frozen=True)
class DagCompletion:
    """One admitted DAG finishing on the device."""

    handle: int
    finish: float


@dataclass
class _NodeState:
    node: DagNode
    handle: int
    pending_deps: int
    stream: int  # compute stream for KERNEL/HOST, engine for copies
    started: bool = False
    done: bool = False


@dataclass
class _Admitted:
    handle: int
    release: float
    remaining: int
    states: list[_NodeState] = field(default_factory=list)
    finish: float = 0.0


class StreamDevice:
    """Replays batch DAGs concurrently on one simulated device.

    The device exposes a lazy event-driven interface so an outer
    virtual-time loop (the cluster simulator) can interleave it with its
    own events:

    * :meth:`admit` enqueues a DAG's nodes at a release time,
    * :meth:`next_event_time` peeks the next internal completion,
    * :meth:`advance_to` processes events up to a time bound and
      returns the DAGs that finished.

    Resources: ``num_streams`` FIFO compute queues, each running at most
    one node at a time (CUDA stream semantics) and together sharing one
    compute capacity of 1.0 by occupancy; one H2D and one D2H copy
    engine each run a single transfer at a time.  Host nodes occupy
    their lane's stream (they serialize with it) but hold no device
    compute capacity.
    """

    def __init__(self, *, num_streams: int = 1) -> None:
        if num_streams < 1:
            raise InvalidParameterError("num_streams must be >= 1")
        self.num_streams = num_streams
        # queue ids: [0, num_streams) compute streams, then H2D, D2H.
        self._queues: list[list[_NodeState]] = [
            [] for _ in range(num_streams + 2)
        ]
        self._h2d = num_streams
        self._d2h = num_streams + 1
        # CUDA stream semantics: at most one node resident per stream.
        self._stream_busy = [False] * num_streams
        self._compute_used = 0.0
        self._copy_busy = [False, False]  # H2D, D2H
        self._events: list[tuple[float, int, _NodeState]] = []
        self._seq = 0
        self._admitted: dict[int, _Admitted] = {}
        self._next_handle = 0
        self._lane_counter = 0
        self._now = 0.0
        self._running = 0
        self._busy_since = 0.0
        self.busy_seconds = 0.0
        self.work_seconds = 0.0
        self.kernels_launched = 0
        self.transfers_launched = 0
        self.max_concurrent_kernels = 0
        self._running_kernels = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def admit(self, dag: BatchDag, release_time: float) -> int:
        """Enqueue every node of ``dag``; returns a completion handle.

        Lanes map to compute streams round-robin through a device-global
        counter, so consecutive admissions spread across streams and
        ``num_streams=1`` degenerates to one serial queue.
        """
        if release_time < self._now:
            raise InvalidParameterError(
                f"admission at {release_time} is before device time "
                f"{self._now}"
            )
        handle = self._next_handle
        self._next_handle += 1
        admitted = _Admitted(
            handle=handle, release=release_time, remaining=dag.num_nodes,
        )
        self._admitted[handle] = admitted
        if dag.num_nodes == 0:
            admitted.finish = release_time
            heapq.heappush(
                self._events,
                (release_time, self._bump_seq(),
                 _NodeState(
                     DagNode(-1, HOST, 0.0, (), 1.0, 0), handle, 0, 0,
                 )),
            )
            return handle
        lane_stream: dict[int, int] = {}
        states: list[_NodeState] = []
        for node in dag.nodes:
            if node.kind in _COPY_KINDS:
                queue = self._h2d if node.kind == H2D else self._d2h
            else:
                if node.lane not in lane_stream:
                    lane_stream[node.lane] = (
                        self._lane_counter % self.num_streams
                    )
                    self._lane_counter += 1
                queue = lane_stream[node.lane]
            state = _NodeState(
                node=node, handle=handle, pending_deps=len(node.deps),
                stream=queue,
            )
            states.append(state)
            self._queues[queue].append(state)
            self.work_seconds += node.seconds
        admitted.states = states
        self._try_start(release_time)
        return handle

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def next_event_time(self) -> float | None:
        """Virtual time of the next internal completion, if any."""
        if not self._events:
            return None
        return self._events[0][0]

    def advance_to(self, limit: float) -> list[DagCompletion]:
        """Process node completions up to ``limit`` (inclusive).

        Returns the DAGs whose last node finished, ordered by
        (finish time, admission order).
        """
        completed: list[DagCompletion] = []
        while self._events and self._events[0][0] <= limit:
            when, _, state = heapq.heappop(self._events)
            self._now = max(self._now, when)
            if state.node.node_id < 0:
                # synthetic completion event for an empty DAG
                completed.append(DagCompletion(state.handle, when))
                del self._admitted[state.handle]
                continue
            self._finish_node(state, when)
            admitted = self._admitted[state.handle]
            admitted.remaining -= 1
            admitted.finish = max(admitted.finish, when)
            if admitted.remaining == 0:
                completed.append(DagCompletion(state.handle, admitted.finish))
                del self._admitted[state.handle]
            self._try_start(when)
        return completed

    def drain(self) -> list[DagCompletion]:
        """Run every admitted DAG to completion."""
        completed: list[DagCompletion] = []
        while self._events:
            completed.extend(self.advance_to(self._events[0][0]))
        return completed

    @property
    def idle(self) -> bool:
        return not self._events and not self._admitted

    @property
    def now(self) -> float:
        return self._now

    @property
    def overlap_saved_seconds(self) -> float:
        """Serial work time the schedule hid via concurrency."""
        return max(0.0, self.work_seconds - self.busy_seconds)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _bump_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _release_ok(self, state: _NodeState, now: float) -> bool:
        return self._admitted[state.handle].release <= now

    def _try_start(self, now: float) -> None:
        """Grant queue heads in fixed order until nothing else fits."""
        progress = True
        while progress:
            progress = False
            for qid, queue in enumerate(self._queues):
                while queue:
                    head = queue[0]
                    if (head.pending_deps > 0
                            or not self._release_ok(head, now)):
                        break
                    if not self._fits(head):
                        break
                    queue.pop(0)
                    self._start_node(head, now)
                    progress = True

    def _fits(self, state: _NodeState) -> bool:
        kind = state.node.kind
        if kind == KERNEL:
            return (not self._stream_busy[state.stream]
                    and self._compute_used + state.node.occupancy
                    <= 1.0 + _EPS)
        if kind == H2D:
            return not self._copy_busy[0]
        if kind == D2H:
            return not self._copy_busy[1]
        # HOST nodes hold no device capacity but do occupy their stream.
        return not self._stream_busy[state.stream]

    def _start_node(self, state: _NodeState, now: float) -> None:
        kind = state.node.kind
        if kind == KERNEL:
            self._stream_busy[state.stream] = True
            self._compute_used += state.node.occupancy
            self.kernels_launched += 1
            self._running_kernels += 1
            self.max_concurrent_kernels = max(
                self.max_concurrent_kernels, self._running_kernels
            )
        elif kind == HOST:
            self._stream_busy[state.stream] = True
        elif kind == H2D:
            self._copy_busy[0] = True
            self.transfers_launched += 1
        elif kind == D2H:
            self._copy_busy[1] = True
            self.transfers_launched += 1
        state.started = True
        if self._running == 0:
            self._busy_since = now
        self._running += 1
        heapq.heappush(
            self._events, (now + state.node.seconds, self._bump_seq(), state)
        )

    def _finish_node(self, state: _NodeState, when: float) -> None:
        kind = state.node.kind
        if kind == KERNEL:
            self._stream_busy[state.stream] = False
            self._compute_used = max(
                0.0, self._compute_used - state.node.occupancy
            )
            self._running_kernels -= 1
        elif kind == HOST:
            self._stream_busy[state.stream] = False
        elif kind == H2D:
            self._copy_busy[0] = False
        elif kind == D2H:
            self._copy_busy[1] = False
        state.done = True
        self._running -= 1
        if self._running == 0:
            self.busy_seconds += when - self._busy_since
        for other in self._admitted[state.handle].states:
            if state.node.node_id in other.node.deps and not other.started:
                other.pending_deps -= 1
