"""Hardware descriptions for the simulator.

Defaults approximate the paper's testbed (Section 7.1): NVIDIA Quadro RTX
8000 GPUs (72 SMs, 4608 cores, 48 GB, ~672 GB/s GDDR6), dual Xeon Gold
6140 hosts, and a PCIe 3.0 x16 host link.  Every constant the cost model
uses lives here so experiments can vary the architecture (e.g. the
out-of-core scenario shrinks ``device_memory_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class GPUSpec:
    """First-order model of one GPU.

    Attributes:
        name: label for reports.
        num_sms: streaming multiprocessors.
        warp_size: lanes per warp (32 on all NVIDIA parts).
        block_size: threads per block used by the graph kernels; this is
            also the largest cooperative-group tile SAGE starts from.
        max_resident_warps_per_sm: occupancy ceiling.
        clock_ghz: SM clock.
        mem_bandwidth_gbps: device DRAM bandwidth (GB/s).
        mem_latency_cycles: DRAM round-trip latency ("generally hundreds
            of cycles", paper Section 5.2).
        latency_hiding_warps: resident warps per SM needed to fully hide
            ``mem_latency_cycles``; below this, memory time inflates.
        sector_bytes: memory transaction granularity (32 B sectors; the
            128 B cache line of Section 2.1 is four sectors).
        value_bytes: size of one node attribute (4-byte labels,
            Section 3.2).
        l2_bytes: device L2 capacity.  NOTE: scaled down with the
            synthetic datasets — the paper's graphs keep |V| * 4 B far
            above the 6 MB L2, so the scaled default preserves the
            value-array : L2 ratio instead of the absolute size.
        cycles_per_edge: SM lane-cycles to process one edge's filter work.
        kernel_launch_us: fixed host-side launch latency per kernel.
        device_memory_bytes: DRAM capacity (bounds in-core graphs).
    """

    name: str = "rtx8000-like"
    num_sms: int = 72
    warp_size: int = 32
    block_size: int = 256
    max_resident_warps_per_sm: int = 32
    clock_ghz: float = 1.77
    mem_bandwidth_gbps: float = 672.0
    mem_latency_cycles: int = 400
    latency_hiding_warps: int = 12
    sector_bytes: int = 32
    value_bytes: int = 4
    l2_bytes: int = 4 * 2**10
    cycles_per_edge: float = 4.0
    kernel_launch_us: float = 1.0
    device_memory_bytes: int = 48 * 2**30

    def __post_init__(self) -> None:
        if self.warp_size < 1 or self.block_size % self.warp_size:
            raise InvalidParameterError(
                "block_size must be a positive multiple of warp_size"
            )
        if self.sector_bytes % self.value_bytes:
            raise InvalidParameterError(
                "sector_bytes must be a multiple of value_bytes"
            )
        if min(self.num_sms, self.clock_ghz, self.mem_bandwidth_gbps) <= 0:
            raise InvalidParameterError("GPU spec quantities must be positive")

    @property
    def sector_width(self) -> int:
        """Node values per memory sector (the paper's SECTOR_WIDE)."""
        return self.sector_bytes // self.value_bytes

    @property
    def bytes_per_cycle(self) -> float:
        """Device DRAM bytes deliverable per SM clock cycle."""
        return self.mem_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)

    @property
    def l2_sectors(self) -> int:
        """L2 capacity in sectors."""
        return self.l2_bytes // self.sector_bytes

    @property
    def kernel_launch_cycles(self) -> float:
        """Kernel launch latency converted to cycles."""
        return self.kernel_launch_us * 1e-6 * self.clock_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert SM cycles to wall-clock seconds."""
        return cycles / (self.clock_ghz * 1e9)

    def with_memory(self, device_memory_bytes: int) -> "GPUSpec":
        """A copy with a different DRAM capacity (out-of-core setups)."""
        return replace(self, device_memory_bytes=device_memory_bytes)


@dataclass(frozen=True)
class CPUSpec:
    """First-order model of the host CPU (for the Ligra baseline).

    Defaults approximate 2x Xeon Gold 6140: 36 cores / 72 threads at
    2.3 GHz.  Bandwidth and per-edge cycle counts are de-rated for the
    random-access, frontier-managed workload (cross-socket traffic,
    cache-unfriendly gathers) rather than quoting peak stream numbers.
    """

    name: str = "xeon6140x2-like"
    num_threads: int = 72
    clock_ghz: float = 2.3
    mem_bandwidth_gbps: float = 60.0
    cycles_per_edge: float = 10.0
    sync_us: float = 15.0

    @property
    def bytes_per_cycle(self) -> float:
        return self.mem_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)


@dataclass(frozen=True)
class LinkSpec:
    """A host<->device or device<->device communication link.

    Models the framing behaviour of Section 3.3: every request carries a
    control segment (header) and a fixed controller cost
    (``request_overhead_us`` — DMA descriptor/fault handling), so many
    small requests collapse the effective bandwidth even when the pipe
    is wide.
    """

    name: str = "pcie3-x16"
    bandwidth_gbps: float = 12.0
    latency_us: float = 5.0
    frame_overhead_bytes: int = 24
    request_overhead_us: float = 0.5
    max_payload_bytes: int = 4096

    def transfer_seconds(self, payload_bytes: float, requests: int = 1) -> float:
        """Time to move ``payload_bytes`` split across ``requests`` frames.

        Each request pays the header; one-shot latency is charged once
        (requests are pipelined).
        """
        if payload_bytes < 0 or requests < 0:
            raise InvalidParameterError("transfer sizes must be non-negative")
        if payload_bytes == 0 and requests == 0:
            return 0.0
        wire_bytes = payload_bytes + requests * self.frame_overhead_bytes
        request_cost = requests * self.request_overhead_us * 1e-6
        return (self.latency_us * 1e-6 + request_cost
                + wire_bytes / (self.bandwidth_gbps * 1e9))


#: NVLink-ish peer link used by the multi-GPU scenario.
NVLINK2 = LinkSpec(
    name="nvlink2", bandwidth_gbps=50.0, latency_us=0.8,
    frame_overhead_bytes=16, request_overhead_us=0.05,
    max_payload_bytes=256,
)

#: PCIe 3.0 x16 host link used by the out-of-core scenario.
PCIE3_X16 = LinkSpec()
