"""Execution counters — the stand-in for NVIDIA Nsight Compute.

The paper profiles kernels with Nsight (Section 7.1); here every kernel's
stats and timing are accumulated into a :class:`Profiler` so experiments
can report lane efficiency, DRAM traffic, scheduling overhead share
(Table 3) and memory/compute boundedness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.cost import KernelStats, KernelTiming


@dataclass
class Profiler:
    """Accumulated counters over a run."""

    kernels: int = 0
    total_cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    overhead_cycles: float = 0.0
    launch_cycles: float = 0.0
    active_edges: int = 0
    issued_lane_cycles: int = 0
    value_sector_touches: int = 0
    csr_sector_touches: int = 0
    dram_bytes: float = 0.0
    atomic_conflicts: float = 0.0
    memory_bound_kernels: int = 0
    events: dict[str, float] = field(default_factory=dict)

    def record(self, stats: KernelStats, timing: KernelTiming) -> None:
        """Fold one kernel's stats and timing into the counters."""
        self.kernels += 1
        self.total_cycles += timing.cycles
        self.compute_cycles += timing.compute_cycles
        self.memory_cycles += timing.memory_cycles
        self.overhead_cycles += timing.overhead_cycles
        self.launch_cycles += timing.launch_cycles
        self.active_edges += stats.active_edges
        self.issued_lane_cycles += stats.issued_lane_cycles
        self.value_sector_touches += stats.value_sector_touches
        self.csr_sector_touches += stats.csr_sector_touches
        self.dram_bytes += timing.dram_bytes
        self.atomic_conflicts += stats.atomic_conflicts
        if timing.bound == "memory":
            self.memory_bound_kernels += 1

    def count_event(self, name: str, amount: float = 1.0) -> None:
        """Accumulate a named free-form counter (e.g. tile-store reuses)."""
        self.events[name] = self.events.get(name, 0.0) + amount

    @property
    def lane_efficiency(self) -> float:
        """Aggregate active / issued lanes (1.0 = divergence-free)."""
        if self.issued_lane_cycles == 0:
            return 1.0
        return self.active_edges / self.issued_lane_cycles

    @property
    def overhead_fraction(self) -> float:
        """Share of runtime spent on scheduling overhead (Table 3)."""
        if self.total_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.total_cycles

    def summary(self) -> dict[str, float]:
        """Headline counters as a flat dict (for reports and the CLI)."""
        return {
            "kernels": float(self.kernels),
            "total_cycles": self.total_cycles,
            "lane_efficiency": self.lane_efficiency,
            "overhead_fraction": self.overhead_fraction,
            "dram_mb": self.dram_bytes / 1e6,
            "memory_bound_share": (
                self.memory_bound_kernels / self.kernels
                if self.kernels else 0.0
            ),
            "atomic_conflicts": self.atomic_conflicts,
        }

    def format_summary(self) -> str:
        """Human-readable multi-line summary."""
        s = self.summary()
        return "\n".join([
            f"kernels            {int(s['kernels']):10d}",
            f"lane efficiency    {s['lane_efficiency']:10.3f}",
            f"scheduling share   {100 * s['overhead_fraction']:9.1f} %",
            f"DRAM traffic       {s['dram_mb']:10.2f} MB",
            f"memory-bound share {100 * s['memory_bound_share']:9.1f} %",
            f"atomic conflicts   {s['atomic_conflicts']:10.0f}",
        ])

    def merged_with(self, other: "Profiler") -> "Profiler":
        """Return a new profiler summing both operands' counters."""
        out = Profiler()
        for name in (
            "kernels", "total_cycles", "compute_cycles", "memory_cycles",
            "overhead_cycles", "launch_cycles", "active_edges",
            "issued_lane_cycles", "value_sector_touches",
            "csr_sector_touches", "dram_bytes", "atomic_conflicts",
            "memory_bound_kernels",
        ):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        out.events = dict(self.events)
        for key, val in other.events.items():
            out.events[key] = out.events.get(key, 0.0) + val
        return out
