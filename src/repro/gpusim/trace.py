"""Trace-driven cache analysis (the deep-profiling companion tool).

While the cost model estimates L2 behaviour analytically for speed, this
module replays a traversal's *exact* sector access stream through the
exact :class:`~repro.gpusim.memory.LRUCacheModel` — the kind of ground
truth Nsight Compute provides on real hardware.  It is used by tests to
validate the analytic estimator and by users to inspect how reordering
changes cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import App
from repro.core.frontier import FrontierQueue
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.memory import LRUCacheModel
from repro.gpusim.spec import GPUSpec


@dataclass(frozen=True)
class CacheTraceReport:
    """Exact cache statistics of one traversal."""

    accesses: int
    hits: int
    misses: int
    iterations: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def dram_sectors(self) -> int:
        return self.misses


def replay_cache_trace(
    graph: CSRGraph,
    app: App,
    source: int | None = None,
    *,
    spec: GPUSpec | None = None,
    capacity_sectors: int | None = None,
    max_iterations: int = 10_000,
    sample_stride: int = 1,
) -> CacheTraceReport:
    """Run ``app`` functionally and replay its value-array sector trace.

    Args:
        graph: input graph.
        app: application (run to convergence, results discarded).
        source: traversal source if the app needs one.
        spec: hardware description (sector width, default L2 size).
        capacity_sectors: cache size override.
        max_iterations: convergence guard.
        sample_stride: replay every ``stride``-th access (>=1) to bound
            cost on large traces; hits/misses are scaled accordingly.

    Returns:
        Exact LRU statistics over the (possibly strided) access stream.
    """
    spec = spec or GPUSpec()
    capacity = capacity_sectors or spec.l2_sectors
    cache = LRUCacheModel(capacity)
    app.setup(graph, source)
    queue = FrontierQueue(app.initial_frontier())
    accesses = 0
    iterations = 0
    while not queue.empty:
        if iterations >= max_iterations:
            raise ConvergenceError("trace replay exceeded iteration bound")
        frontier = queue.current
        edge_src, edge_dst, edge_pos = graph.expand_frontier(frontier)
        sectors = (edge_dst // spec.sector_width)[::sample_stride]
        cache.access(sectors)
        accesses += int(sectors.size)
        next_frontier = app.process_level(
            edge_src, edge_dst,
            edge_pos if app.needs_edge_positions else None,
        )
        queue.publish_next(next_frontier)
        queue.swap()
        iterations += 1
    return CacheTraceReport(
        accesses=accesses,
        hits=cache.hits,
        misses=cache.misses,
        iterations=iterations,
    )
