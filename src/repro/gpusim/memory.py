"""Sector-granular memory access model.

GPUs move data in fixed-size sectors (32 B; four per 128 B cache line,
paper Section 2.1).  A cooperative tile reading ``m`` scattered node
values therefore costs ``count(distinct(floor(id / sector_width)))``
transactions — the exact quantity the Sampling-based Reordering objective
minimizes (paper Section 6).

This module provides vectorized distinct-sector counting over segmented
access batches plus an LRU cache used both exactly (tests, profiling) and
as a sampled estimator inside the cost model.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import InvalidParameterError


def sector_ids(addresses: np.ndarray, sector_width: int) -> np.ndarray:
    """Map element indices to sector ids."""
    if sector_width < 1:
        raise InvalidParameterError("sector_width must be >= 1")
    return np.asarray(addresses, dtype=np.int64) // sector_width


def distinct_sectors(addresses: np.ndarray, sector_width: int) -> int:
    """Number of distinct sectors touched by one access batch."""
    if len(addresses) == 0:
        return 0
    return int(np.unique(sector_ids(addresses, sector_width)).size)


def segmented_distinct_sectors(
    addresses: np.ndarray,
    segment_starts: np.ndarray,
    sector_width: int,
    *,
    presorted: bool = False,
) -> np.ndarray:
    """Distinct sector count per segment of a concatenated access array.

    Args:
        addresses: concatenated element indices of all segments.
        segment_starts: start offset of each segment; segment ``i`` is
            ``addresses[segment_starts[i]:segment_starts[i + 1]]`` with an
            implicit final boundary at ``len(addresses)``.
        sector_width: elements per sector.
        presorted: set when every segment is individually sorted (true for
            tiles cut from CSR adjacency slices) to skip the per-segment
            sort.

    Returns:
        int64 array with one distinct-sector count per segment.

    The whole computation is O(E) or O(E log E) vectorized: distinct count
    per sorted segment is one plus the number of internal sector jumps.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    starts = np.asarray(segment_starts, dtype=np.int64)
    n_seg = starts.size
    if n_seg == 0:
        return np.zeros(0, dtype=np.int64)
    bounds = np.append(starts, addresses.size)
    lengths = np.diff(bounds)
    if np.any(lengths < 0) or (starts.size and starts[0] != 0):
        raise InvalidParameterError("segment_starts must be sorted from 0")
    secs = sector_ids(addresses, sector_width)
    if not presorted and addresses.size:
        seg_of = np.repeat(np.arange(n_seg, dtype=np.int64), lengths)
        order = np.lexsort((secs, seg_of))
        secs = secs[order]
    counts = np.zeros(n_seg, dtype=np.int64)
    if addresses.size == 0:
        return counts
    jumps = np.zeros(addresses.size, dtype=bool)
    jumps[1:] = np.diff(secs) != 0
    # First element of each non-empty segment opens a new sector; empty
    # segments (start == end, possibly == len) have nothing to mark.
    jumps[starts[starts < addresses.size]] = True
    np.add.at(counts, np.repeat(np.arange(n_seg), lengths), jumps.astype(np.int64))
    return counts


def coalesced_sectors(
    batch_sizes: np.ndarray,
    sector_width: int,
    *,
    aligned: bool,
) -> np.ndarray:
    """Sectors consumed by contiguous (coalesced) reads per batch.

    CSR adjacency reads by a tile are contiguous: a tile of ``s`` lanes
    reads ``s`` consecutive array elements.  Aligned tiles (SAGE's tile
    alignment, Section 5.3) touch ``ceil(s / w)`` sectors; unaligned reads
    straddle one extra sector whenever ``s`` is not a multiple of ``w``'s
    phase, modeled as a +1 for any batch not a multiple of the width.
    """
    sizes = np.asarray(batch_sizes, dtype=np.int64)
    base = -(-sizes // sector_width)  # ceil division
    if aligned:
        return base
    straddle = (sizes % sector_width != 0) | (sizes >= sector_width)
    return base + straddle.astype(np.int64)


class LRUCacheModel:
    """Exact LRU cache over sector ids.

    Used to measure hit rates of small traces exactly (tests and the
    profiler) — the cost model uses :func:`estimate_dram_sectors` for
    speed on large traces.
    """

    def __init__(self, capacity_sectors: int) -> None:
        if capacity_sectors < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        self.capacity = capacity_sectors
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, sectors: np.ndarray | list[int]) -> int:
        """Touch sectors in order; returns the number of misses added."""
        misses = 0
        entries = self._entries
        for s in np.asarray(sectors, dtype=np.int64).tolist():
            if s in entries:
                entries.move_to_end(s)
                self.hits += 1
            else:
                entries[s] = None
                self.misses += 1
                misses += 1
                if len(entries) > self.capacity:
                    entries.popitem(last=False)
        return misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


def estimate_dram_sectors(
    touches: int,
    unique: int,
    capacity_sectors: int,
) -> float:
    """Estimate DRAM sector transactions behind an L2 of given capacity.

    A kernel touches ``touches`` sectors of which ``unique`` are distinct.
    Cold misses cost ``unique``.  Repeat touches hit if the working set
    fits in L2, and degrade linearly with the overflow ratio otherwise:

        dram = unique + (touches - unique) * max(0, 1 - capacity / unique)

    Monotone in both arguments and exact at the fits-entirely and
    no-reuse extremes, which is all the comparisons need.
    """
    if touches < unique or unique < 0:
        raise InvalidParameterError("need touches >= unique >= 0")
    if unique == 0:
        return 0.0
    repeat = touches - unique
    overflow = max(0.0, 1.0 - capacity_sectors / unique)
    return unique + repeat * overflow
