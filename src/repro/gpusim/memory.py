"""Sector-granular memory access model.

GPUs move data in fixed-size sectors (32 B; four per 128 B cache line,
paper Section 2.1).  A cooperative tile reading ``m`` scattered node
values therefore costs ``count(distinct(floor(id / sector_width)))``
transactions — the exact quantity the Sampling-based Reordering objective
minimizes (paper Section 6).

This module provides vectorized distinct-sector counting over segmented
access batches plus an LRU cache used both exactly (tests, profiling) and
as a sampled estimator inside the cost model.

Hot-path discipline (see DESIGN.md "Hot-path complexity budgets"): every
function here runs once per simulated kernel, so each is bounded by
O(E) or O(E log E) vectorized work with no per-element Python loops.
Reference implementations (``*_reference`` / :class:`ReferenceLRUCache`)
retain the straightforward formulations; the equivalence property tests
in ``tests/test_hotpath_equivalence.py`` pin the optimized paths to them
bit-for-bit.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import InvalidParameterError


def dtype_address_capacity(dtype: np.dtype) -> int | None:
    """Largest value an integer dtype can hold, or None for non-integers.

    The sanitizer's dtype-narrowing check: index arrays take part in
    address arithmetic (``id * value_bytes``, sector ids), so a batch
    carried in a dtype whose capacity is below the largest byte address
    silently wraps.  Floating/object dtypes return None (no fixed
    integer capacity to check against).
    """
    dtype = np.dtype(dtype)
    if dtype.kind not in ("i", "u"):
        return None
    return int(np.iinfo(dtype).max)


def sector_ids(addresses: np.ndarray, sector_width: int) -> np.ndarray:
    """Map element indices to sector ids."""
    if sector_width < 1:
        raise InvalidParameterError("sector_width must be >= 1")
    return np.asarray(addresses, dtype=np.int64) // sector_width


def distinct_count(values: np.ndarray) -> int:
    """Number of distinct values in a non-negative int array.

    Equivalent to ``np.unique(values).size`` but bincount-based — O(n +
    max) instead of hash/sort based — which is several times faster for
    the dense id ranges graph kernels produce (node ids < |V|).  Falls
    back to ``np.unique`` when the value range is too sparse for a dense
    count array to pay off.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    max_value = int(values.max())
    if max_value <= 16 * values.size + 1024:
        return int(np.count_nonzero(np.bincount(values, minlength=max_value + 1)))
    return int(np.unique(values).size)


def distinct_sectors(addresses: np.ndarray, sector_width: int) -> int:
    """Number of distinct sectors touched by one access batch."""
    if len(addresses) == 0:
        return 0
    return distinct_count(sector_ids(addresses, sector_width))


def _segment_bounds(
    addresses: np.ndarray, segment_starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validated (bounds, lengths) of a segmented batch."""
    starts = np.asarray(segment_starts, dtype=np.int64)
    bounds = np.append(starts, addresses.size)
    lengths = np.diff(bounds)
    if np.any(lengths < 0) or (starts.size and starts[0] != 0):
        raise InvalidParameterError("segment_starts must be sorted from 0")
    return bounds, lengths


def segmented_distinct_sectors(
    addresses: np.ndarray,
    segment_starts: np.ndarray,
    sector_width: int,
    *,
    presorted: bool = False,
) -> np.ndarray:
    """Distinct sector count per segment of a concatenated access array.

    Args:
        addresses: concatenated element indices of all segments.
        segment_starts: start offset of each segment; segment ``i`` is
            ``addresses[segment_starts[i]:segment_starts[i + 1]]`` with an
            implicit final boundary at ``len(addresses)``.
        sector_width: elements per sector.
        presorted: set when every segment is individually sorted (true for
            tiles cut from CSR adjacency slices) to skip the per-segment
            sort.

    Returns:
        int64 array with one distinct-sector count per segment.

    Distinct count per sorted segment is one plus the number of internal
    sector jumps; per-segment totals come from binary-searching the
    segment bounds against the sorted jump positions (no scatter-add, no
    full-length prefix sum).  The unsorted path sorts one composite
    ``segment * span + sector`` key — a single flat int64 sort instead of
    a two-key lexsort.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    starts = np.asarray(segment_starts, dtype=np.int64)
    n_seg = starts.size
    if n_seg == 0:
        return np.zeros(0, dtype=np.int64)
    bounds, lengths = _segment_bounds(addresses, starts)
    if addresses.size == 0:
        return np.zeros(n_seg, dtype=np.int64)
    secs = sector_ids(addresses, sector_width)
    if not presorted:
        lo = int(secs.min())
        span = int(secs.max()) - lo + 1
        if span * n_seg < 2**62:
            seg_of = np.repeat(np.arange(n_seg, dtype=np.int64), lengths)
            key = seg_of * span + (secs - lo)
            key.sort()
            secs = key  # keys of different segments never collide
        else:  # pragma: no cover - astronomically sparse ranges
            seg_of = np.repeat(np.arange(n_seg, dtype=np.int64), lengths)
            order = np.lexsort((secs, seg_of))
            secs = secs[order]
    jumps = np.empty(addresses.size, dtype=bool)
    jumps[0] = True
    np.not_equal(secs[1:], secs[:-1], out=jumps[1:])
    # First element of each non-empty segment opens a new sector; empty
    # segments (start == end, possibly == len) have nothing to mark.
    jumps[starts[starts < addresses.size]] = True
    jump_pos = np.flatnonzero(jumps)
    edges = np.searchsorted(jump_pos, bounds)
    return edges[1:] - edges[:-1]


def segmented_distinct_sectors_reference(
    addresses: np.ndarray,
    segment_starts: np.ndarray,
    sector_width: int,
    *,
    presorted: bool = False,
) -> np.ndarray:
    """Pre-optimization formulation (lexsort + scatter-add), kept as the
    equivalence-test reference for :func:`segmented_distinct_sectors`."""
    addresses = np.asarray(addresses, dtype=np.int64)
    starts = np.asarray(segment_starts, dtype=np.int64)
    n_seg = starts.size
    if n_seg == 0:
        return np.zeros(0, dtype=np.int64)
    _, lengths = _segment_bounds(addresses, starts)
    secs = sector_ids(addresses, sector_width)
    if not presorted and addresses.size:
        seg_of = np.repeat(np.arange(n_seg, dtype=np.int64), lengths)
        order = np.lexsort((secs, seg_of))
        secs = secs[order]
    counts = np.zeros(n_seg, dtype=np.int64)
    if addresses.size == 0:
        return counts
    jumps = np.zeros(addresses.size, dtype=bool)
    jumps[1:] = np.diff(secs) != 0
    jumps[starts[starts < addresses.size]] = True
    np.add.at(counts, np.repeat(np.arange(n_seg), lengths), jumps.astype(np.int64))
    return counts


def coalesced_sectors(
    batch_sizes: np.ndarray,
    sector_width: int,
    *,
    aligned: bool,
) -> np.ndarray:
    """Sectors consumed by contiguous (coalesced) reads per batch.

    CSR adjacency reads by a tile are contiguous: a tile of ``s`` lanes
    reads ``s`` consecutive array elements.  Aligned tiles (SAGE's tile
    alignment, Section 5.3) touch ``ceil(s / w)`` sectors; unaligned reads
    straddle one extra sector whenever ``s`` is not a multiple of ``w``'s
    phase, modeled as a +1 for any batch not a multiple of the width.
    """
    sizes = np.asarray(batch_sizes, dtype=np.int64)
    base = -(-sizes // sector_width)  # ceil division
    if aligned:
        return base
    straddle = (sizes % sector_width != 0) | (sizes >= sector_width)
    return base + straddle.astype(np.int64)


def _permutation_prefix_counts(
    perm: np.ndarray, t_ranks: np.ndarray, p_limits: np.ndarray
) -> np.ndarray:
    """For each query ``i``: ``#{r < t_ranks[i] : perm[r] < p_limits[i]}``.

    2D dominance counting over a permutation-like array by binary range
    decomposition (the mergesort/wavelet-tree idea, fully vectorized).
    ``perm`` is padded to a power-of-two length with a sentinel that no
    query limit exceeds; at level ``l`` the working array is sorted
    within aligned blocks of width ``2**l``, and every query whose
    threshold has bit ``l`` set resolves one aligned block of its
    ``[0, t)`` prefix with a single global ``searchsorted`` — block
    offsets of ``size + 1`` make the blockwise-sorted array globally
    strictly increasing, so one call answers all queries of the level.
    Pairwise-merging blocks between levels costs ``O(n log n)`` per
    level: ``O(n log^2 n)`` total with ``O(n)`` live memory, which is
    what lets the LRU model take arbitrarily large batches whole instead
    of chunking them.
    """
    n = perm.size
    n_queries = t_ranks.size
    if n == 0 or n_queries == 0:
        return np.zeros(n_queries, dtype=np.int64)
    n_bits = max(1, int(n - 1).bit_length())
    size = 1 << n_bits
    # Sentinel `n`: every real limit satisfies p_limits <= n, so padded
    # slots can never be counted.
    vals = np.full(size, n, dtype=np.int64)
    vals[:n] = perm
    out = np.zeros(n_queries, dtype=np.int64)
    block_of = np.arange(size, dtype=np.int64)
    # Levels above the highest set bit of any threshold resolve no
    # queries; `np.sort` over width-2**l rows is correct regardless of
    # the previous level's state, so skipped levels cost nothing.
    max_level = min(n_bits, int(t_ranks.max()).bit_length() - 1)
    for level in range(max_level + 1):
        selected = np.flatnonzero((t_ranks >> level) & 1)
        if selected.size == 0:
            continue
        if level > 0:
            vals = np.sort(vals.reshape(-1, 1 << level), axis=1).ravel()
        # The [0, t) prefix decomposes into one aligned block per set
        # bit of t; bit `level`'s block starts at t with bits 0..level
        # cleared and spans 2**level elements, sorted at this level.
        starts = t_ranks[selected] & ~np.int64((2 << level) - 1)
        aug = vals + (block_of >> level) * np.int64(size + 1)
        keys = p_limits[selected] + (starts >> level) * np.int64(size + 1)
        # Searching the keys in sorted order keeps consecutive binary
        # searches on overlapping cache lines — ~4x faster than probing
        # in arrival order once `aug` falls out of L2.
        order = np.argsort(keys)
        idx = np.empty(keys.size, dtype=np.int64)
        idx[order] = np.searchsorted(aug, keys[order], side="left")
        out[selected] += idx - starts
    return out


def _prefix_dominance_counts(
    values: np.ndarray, q_pos: np.ndarray, q_val: np.ndarray
) -> np.ndarray:
    """For each query ``t``: ``#{j < q_pos[t] : values[j] <= q_val[t]}``.

    The workhorse of the batched LRU stack-distance computation.  Small
    problems take one dense 2D comparison; larger ones are reduced to
    permutation dominance counting: rank-compress the values (a stable
    argsort is a permutation even with ties), turn each value threshold
    into a rank threshold with one ``searchsorted``, and hand the
    position/rank dominance problem to
    :func:`_permutation_prefix_counts` (``O((n + q) log^2 n)`` time,
    ``O(n + q)`` memory).
    """
    n = values.size
    n_queries = q_pos.size
    if n == 0 or n_queries == 0:
        return np.zeros(n_queries, dtype=np.int64)
    if n * n_queries <= 1 << 18:
        lanes = np.arange(n, dtype=np.int64)
        return np.count_nonzero(
            (lanes[None, :] < q_pos[:, None]) & (values[None, :] <= q_val[:, None]),
            axis=1,
        ).astype(np.int64)
    # Rank-compress: rank[j] = position of values[j] in sorted order
    # (ties broken by position), so "values[j] <= X" becomes
    # "rank[j] < searchsorted(sorted_values, X, 'right')".
    order = np.argsort(values, kind="stable")
    thresholds = np.searchsorted(values[order], q_val, side="right")
    # Count ranks r < threshold whose original position order[r] < q_pos.
    return _permutation_prefix_counts(order, thresholds, q_pos)


class LRUCacheModel:
    """Exact LRU cache over sector ids, batch-vectorized.

    Used to measure hit rates of small traces exactly (tests and the
    profiler) — the cost model uses :func:`estimate_dram_sectors` for
    speed on large traces.

    :meth:`access` exploits the LRU stack (inclusion) property: an access
    hits iff fewer than ``capacity`` distinct sectors were touched since
    the sector's previous access.  Stack distances for the whole batch
    are computed with :func:`_prefix_dominance_counts` instead of
    walking an ordered dict per sector; its ``O(n log^2 n)``-time,
    ``O(n)``-memory dominance counter keeps arbitrarily large batches in
    one vectorized pass (no chunking).  Results are bit-identical to
    :class:`ReferenceLRUCache` (property-tested).
    """

    def __init__(self, capacity_sectors: int) -> None:
        if capacity_sectors < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        self.capacity = capacity_sectors
        self.hits = 0
        self.misses = 0
        self._time = 0
        # Sorted distinct sectors ever touched + their last access times.
        self._sectors = np.empty(0, dtype=np.int64)
        self._times = np.empty(0, dtype=np.int64)
        self._times_sorted = np.empty(0, dtype=np.int64)

    def access(self, sectors: np.ndarray | list[int]) -> int:
        """Touch sectors in order; returns the number of misses added."""
        return self._access_batch(np.asarray(sectors, dtype=np.int64).ravel())

    def _access_batch(self, batch: np.ndarray) -> int:
        n = batch.size
        if n == 0:
            return 0
        t0 = self._time

        # Previous occurrence of each element within the batch (-1 when
        # the element is its sector's first batch occurrence).
        order = np.argsort(batch, kind="stable")
        sorted_secs = batch[order]
        prev_rel = np.full(n, -1, dtype=np.int64)
        if n > 1:
            same = sorted_secs[1:] == sorted_secs[:-1]
            prev_rel[order[1:]] = np.where(same, order[:-1], np.int64(-1))

        # Global previous-access time: in-batch position + t0, else the
        # stored last-access time, else -1 (never seen).
        prev_glob = np.where(prev_rel >= 0, t0 + prev_rel, np.int64(-1))
        firsts = np.flatnonzero(prev_rel < 0)
        if self._sectors.size and firsts.size:
            first_secs = batch[firsts]
            idx = np.searchsorted(self._sectors, first_secs)
            idx_c = np.minimum(idx, self._sectors.size - 1)
            found = (idx < self._sectors.size) & (self._sectors[idx_c] == first_secs)
            prev_glob[firsts] = np.where(found, self._times[idx_c], np.int64(-1))

        # An access hits iff its stack distance D — the distinct sectors
        # touched strictly between the previous access and this one — is
        # below capacity.  Most accesses are classified by O(1) bounds;
        # only the ambiguous remainder pays for exact dominance counting.
        capacity = self.capacity
        hit = np.zeros(n, dtype=bool)
        is_first = prev_rel < 0
        # firsts_in_prefix[x] = number of batch-firsts at positions < x.
        firsts_in_prefix = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(is_first)]
        )

        # Batch-first accesses: the window reaches into pre-batch state.
        # D = (state sectors last touched inside the window) + (earlier
        # firsts whose own previous access also precedes the window).
        if firsts.size:
            fprev = prev_glob[firsts]
            seen = fprev >= 0
            state_above = self._times_sorted.size - np.searchsorted(
                self._times_sorted, fprev, side="right"
            )
            first_rank = np.arange(firsts.size, dtype=np.int64)
            never_before = first_rank - np.cumsum(seen) + seen
            # Never-seen earlier firsts always land in the window; at
            # most every earlier first does.
            d_low = state_above + never_before
            d_high = state_above + first_rank
            f_hit = seen & (d_high < capacity)
            ambiguous = np.flatnonzero(seen & ~f_hit & (d_low < capacity))
            if ambiguous.size:
                # Only points at or below the largest query threshold can
                # ever be counted; dropping the rest shrinks the
                # dominance problem (order among keepers is preserved).
                keep = fprev <= fprev[ambiguous].max()
                kept_prefix = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(keep)]
                )
                g = _prefix_dominance_counts(
                    fprev[keep],
                    kept_prefix[first_rank[ambiguous]],
                    fprev[ambiguous],
                )
                f_hit[ambiguous] = state_above[ambiguous] + g < capacity
            hit[firsts] = f_hit

        # Repeat accesses: the window lies inside the batch.  D = (firsts
        # in the window — each a fresh distinct sector) + (repeats in the
        # window whose own previous access precedes the window).
        repeats = np.flatnonzero(prev_rel >= 0)
        if repeats.size:
            p_rel = prev_rel[repeats]
            window = repeats - p_rel - 1
            f1 = firsts_in_prefix[repeats] - firsts_in_prefix[p_rel + 1]
            r_hit = window < capacity  # D <= accesses in the window
            ambiguous = np.flatnonzero(~r_hit & (f1 < capacity))
            if ambiguous.size:
                x_hi = ambiguous  # index of each query repeat among repeats
                x_lo = np.searchsorted(repeats, p_rel[ambiguous] + 1)
                v = p_rel[ambiguous]
                keep = p_rel <= v.max()
                kept_prefix = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(keep)]
                )
                counts = _prefix_dominance_counts(
                    p_rel[keep],
                    kept_prefix[np.concatenate([x_hi, x_lo])],
                    np.concatenate([v, v]),
                )
                f2 = counts[: ambiguous.size] - counts[ambiguous.size :]
                r_hit[ambiguous] = f1[ambiguous] + f2 < capacity
            hit[repeats] = r_hit

        new_hits = int(np.count_nonzero(hit))
        new_misses = n - new_hits
        self.hits += new_hits
        self.misses += new_misses
        self._time = t0 + n

        # Fold the batch into the state: last access time per sector.
        run_ends = np.flatnonzero(
            np.append(sorted_secs[1:] != sorted_secs[:-1], True)
        )
        batch_uniq = sorted_secs[run_ends]
        batch_last = t0 + order[run_ends]
        stale_times = np.empty(0, dtype=np.int64)
        if self._sectors.size:
            idx = np.searchsorted(self._sectors, batch_uniq)
            idx_c = np.minimum(idx, self._sectors.size - 1)
            found = (idx < self._sectors.size) & (self._sectors[idx_c] == batch_uniq)
            stale_times = np.sort(self._times[idx_c[found]])
            self._times[idx_c[found]] = batch_last[found]
            fresh = ~found
        else:
            fresh = np.ones(batch_uniq.size, dtype=bool)
        if fresh.any():
            insert_at = np.searchsorted(self._sectors, batch_uniq[fresh])
            self._sectors = np.insert(self._sectors, insert_at, batch_uniq[fresh])
            self._times = np.insert(self._times, insert_at, batch_last[fresh])
        # Every new time exceeds every retained one, so the sorted-times
        # update is drop-stale + append-sorted-batch, no full re-sort.
        retained = self._times_sorted
        if stale_times.size:
            retained = np.delete(retained, np.searchsorted(retained, stale_times))
        self._times_sorted = np.concatenate([retained, np.sort(batch_last)])

        # Prune to the `capacity` most recent distinct sectors — the LRU
        # stack property makes older entries irrelevant: their next
        # access has stack distance >= capacity (a certain miss, which
        # the never-seen classification reports), and they cannot appear
        # in any other access's reuse window (a window sector's last
        # touch lies inside the window, i.e. after every pruned time).
        # Keeps every state-sized merge pass O(capacity + batch) instead
        # of O(distinct sectors ever).
        if self._sectors.size > capacity:
            keep = self._times >= self._times_sorted[-capacity]
            self._sectors = self._sectors[keep]
            self._times = self._times[keep]
            self._times_sorted = self._times_sorted[-capacity:]
        return new_misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self._time = 0
        self._sectors = np.empty(0, dtype=np.int64)
        self._times = np.empty(0, dtype=np.int64)
        self._times_sorted = np.empty(0, dtype=np.int64)


class ReferenceLRUCache:
    """The original per-sector Python loop, kept as the equivalence-test
    reference for :class:`LRUCacheModel`."""

    def __init__(self, capacity_sectors: int) -> None:
        if capacity_sectors < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        self.capacity = capacity_sectors
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, sectors: np.ndarray | list[int]) -> int:
        misses = 0
        entries = self._entries
        for s in np.asarray(sectors, dtype=np.int64).tolist():
            if s in entries:
                entries.move_to_end(s)
                self.hits += 1
            else:
                entries[s] = None
                self.misses += 1
                misses += 1
                if len(entries) > self.capacity:
                    entries.popitem(last=False)
        return misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


def estimate_dram_sectors(
    touches: int,
    unique: int,
    capacity_sectors: int,
) -> float:
    """Estimate DRAM sector transactions behind an L2 of given capacity.

    A kernel touches ``touches`` sectors of which ``unique`` are distinct.
    Cold misses cost ``unique``.  Repeat touches hit if the working set
    fits in L2, and degrade linearly with the overflow ratio otherwise:

        dram = unique + (touches - unique) * max(0, 1 - capacity / unique)

    Monotone in both arguments and exact at the fits-entirely and
    no-reuse extremes, which is all the comparisons need.
    """
    if touches < unique or unique < 0:
        raise InvalidParameterError("need touches >= unique >= 0")
    if unique == 0:
        return 0.0
    repeat = touches - unique
    overflow = max(0.0, 1.0 - capacity_sectors / unique)
    return unique + repeat * overflow
