"""Discrete-event makespan simulator (executable check of the cost model).

The analytic cost model (``gpusim.cost``) *assumes* two placement
regimes: owner-bound blocks (a heavy block makes its SM the straggler)
and a work-conserving global queue (Resident Tile Stealing).  This module
simulates both regimes event-by-event — SMs as multi-slot servers, tiles
as tasks — so tests can verify the assumptions instead of trusting them:

* with stealing, makespan approaches ``total_work / (sms * slots)``,
* without, it is bottlenecked by the heaviest owner queue,
* stealing never increases makespan.

It is also available to users who want to inspect scheduling dynamics
(idle time, steal counts) beyond the analytic summary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.tiling import TileDecomposition
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class Task:
    """One schedulable work unit (a tile or fragment batch)."""

    duration_cycles: float
    owner_block: int


@dataclass(frozen=True)
class MakespanReport:
    """Outcome of one simulated kernel."""

    makespan_cycles: float
    per_sm_busy_cycles: np.ndarray
    steals: int
    tasks: int

    @property
    def utilization(self) -> float:
        """Busy share of the SM-slots over the makespan."""
        if self.makespan_cycles <= 0:
            return 1.0
        capacity = self.per_sm_busy_cycles.size * self.makespan_cycles
        return float(self.per_sm_busy_cycles.sum() / capacity)

    @property
    def imbalance(self) -> float:
        """max / mean busy cycles across SMs (1.0 = perfectly balanced)."""
        mean = self.per_sm_busy_cycles.mean()
        if mean == 0:
            return 1.0
        return float(self.per_sm_busy_cycles.max() / mean)


class MakespanSimulator:
    """SMs as multi-slot servers consuming a task list."""

    def __init__(self, num_sms: int, slots_per_sm: int = 4) -> None:
        if num_sms < 1 or slots_per_sm < 1:
            raise InvalidParameterError("need >= 1 SM and slot")
        self.num_sms = num_sms
        self.slots_per_sm = slots_per_sm

    def simulate(
        self, tasks: list[Task], *, stealing: bool
    ) -> MakespanReport:
        """Run one kernel's tasks to completion.

        Args:
            tasks: work units; with ``stealing=False`` each runs on the
                SM owning its block (``owner_block % num_sms``); with
                ``stealing=True`` any idle slot takes the next task.
        """
        if not tasks:
            return MakespanReport(0.0, np.zeros(self.num_sms), 0, 0)
        busy = np.zeros(self.num_sms)
        steals = 0
        if stealing:
            # one global queue; every (sm, slot) is a server
            queue = list(tasks)
            queue.reverse()  # pop() from the front order
            servers: list[tuple[float, int]] = [
                (0.0, sm)
                for sm in range(self.num_sms)
                for _ in range(self.slots_per_sm)
            ]
            heapq.heapify(servers)
            finish = 0.0
            while queue:
                free_at, sm = heapq.heappop(servers)
                task = queue.pop()
                done = free_at + task.duration_cycles
                busy[sm] += task.duration_cycles
                if task.owner_block % self.num_sms != sm:
                    steals += 1
                finish = max(finish, done)
                heapq.heappush(servers, (done, sm))
            return MakespanReport(finish, busy, steals, len(tasks))

        # owner placement: independent per-SM queues
        finish = 0.0
        for sm in range(self.num_sms):
            mine = [t for t in tasks if t.owner_block % self.num_sms == sm]
            if not mine:
                continue
            slots = [0.0] * self.slots_per_sm
            for task in mine:
                slot = min(range(self.slots_per_sm), key=slots.__getitem__)
                slots[slot] += task.duration_cycles
                busy[sm] += task.duration_cycles
            finish = max(finish, max(slots))
        return MakespanReport(finish, busy, 0, len(tasks))


def tasks_from_decomposition(
    decomp: TileDecomposition,
    *,
    cycles_per_edge: float = 1.0,
    block_size: int | None = None,
) -> list[Task]:
    """Turn a Tiled-Partitioning decomposition into simulator tasks.

    Each tile (and fragment) becomes one task whose duration is its edge
    count times ``cycles_per_edge``; the owner block is the frontier
    position divided by the block size (how blocks chunk the frontier).
    """
    block = block_size or decomp.block_size
    tasks: list[Task] = []
    for idx, size in zip(decomp.tile_frontier_idx.tolist(),
                         decomp.tile_sizes.tolist()):
        tasks.append(Task(size * cycles_per_edge, idx // block))
    for idx, size in zip(decomp.fragment_frontier_idx.tolist(),
                         decomp.fragment_sizes.tolist()):
        tasks.append(Task(size * cycles_per_edge, idx // block))
    return tasks
