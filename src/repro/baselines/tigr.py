"""Tigr: uniform-degree tree transformation (Sabet et al. [37]).

Tigr *preprocesses* the graph: every node with out-degree above a split
threshold ``K`` becomes a tree of virtual nodes, each owning at most
``K`` of the original edges, so a plain thread-per-(virtual-)node kernel
sees a near-regular degree distribution.  The costs the paper calls out
(Sections 3.1, 5.3, 7.2) are modeled explicitly:

* preprocessing time (measured wall-clock of the transform),
* auxiliary structure: extra virtual nodes and tree edges,
* a per-iteration synchronization pass keeping virtual twins coherent —
  pure overhead on graphs that were already regular (why Tigr loses on
  ``brain``).

Traversal *semantics* stay on the real graph (Tigr guarantees equivalent
results via its virtual-node value synchronization), so applications
produce identical outputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.apps.base import App
from repro.baselines.b40c import chunked_segment_starts
from repro.core.scheduler import (
    Scheduler,
    SectorAccounting,
    atomic_conflicts_for,
    value_sector_accounting,
)
from repro.gpusim.memory import coalesced_sectors
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelStats, even_placement
from repro.gpusim.spec import GPUSpec

#: Default virtual-node degree bound (Tigr's paper uses warp-sized splits).
DEFAULT_SPLIT_DEGREE = 32

#: twin-value synchronization cost per virtual node per iteration.
TWIN_SYNC_CYCLES = 24.0
#: coordination between the twins of a *split* node: every extra virtual
#: merges its frontier decision into the parent via global-memory
#: atomics, serializing per split node.
SPLIT_COORDINATION_CYCLES = 60.0


@dataclass(frozen=True)
class UDTTransform:
    """Result of the uniform-degree tree preprocessing."""

    split_degree: int
    virtual_count_per_node: np.ndarray
    num_virtual_nodes: int
    extra_tree_edges: int
    build_seconds: float

    @property
    def expansion_factor(self) -> float:
        """Virtual nodes per real node (aux-structure blowup)."""
        return self.num_virtual_nodes / max(1, self.virtual_count_per_node.size)


def udt_transform(graph: CSRGraph, split_degree: int = DEFAULT_SPLIT_DEGREE) -> UDTTransform:
    """Build the UDT preprocessing metadata for ``graph``.

    Every node of degree ``d`` maps to ``max(1, ceil(d / K))`` virtual
    nodes; split nodes additionally contribute ``ceil(d / K) - 1`` tree
    edges linking their virtual chain.
    """
    if split_degree < 1:
        raise InvalidParameterError("split_degree must be >= 1")
    started = time.perf_counter()
    degrees = graph.out_degrees()
    virtuals = np.maximum(1, -(-degrees // split_degree))
    extra_edges = int((virtuals - 1).sum())
    build_seconds = time.perf_counter() - started
    return UDTTransform(
        split_degree=split_degree,
        virtual_count_per_node=virtuals,
        num_virtual_nodes=int(virtuals.sum()),
        extra_tree_edges=extra_edges,
        build_seconds=build_seconds,
    )


class TigrScheduler(Scheduler):
    """Thread-per-virtual-node traversal over the UDT structure."""

    name = "tigr"

    def __init__(
        self,
        spec: GPUSpec | None = None,
        split_degree: int = DEFAULT_SPLIT_DEGREE,
    ) -> None:
        super().__init__(spec)
        self.split_degree = split_degree
        self.transform: UDTTransform | None = None

    def reset(self, graph: CSRGraph) -> None:
        self.transform = udt_transform(graph, self.split_degree)

    def kernel_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        if self.transform is None:
            self.reset(graph)
        assert self.transform is not None
        spec = self.spec
        active = int(edge_dst.size)
        k = self.split_degree

        # Virtual nodes of this frontier, each owning <= k edges.
        chunk_sizes = np.minimum(np.maximum(degrees, 1), k)
        starts, sizes = chunked_segment_starts(degrees, chunk_sizes)
        acct = SectorAccounting(edge_dst, spec.sector_width)
        touches, unique = value_sector_accounting(
            edge_dst, starts, spec,
            presorted=True, access_factor=app.value_access_factor,
            accounting=acct,
        )
        num_virtual = int(sizes.size)

        # Thread-per-virtual-node over UDT's size-grouped virtual array:
        # Tigr stores virtual nodes of equal capacity together, so warps
        # see near-uniform work.  Sorting by size models that grouping;
        # residual divergence comes from the ragged tail of each group.
        if num_virtual:
            ordered = np.sort(sizes)[::-1]
            pad = (-num_virtual) % spec.warp_size
            padded = np.append(ordered, np.zeros(pad, dtype=ordered.dtype))
            per_warp_max = padded.reshape(-1, spec.warp_size).max(axis=1)
            issued = int((per_warp_max * spec.warp_size).sum())
        else:
            issued = 0
        issued = max(issued, active)

        # Twin synchronization keeps split-node copies coherent: pure
        # overhead proportional to the frontier's virtual population,
        # plus serialized twin->parent merges for every *extra* virtual
        # (the aux-structure tax that erases Tigr's gains on already
        # regular graphs like brain), plus one extra launch for the
        # sync pass.
        extra_virtuals = max(0, num_virtual - int(frontier.size))
        overhead = (
            num_virtual * TWIN_SYNC_CYCLES
            + extra_virtuals * SPLIT_COORDINATION_CYCLES
        ) / spec.num_sms
        overhead += spec.kernel_launch_cycles

        # UDT lays each virtual node's <= k edges contiguously; the
        # per-virtual gather coalesces like any chunked read.
        csr_sectors = int(coalesced_sectors(
            sizes, spec.sector_width, aligned=False
        ).sum()) if num_virtual else 0
        return KernelStats(
            active_edges=active,
            issued_lane_cycles=issued,
            per_sm_lane_cycles=even_placement(issued, spec.num_sms),
            value_sector_touches=touches,
            value_sector_unique=unique,
            csr_sector_touches=csr_sectors,
            # Each virtual node is an independent outstanding-load
            # stream (same work-unit accounting as the other schedulers).
            concurrency_warps=max(1.0, float(num_virtual)),
            overhead_cycles=overhead,
            # Twin synchronization reads the parent value and rewrites
            # each virtual copy (two scattered sectors per virtual), on
            # top of the auxiliary virtual-array reads.
            extra_dram_bytes=float(num_virtual * (2 * spec.sector_bytes + 8)),
            atomic_conflicts=atomic_conflicts_for(
                app, edge_dst, spec.sector_width, acct
            ),
            compute_scale=app.edge_compute_factor,
        )
