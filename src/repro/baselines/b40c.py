"""B40C-style three-bucket scheduling (Merrill et al. [30]).

Frontiers are classified by out-degree into three predefined concurrency
schemes (paper Section 5.3): nodes with a block's worth of neighbors are
expanded by whole blocks, medium nodes by single warps, and small nodes
through fine-grained scan-based gathering.  Rescheduling relies on
intra-block synchronization, so stolen work never leaves the owner SM —
the inter-SM imbalance SAGE's Resident Tile Stealing removes.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.core.scheduler import (
    Scheduler,
    SectorAccounting,
    atomic_conflicts_for,
    csr_gather_sectors,
    value_sector_accounting,
)
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelStats, block_placement
from repro.gpusim.spec import GPUSpec

#: per-frontier-node classification + shared-memory coordination cost.
CLASSIFY_CYCLES = 6.0
#: per-iteration CTA synchronization cost (lane-cycles per work unit).
SYNC_CYCLES = 12.0


def bucket_chunk_sizes(degrees: np.ndarray, spec: GPUSpec) -> np.ndarray:
    """Concurrency scheme (chunk size) per frontier node.

    block bucket: degree >= block_size; warp bucket: degree >= warp_size;
    thread bucket: the node's own degree (one scan-gathered chunk).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    chunks = np.maximum(degrees, 1)
    chunks = np.where(degrees >= spec.warp_size, spec.warp_size, chunks)
    chunks = np.where(degrees >= spec.block_size, spec.block_size, chunks)
    return chunks


def chunked_segment_starts(
    degrees: np.ndarray, chunk_sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Partition each node's adjacency into chunks of its bucket size.

    Returns ``(starts, sizes)`` in expanded-edge coordinates; the starts
    partition the concatenated edge array of the frontier.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    chunk_sizes = np.asarray(chunk_sizes, dtype=np.int64)
    n_chunks = np.zeros_like(degrees)
    nz = degrees > 0
    n_chunks[nz] = -(-degrees[nz] // chunk_sizes[nz])
    total_chunks = int(n_chunks.sum())
    if total_chunks == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    node_of_chunk = np.repeat(np.arange(degrees.size), n_chunks)
    cum = np.repeat(np.cumsum(n_chunks) - n_chunks, n_chunks)
    within = np.arange(total_chunks, dtype=np.int64) - cum
    node_base = np.repeat(np.cumsum(degrees) - degrees, n_chunks)
    starts = node_base + within * chunk_sizes[node_of_chunk]
    node_end = np.repeat(np.cumsum(degrees), n_chunks)
    sizes = np.minimum(chunk_sizes[node_of_chunk], node_end - starts)
    return starts, sizes


class B40CScheduler(Scheduler):
    """Three predefined concurrency schemes, intra-SM stealing only."""

    name = "b40c"

    def kernel_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        spec = self.spec
        active = int(edge_dst.size)
        chunks = bucket_chunk_sizes(degrees, spec)
        starts, sizes = chunked_segment_starts(degrees, chunks)
        acct = SectorAccounting(edge_dst, spec.sector_width)
        touches, unique = value_sector_accounting(
            edge_dst, starts, spec,
            presorted=True, access_factor=app.value_access_factor,
            accounting=acct,
        )
        csr_sectors = csr_gather_sectors(sizes, spec, aligned=False)

        # Divergence: the final chunk of a block/warp-bucket node still
        # occupies the full scheme width.  Thread-bucket scan gathering
        # is near-perfect but pays the coordination cost below.
        if sizes.size:
            n_chunks = np.where(degrees > 0, -(-degrees // chunks), 0)
            scheme_width = chunks[np.repeat(np.arange(degrees.size), n_chunks)]
            issued = int(np.where(scheme_width >= spec.warp_size,
                                  scheme_width, sizes).sum())
        else:
            issued = 0
        issued = max(issued, active)

        per_block = self._per_block_lane_cycles(degrees, spec)
        overhead = (
            frontier.size * CLASSIFY_CYCLES + sizes.size * SYNC_CYCLES
        ) / spec.num_sms
        # Three separately launched concurrency schemes = two extra
        # kernel launches folded into overhead.
        overhead += 2.0 * spec.kernel_launch_cycles

        return KernelStats(
            active_edges=active,
            issued_lane_cycles=issued,
            per_sm_lane_cycles=block_placement(per_block, spec.num_sms),
            value_sector_touches=touches,
            value_sector_unique=unique,
            csr_sector_touches=csr_sectors,
            concurrency_warps=max(1.0, sizes.size / 1.0),
            overhead_cycles=overhead,
            atomic_conflicts=atomic_conflicts_for(
                app, edge_dst, spec.sector_width, acct
            ),
            compute_scale=app.edge_compute_factor,
        )

    def _per_block_lane_cycles(
        self, degrees: np.ndarray, spec: GPUSpec
    ) -> np.ndarray:
        """Owner-block work distribution.

        Block-bucket nodes own a block each; warp/thread-bucket nodes are
        packed into CTAs of contiguous frontier chunks.
        """
        degrees = np.asarray(degrees, dtype=np.float64)
        big = degrees >= spec.block_size
        small = ~big
        blocks: list[np.ndarray] = []
        if big.any():
            blocks.append(degrees[big])
        if small.any():
            packed = degrees[small]
            pad = (-packed.size) % spec.block_size
            packed = np.append(packed, np.zeros(pad))
            blocks.append(packed.reshape(-1, spec.block_size).sum(axis=1))
        if not blocks:
            return np.zeros(1)
        return np.concatenate(blocks)
