"""Reimplementations of the paper's baseline scheduling strategies."""

from repro.baselines.b40c import B40CScheduler
from repro.baselines.gunrock import GrouteScheduler, GunrockScheduler
from repro.baselines.ligra import LigraRunner
from repro.baselines.thread_per_node import ThreadPerNodeScheduler
from repro.baselines.tigr import TigrScheduler, UDTTransform, udt_transform

__all__ = [
    "B40CScheduler",
    "GrouteScheduler",
    "GunrockScheduler",
    "LigraRunner",
    "ThreadPerNodeScheduler",
    "TigrScheduler",
    "UDTTransform",
    "udt_transform",
]
