"""Gunrock-style load-balanced advance (Wang et al. [48]).

Gunrock's advance operator balances *edges*, not nodes: the expanded edge
range of the whole frontier is split evenly across threads via merge-path
binary searches, so lane efficiency is near-perfect and no SM can become
a straggler — at the price of per-thread search overhead every iteration
and of access batches that ignore adjacency boundaries (slightly weaker
tile locality than degree-aligned tiles).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.core.scheduler import (
    Scheduler,
    SectorAccounting,
    atomic_conflicts_for,
    csr_gather_sectors,
    value_sector_accounting,
    warp_chunk_starts,
)
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelStats, even_placement

#: merge-path binary search cost per warp per iteration (lane-cycles).
SEARCH_CYCLES = 48.0
#: frontier bookkeeping (filter/compact operators) per frontier node.
OPERATOR_CYCLES = 3.0


class GunrockScheduler(Scheduler):
    """Merge-path edge balancing with a device-wide even distribution."""

    name = "gunrock"

    def kernel_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        spec = self.spec
        active = int(edge_dst.size)
        starts = warp_chunk_starts(active, spec.warp_size)
        acct = SectorAccounting(edge_dst, spec.sector_width)
        touches, unique = value_sector_accounting(
            edge_dst, starts, spec,
            presorted=False, access_factor=app.value_access_factor,
            accounting=acct,
        )
        sizes = np.diff(np.append(starts, active)) if starts.size else starts
        csr_sectors = csr_gather_sectors(sizes, spec, aligned=False)
        num_warps = int(starts.size)
        issued = num_warps * spec.warp_size if num_warps else 0
        issued = max(issued, active)
        overhead = (
            num_warps * SEARCH_CYCLES + frontier.size * OPERATOR_CYCLES
        ) / spec.num_sms
        return KernelStats(
            active_edges=active,
            issued_lane_cycles=issued,
            per_sm_lane_cycles=even_placement(issued, spec.num_sms),
            value_sector_touches=touches,
            value_sector_unique=unique,
            csr_sector_touches=csr_sectors,
            concurrency_warps=max(
                1.0,
                float(min(num_warps,
                          spec.num_sms * spec.max_resident_warps_per_sm)),
            ),
            overhead_cycles=overhead,
            atomic_conflicts=atomic_conflicts_for(
                app, edge_dst, spec.sector_width, acct
            ),
            compute_scale=app.edge_compute_factor,
        )


class GrouteScheduler(GunrockScheduler):
    """Groute-style asynchronous scheduling (Ben-Nun et al. [3]).

    Single-device behaviour matches a balanced advance; Groute's
    distinguishing trait — asynchronous, lower-latency multi-GPU
    coordination — is modeled by the multi-GPU runner (it charges Groute
    a smaller per-iteration synchronization cost than bulk-synchronous
    engines).
    """

    name = "groute"
