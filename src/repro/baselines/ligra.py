"""Ligra-style CPU baseline (Shun & Blelloch [42]).

Ligra is the paper's CPU reference: a NUMA shared-memory framework with
direction-optimizing frontier processing.  The runner executes the same
applications functionally and scores iterations with the
:class:`~repro.gpusim.spec.CPUSpec` model — per-edge instruction
throughput across all hardware threads, memory-bandwidth bound traffic,
and a per-iteration parallel-for synchronization cost.  Dense-mode
iterations (large frontiers) trade touched-edge volume for cheaper
sequential scans, as Ligra's EDGEMAP does.
"""

from __future__ import annotations

from repro.apps.base import App
from repro.core.frontier import FrontierQueue
from repro.core.pipeline import RunResult
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.profiler import Profiler
from repro.gpusim.spec import CPUSpec

#: frontier-edge share of |E| above which dense mode wins.
DENSE_THRESHOLD = 0.05
#: dense-mode per-edge discount (sequential scan, no frontier queues).
DENSE_DISCOUNT = 0.6
#: bytes moved per processed edge (target id + one value access).
BYTES_PER_EDGE = 12.0


class LigraRunner:
    """Runs applications under the CPU cost model."""

    name = "ligra"

    def __init__(self, spec: CPUSpec | None = None) -> None:
        self.spec = spec or CPUSpec()

    def run(
        self,
        graph: CSRGraph,
        app: App,
        source: int | None = None,
        *,
        max_iterations: int = 100_000,
    ) -> RunResult:
        """Execute ``app`` on ``graph`` and report CPU-model timing."""
        spec = self.spec
        app.setup(graph, source)
        queue = FrontierQueue(app.initial_frontier())
        seconds = 0.0
        edges_traversed = 0
        iterations = 0
        while not queue.empty:
            if iterations >= max_iterations:
                raise ConvergenceError(
                    f"{app.name} exceeded {max_iterations} iterations"
                )
            frontier = queue.current
            edge_src, edge_dst, edge_pos = graph.expand_frontier(frontier)
            seconds += self._iteration_seconds(edge_dst.size, graph.num_edges)
            edges_traversed += int(edge_dst.size)
            next_frontier = app.process_level(
                edge_src, edge_dst,
                edge_pos if app.needs_edge_positions else None,
            )
            queue.publish_next(next_frontier)
            queue.swap()
            iterations += 1
        return RunResult(
            app_name=app.name,
            scheduler_name=self.name,
            seconds=seconds,
            iterations=iterations,
            edges_traversed=edges_traversed,
            result=app.result(),
            profiler=Profiler(),
        )

    def _iteration_seconds(self, frontier_edges: int, total_edges: int) -> float:
        """One EDGEMAP's time under the CPU model."""
        spec = self.spec
        if total_edges and frontier_edges / total_edges > DENSE_THRESHOLD:
            work_edges = frontier_edges * DENSE_DISCOUNT
        else:
            work_edges = float(frontier_edges)
        compute_cycles = work_edges * spec.cycles_per_edge / spec.num_threads
        memory_cycles = work_edges * BYTES_PER_EDGE / spec.bytes_per_cycle
        cycles = max(compute_cycles, memory_cycles)
        return spec.cycles_to_seconds(cycles) + spec.sync_us * 1e-6
