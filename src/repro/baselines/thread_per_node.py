"""Naive thread-per-node scheduling (the textbook GPU baseline).

One thread per frontier node walks that node's whole adjacency.  With
power-law degrees, the warp executes until its *largest* member finishes
(warp divergence, Section 3.1) and every lane's adjacency walk is
uncoalesced.  SAGE's ablation baseline is the same mapping; this class
exposes it under its own name for the comparison figures.
"""

from __future__ import annotations

from repro.core.engine import SageScheduler
from repro.gpusim.spec import GPUSpec


class ThreadPerNodeScheduler(SageScheduler):
    """Plain node-parallel mapping: no tiling, no stealing, no reorder."""

    def __init__(self, spec: GPUSpec | None = None) -> None:
        super().__init__(
            spec,
            tiled_partitioning=False,
            resident_stealing=False,
            sampling_reorder=False,
        )
        self.name = "thread-per-node"
