"""Exact minimum-sector-arrangement solver for tiny instances.

Theorem 6.1 of the paper proves that finding the permutation minimizing

    sum over tiles of count(distinct(floor(sigma(members) / sector_wide)))

is NP-hard (reduction from minimum linear arrangement with binary
distancing).  For graphs of a handful of nodes the objective can still be
brute-forced; tests use this to check that the sampling heuristic's
objective value is sound (never better than optimal, usually no worse
than identity).
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.errors import InvalidParameterError


def sector_objective(
    tiles: list[np.ndarray], perm: np.ndarray, sector_width: int
) -> int:
    """Total distinct sectors over ``tiles`` under ``perm``.

    Args:
        tiles: each entry lists the node ids one tile accesses together.
        perm: node relabeling (``new_id = perm[old_id]``).
        sector_width: node values per sector.
    """
    total = 0
    for tile in tiles:
        if len(tile) == 0:
            continue
        sectors = perm[np.asarray(tile, dtype=np.int64)] // sector_width
        total += int(np.unique(sectors).size)
    return total


def optimal_arrangement(
    tiles: list[np.ndarray], num_nodes: int, sector_width: int
) -> tuple[np.ndarray, int]:
    """Brute-force the sector-minimizing permutation.

    Exponential in ``num_nodes`` — guarded to tiny instances.

    Returns:
        ``(perm, objective)`` for the best arrangement found.
    """
    if num_nodes > 9:
        raise InvalidParameterError(
            "optimal_arrangement is factorial-time; num_nodes must be <= 9"
        )
    ids = np.arange(num_nodes, dtype=np.int64)
    best_perm = ids.copy()
    best_cost = sector_objective(tiles, best_perm, sector_width)
    for candidate in permutations(range(num_nodes)):
        perm = np.asarray(candidate, dtype=np.int64)
        cost = sector_objective(tiles, perm, sector_width)
        if cost < best_cost:
            best_cost = cost
            best_perm = perm
    return best_perm, best_cost
