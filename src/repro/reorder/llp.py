"""Layered Label Propagation ordering (Boldi et al. [5]).

LLP runs label propagation under the Absolute Potts Model at a sequence
of resolutions (gammas); each layer's clustering refines the order of the
previous layer, so nodes of the same (multi-resolution) community end up
with contiguous ids.  This implementation keeps that structure: per
gamma, a few APM label-propagation sweeps (majority count penalized by
``gamma * label volume``), then a stable sort keyed by the successive
clusterings — coarse layers outermost, as in the reference algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.reorder.base import order_to_perm

DEFAULT_GAMMAS = (0.0, 0.05, 0.25)
SWEEPS_PER_GAMMA = 3


def _apm_sweep(
    sym: CSRGraph,
    labels: np.ndarray,
    gamma: float,
) -> np.ndarray:
    """One synchronous Absolute-Potts-Model label update.

    Every node adopts ``argmax_l (count_l - gamma * volume_l)`` over the
    labels of its neighbors, ties to the smaller label.
    """
    n = sym.num_nodes
    edge_src, edge_dst = sym.gather_edges(np.arange(n, dtype=np.int64))
    if edge_src.size == 0:
        return labels
    volume = np.bincount(labels, minlength=n).astype(np.float64)
    nbr_label = labels[edge_dst]
    order = np.lexsort((nbr_label, edge_src))
    s = edge_src[order]
    lab = nbr_label[order]
    run_start = np.ones(s.size, dtype=bool)
    run_start[1:] = (s[1:] != s[:-1]) | (lab[1:] != lab[:-1])
    run_idx = np.flatnonzero(run_start)
    run_len = np.diff(np.append(run_idx, s.size)).astype(np.float64)
    run_node = s[run_idx]
    run_lab = lab[run_idx]
    gain = run_len - gamma * volume[run_lab]
    best_gain = np.full(n, -np.inf)
    np.maximum.at(best_gain, run_node, gain)
    is_best = gain >= best_gain[run_node] - 1e-12
    winner = np.full(n, np.iinfo(np.int64).max)
    np.minimum.at(winner, run_node[is_best], run_lab[is_best])
    new_labels = labels.copy()
    has_nbrs = best_gain > -np.inf
    new_labels[has_nbrs] = winner[has_nbrs]
    return new_labels


def llp_order(
    graph: CSRGraph,
    gammas: tuple[float, ...] = DEFAULT_GAMMAS,
    sweeps: int = SWEEPS_PER_GAMMA,
) -> np.ndarray:
    """Compute the LLP permutation (``new_id = perm[old_id]``)."""
    sym = CSRGraph.from_coo(graph.to_coo().symmetrized())
    n = sym.num_nodes
    layer_keys: list[np.ndarray] = []
    for gamma in gammas:
        labels = np.arange(n, dtype=np.int64)
        for _ in range(sweeps):
            updated = _apm_sweep(sym, labels, gamma)
            if np.array_equal(updated, labels):
                break
            labels = updated
        layer_keys.append(labels)
    # Lexicographic refinement: coarsest clustering is the outer key,
    # node id the final tiebreak; np.lexsort sorts by the LAST key first.
    keys = [np.arange(n, dtype=np.int64)] + layer_keys
    order = np.lexsort(tuple(keys))
    return order_to_perm(order.astype(np.int64))
