"""Reverse Cuthill-McKee ordering (George & Liu [10]).

Classic bandwidth-reducing permutation: BFS from a low-degree peripheral
node, visiting neighbors in increasing-degree order, then reverse the
visit sequence.  Operates on the symmetrized adjacency (bandwidth is a
property of the symmetric pattern); disconnected components are seeded
from their own minimum-degree nodes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.reorder.base import order_to_perm


def rcm_order(graph: CSRGraph) -> np.ndarray:
    """Compute the RCM permutation (``new_id = perm[old_id]``)."""
    sym = CSRGraph.from_coo(graph.to_coo().symmetrized())
    n = sym.num_nodes
    degrees = sym.out_degrees()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Seeds in increasing degree: each unvisited one starts a component.
    seeds = np.argsort(degrees, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue: deque[int] = deque([int(seed)])
        while queue:
            u = queue.popleft()
            order.append(u)
            nbrs = sym.neighbors(u)
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(v) for v in fresh)
    order_arr = np.asarray(order[::-1], dtype=np.int64)
    return order_to_perm(order_arr)
