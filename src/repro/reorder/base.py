"""Shared utilities for node reordering methods.

All methods in this package return a permutation in the convention of
:meth:`repro.graph.csr.CSRGraph.permute`: ``new_id = perm[old_id]``.
Ordering algorithms naturally produce an *order* (old ids in placement
sequence); :func:`order_to_perm` converts between the two.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


def order_to_perm(order: np.ndarray) -> np.ndarray:
    """Convert a placement order (old ids in sequence) to a permutation."""
    order = np.asarray(order, dtype=np.int64)
    perm = np.empty(order.size, dtype=np.int64)
    perm[order] = np.arange(order.size, dtype=np.int64)
    return perm


def is_permutation(perm: np.ndarray, n: int) -> bool:
    """Whether ``perm`` is a bijection on ``0..n-1``."""
    perm = np.asarray(perm)
    if perm.shape != (n,):
        return False
    seen = np.zeros(n, dtype=bool)
    valid = (perm >= 0) & (perm < n)
    if not valid.all():
        return False
    seen[perm] = True
    return bool(seen.all())


def identity_perm(n: int) -> np.ndarray:
    """The do-nothing ordering."""
    return np.arange(n, dtype=np.int64)


def random_perm(n: int, seed: int = 0) -> np.ndarray:
    """A uniformly random ordering (the worst-case locality control)."""
    return np.random.default_rng(seed).permutation(n).astype(np.int64)


@dataclass(frozen=True)
class TimedOrdering:
    """A permutation together with the wall-clock cost of computing it.

    Table 2 of the paper compares exactly this: how long each reordering
    method takes on each dataset.
    """

    method: str
    perm: np.ndarray
    seconds: float


def timed_ordering(
    method: str, fn: Callable[[CSRGraph], np.ndarray], graph: CSRGraph
) -> TimedOrdering:
    """Run a reordering method under a wall-clock timer."""
    started = time.perf_counter()
    perm = fn(graph)
    elapsed = time.perf_counter() - started
    if not is_permutation(perm, graph.num_nodes):
        raise InvalidParameterError(f"{method} returned a non-permutation")
    return TimedOrdering(method, perm, elapsed)
