"""Baseline node reordering methods (the paper's Figure 6 / Table 2 set)."""

from repro.reorder.base import (
    TimedOrdering,
    identity_perm,
    is_permutation,
    order_to_perm,
    random_perm,
    timed_ordering,
)
from repro.reorder.degree import bfs_order, degree_order
from repro.reorder.gorder import gorder_order
from repro.reorder.llp import llp_order
from repro.reorder.optimal import optimal_arrangement, sector_objective
from repro.reorder.rcm import rcm_order

__all__ = [
    "TimedOrdering",
    "bfs_order",
    "degree_order",
    "gorder_order",
    "identity_perm",
    "is_permutation",
    "llp_order",
    "optimal_arrangement",
    "order_to_perm",
    "random_perm",
    "rcm_order",
    "sector_objective",
    "timed_ordering",
]
