"""Gorder: greedy window-locality maximization (Wei et al. [49]).

Gorder places nodes one by one, each time choosing the node with the
highest *GScore* against a sliding window of the ``w`` most recently
placed nodes — GScore counting shared in-neighbors (sibling relations)
plus direct adjacency.  The exact algorithm runs a priority queue with
lazy rescoring; this implementation follows that structure (lazy max-heap
keyed by score, scores bumped when a window member's relations appear)
with the same O(w * |E|) update volume.

It is deliberately the *expensive* baseline: the paper's Table 2 shows
Gorder costing hours on billion-edge social graphs, which is the cost
SAGE's per-round sampling avoids.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.reorder.base import order_to_perm

DEFAULT_WINDOW = 5


def gorder_order(graph: CSRGraph, window: int = DEFAULT_WINDOW) -> np.ndarray:
    """Compute the Gorder permutation (``new_id = perm[old_id]``)."""
    if window < 1:
        raise InvalidParameterError("window must be >= 1")
    n = graph.num_nodes
    reverse = graph.reversed()

    score = np.zeros(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    # Lazy max-heap of (-score snapshot, node); stale entries skipped.
    heap: list[tuple[int, int]] = []
    degrees = graph.out_degrees()
    start = int(np.argmax(degrees)) if n else 0
    heap.append((0, start))

    order = np.empty(n, dtype=np.int64)
    recent: list[int] = []

    def bump(nodes: np.ndarray, amount: int) -> None:
        """Adjust scores of ``nodes`` and (re-)queue increased ones."""
        if nodes.size == 0:
            return
        np.add.at(score, nodes, amount)
        if amount > 0:
            for v in nodes.tolist():
                if not placed[v]:
                    heapq.heappush(heap, (-int(score[v]), v))

    def relations(u: int) -> tuple[np.ndarray, np.ndarray]:
        """(direct successors, sibling candidates) of window member u."""
        succ = graph.neighbors(u)
        # Nodes sharing an in-neighbor with u: successors of u's
        # predecessors.  Sampling caps the fan-out on super-hubs.
        preds = reverse.neighbors(u)
        if preds.size > 64:
            preds = preds[:: preds.size // 64 + 1]
        sib_chunks = [graph.neighbors(int(p)) for p in preds.tolist()]
        siblings = (
            np.concatenate(sib_chunks) if sib_chunks
            else np.empty(0, dtype=np.int64)
        )
        if siblings.size > 512:
            siblings = siblings[:: siblings.size // 512 + 1]
        return succ, siblings

    for position in range(n):
        u = -1
        while heap:
            neg_s, cand = heapq.heappop(heap)
            if placed[cand]:
                continue
            if -neg_s != score[cand]:
                heapq.heappush(heap, (-int(score[cand]), cand))
                continue
            u = cand
            break
        if u < 0:
            # Heap drained (isolated remainder): place any unplaced node.
            u = int(np.flatnonzero(~placed)[0])
        placed[u] = True
        order[position] = u

        succ, sib = relations(u)
        bump(succ, 1)
        bump(sib, 1)
        recent.append(u)
        if len(recent) > window:
            old = recent.pop(0)
            old_succ, old_sib = relations(old)
            bump(old_succ, -1)
            bump(old_sib, -1)

    return order_to_perm(order)
