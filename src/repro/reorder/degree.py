"""Degree- and traversal-based orderings.

* :func:`degree_order` — descending out-degree (the HALO [11]-style
  "hot nodes first" centrality layout used for unified-memory paging).
* :func:`bfs_order` — discovery order of a BFS from the highest-degree
  node: a cheap locality baseline that groups each level contiguously.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.reorder.base import order_to_perm


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Permutation placing high-out-degree nodes first (stable)."""
    degrees = graph.out_degrees()
    order = np.argsort(-degrees, kind="stable").astype(np.int64)
    return order_to_perm(order)


def bfs_order(graph: CSRGraph) -> np.ndarray:
    """Permutation by BFS discovery order from the top-degree node."""
    sym = CSRGraph.from_coo(graph.to_coo().symmetrized())
    n = sym.num_nodes
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    degrees = sym.out_degrees()
    seeds = np.argsort(-degrees, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue: deque[int] = deque([int(seed)])
        while queue:
            u = queue.popleft()
            order.append(u)
            nbrs = sym.neighbors(u)
            fresh = nbrs[~visited[nbrs]]
            visited[fresh] = True
            queue.extend(int(v) for v in fresh)
    return order_to_perm(np.asarray(order, dtype=np.int64))
