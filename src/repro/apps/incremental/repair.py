"""Incremental BFS / SSSP: affected-cone invalidation + re-settle.

The repair is the classic two-phase scheme (Ramalingam–Reps style,
vectorized for the frontier pipeline):

1. **Cone discovery** (old graph).  A deleted edge ``(u, v)`` can only
   increase distances if it was *tight* — ``dist[v] == dist[u] + w``.
   Every vertex whose distance can increase lies on some old shortest
   path through a deleted tight edge, i.e. it is a descendant of a
   deletion seed ``v`` along old tight edges.  :class:`_AffectedConeApp`
   marks that descendant cone with an ordinary frontier traversal — a
   safe over-approximation (extra members only cost re-settling work,
   never correctness).
2. **Re-settle** (new graph).  Cone distances are invalidated to
   infinity; everything else keeps its old value, which is a valid
   *upper bound* on the new distance (insertions can only decrease
   non-cone distances).  :class:`_RelaxRepairApp` then runs
   frontier-driven min-relaxation seeded from every intact vertex with
   an edge into the cone (found via a delta-patched reverse CSR, work
   proportional to the cone) plus the inserted edges' reachable
   sources.  Any vertex whose label can still improve is reachable by a
   chain of relaxations from that seed set, so the fixpoint equals the
   full-recompute answer **bit-for-bit** (shortest distances are
   unique; unreachable stays unreachable).

Both phases run through the traversal pipeline, so their simulated
device seconds are comparable with the full-recompute oracle's.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.apps.base import App, contract
from repro.apps.bfs import BFSApp
from repro.apps.incremental.base import (
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_NOOP,
    IncrementalEngine,
    IncrementalReport,
)
from repro.apps.sssp import INF, SSSPApp, pair_weights, synthetic_weights
from repro.core import SageScheduler
from repro.core.scheduler import Scheduler
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta, patch_csr
from repro.obs import MetricsRegistry

_EMPTY = np.empty(0, dtype=np.int64)


class _AffectedConeApp(App):
    """Mark the tight-edge descendant cone of the deletion seeds."""

    name = "inc-cone"
    uses_atomics = False
    value_access_factor = 1.0
    edge_compute_factor = 1.0

    def __init__(
        self,
        dist: np.ndarray,
        weights: np.ndarray | None,
        seeds: np.ndarray,
    ) -> None:
        super().__init__()
        self._dist_init = dist
        self._weights = weights
        self._seeds = seeds
        self.needs_edge_positions = weights is not None
        self.dist: np.ndarray | None = None
        self.affected: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        self.dist = self._dist_init.copy()
        self.affected = np.zeros(graph.num_nodes, dtype=bool)
        self.affected[self._seeds] = True

    def initial_frontier(self) -> np.ndarray:
        return np.asarray(self._seeds, dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.dist is not None and self.affected is not None
        if self._weights is None:
            weight = 1
        else:
            assert edge_pos is not None
            weight = self._weights[edge_pos]
        tight = self.dist[edge_dst] == self.dist[edge_src] + weight
        fresh = tight & ~self.affected[edge_dst]
        self.affected[edge_dst[fresh]] = True
        return contract(edge_dst[fresh])

    def result(self) -> dict[str, np.ndarray]:
        assert self.affected is not None
        return {"affected": self.affected.astype(np.int64)}


class _RelaxRepairApp(App):
    """Frontier-driven min-relaxation over a valid upper-bound labeling."""

    name = "inc-repair"
    uses_atomics = True
    value_access_factor = 1.0
    edge_compute_factor = 1.5

    def __init__(
        self,
        dist: np.ndarray,
        weights: np.ndarray | None,
        frontier: np.ndarray,
    ) -> None:
        super().__init__()
        self._dist_init = dist
        self._weights = weights
        self._frontier = frontier
        self.needs_edge_positions = weights is not None
        self.dist: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        self.dist = self._dist_init.copy()

    def initial_frontier(self) -> np.ndarray:
        return np.asarray(self._frontier, dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.dist is not None
        if self._weights is None:
            weight = 1
        else:
            assert edge_pos is not None
            weight = self._weights[edge_pos]
        candidate = self.dist[edge_src] + weight
        before = self.dist[edge_dst].copy()
        np.minimum.at(self.dist, edge_dst, candidate)
        improved = self.dist[edge_dst] < before
        return contract(edge_dst[improved])

    def result(self) -> dict[str, np.ndarray]:
        assert self.dist is not None
        return {"dist": self.dist}


class _IncrementalDistanceEngine(IncrementalEngine):
    """Shared BFS/SSSP engine; distances live in the INF domain."""

    #: whether edges are weighted (SSSP) or unit (BFS).
    weighted = False

    def __init__(
        self,
        graph: CSRGraph,
        source: int,
        *,
        scheduler_factory: Callable[[], Scheduler] = SageScheduler,
        fallback_fraction: float = 0.25,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            graph,
            scheduler_factory=scheduler_factory,
            fallback_fraction=fallback_fraction,
            metrics=metrics,
        )
        if not 0 <= int(source) < graph.num_nodes:
            raise InvalidParameterError(f"source {source} out of range")
        self.source = int(source)
        self._dist: np.ndarray = np.full(graph.num_nodes, INF, np.int64)
        self._rev = graph.reversed()
        self.initial_seconds = self._full(graph)

    # -- state -----------------------------------------------------------

    @property
    def distances(self) -> np.ndarray:
        """Current distances in the owning app's output convention."""
        if self.weighted:
            return self._dist.copy()
        return np.where(self._dist >= INF, np.int64(-1), self._dist)

    def result(self) -> dict[str, np.ndarray]:
        """Result dict shaped like the full app's (for oracles/caches)."""
        return {"dist": self.distances}

    # -- solves ----------------------------------------------------------

    def _full_app(self) -> App:
        return SSSPApp() if self.weighted else BFSApp()

    def _edge_weights(self, graph: CSRGraph) -> np.ndarray | None:
        return synthetic_weights(graph) if self.weighted else None

    def _full(self, graph: CSRGraph) -> float:
        run = self._run(graph, self._full_app(), self.source)
        dist = np.asarray(run.result["dist"], dtype=np.int64).copy()
        if not self.weighted:
            dist[dist < 0] = INF
        self._dist = dist
        self.graph = graph
        return run.seconds

    def update(
        self, new_graph: CSRGraph, delta: GraphDelta
    ) -> IncrementalReport:
        """Repair the distances for one merge; bit-identical fixpoint."""
        self._check_delta(new_graph, delta)
        with self.metrics.span("incremental.update", app=self.kind):
            if self._should_fallback(new_graph, delta):
                self._rev = new_graph.reversed()
                seconds = self._full(new_graph)
                return self._record(IncrementalReport(
                    mode=MODE_FULL, sim_seconds=seconds,
                ))
            report = self._repair(new_graph, delta)
        return self._record(report)

    # -- the two-phase repair -------------------------------------------

    def _deletion_seeds(self, delta: GraphDelta) -> np.ndarray:
        """Heads of deleted edges that were tight in the old solution."""
        if not delta.num_deleted:
            return _EMPTY
        if self.weighted:
            weight = pair_weights(delta.deleted_src, delta.deleted_dst)
        else:
            weight = np.int64(1)
        head = self._dist[delta.deleted_src]
        tight = (head < INF) & (
            self._dist[delta.deleted_dst] == head + weight
        )
        return np.unique(delta.deleted_dst[tight])

    def _repair(
        self, new_graph: CSRGraph, delta: GraphDelta
    ) -> IncrementalReport:
        old_graph = self.graph
        seconds = 0.0
        iterations = 0

        # Phase 1: cone of possibly-increased vertices (old graph).
        seeds = self._deletion_seeds(delta)
        affected = _EMPTY
        if seeds.size:
            cone = _AffectedConeApp(
                self._dist, self._edge_weights(old_graph), seeds
            )
            run = self._run(old_graph, cone)
            affected = np.flatnonzero(
                np.asarray(run.result["affected"], dtype=bool)
            )
            seconds += run.seconds
            iterations += run.iterations

        dist = self._dist.copy()
        dist[affected] = INF

        # Reverse CSR maintained by patching (O(|E| + |delta|), the same
        # currency as the forward CSR merge the update already paid).
        new_rev = patch_csr(self._rev, delta.reversed())

        # Phase 2 seeds: intact in-neighbors of the cone + reachable
        # sources of inserted edges.
        parts = []
        if affected.size:
            _, into, _ = new_rev.expand_frontier(affected)
            parts.append(into[dist[into] < INF])
        if delta.num_inserted:
            ins = delta.inserted_src
            parts.append(ins[dist[ins] < INF])
        frontier = (
            np.unique(np.concatenate(parts)) if parts else _EMPTY
        )

        if frontier.size:
            repairer = _RelaxRepairApp(
                dist, self._edge_weights(new_graph), frontier
            )
            run = self._run(new_graph, repairer)
            dist = np.asarray(run.result["dist"], dtype=np.int64).copy()
            seconds += run.seconds
            iterations += run.iterations

        self._dist = dist
        self.graph = new_graph
        self._rev = new_rev
        mode = (
            MODE_INCREMENTAL if (affected.size or frontier.size)
            else MODE_NOOP
        )
        return IncrementalReport(
            mode=mode,
            sim_seconds=seconds,
            affected=int(affected.size),
            frontier=int(frontier.size),
            iterations=iterations,
        )


class IncrementalBFS(_IncrementalDistanceEngine):
    """Delta-aware BFS levels from one source (bit-identical repair)."""

    kind = "bfs"
    weighted = False


class IncrementalSSSP(_IncrementalDistanceEngine):
    """Delta-aware shortest paths with the synthetic pair-hash weights.

    Weight stability across epochs is what makes the repair sound: a
    pair's weight is a pure function of its endpoints
    (:func:`~repro.apps.sssp.pair_weights`), so deleted and inserted
    edges weigh the same in every graph version.  Explicit per-slot
    weight arrays are not supported incrementally (slots move between
    versions); use the full :class:`~repro.apps.sssp.SSSPApp` there.
    """

    kind = "sssp"
    weighted = True
