"""Incremental PageRank: residual pushes over changed regions.

The engine maintains the pair ``(p, r)`` with the invariant

    ``r = A(p) - p``

where ``A`` is the exact PageRank operator of
:class:`~repro.apps.pagerank.PageRankApp` — ``A(x) = (1-d)/n + d *
(M^T D^{-1} x + dangling_mass(x)/n)``.  The invariant turns the
residual into a *computed* error certificate: ``A`` is a ``d``-Lipschitz
contraction in the L1 norm, so

    ``|p - pagerank*|_1 <= |r|_1 / (1 - d)``.

A :class:`~repro.graph.delta.GraphDelta` changes ``A`` only in the rows
of vertices whose out-adjacency changed (``delta.touched_sources``) and
in the uniform dangling term, so the invariant is restored by adjusting
``r`` at exactly those vertices' targets — O(degree of the touched
set), not O(E).  Residual mass is then drained by level-synchronous
pushes (:class:`_ResidualPushApp`): each level moves ``r`` into ``p``
for every vertex over the push threshold and scatters ``d``-scaled
shares to out-neighbors.  Because the operator is affine, the push
preserves the invariant to floating-point exactness, and every level
shrinks ``|r|_1`` by at least ``(1-d)`` of the moved mass — geometric
convergence on the changed cone only.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.apps.base import App
from repro.apps.incremental.base import (
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_NOOP,
    IncrementalEngine,
    IncrementalReport,
)
from repro.apps.pagerank import PageRankApp
from repro.core import SageScheduler
from repro.core.scheduler import Scheduler
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.obs import MetricsRegistry


class _ResidualPushApp(App):
    """Level-synchronous residual pushes; invariant-exact by linearity."""

    name = "inc-pr-push"
    uses_atomics = True
    value_access_factor = 1.5
    edge_compute_factor = 1.5

    def __init__(
        self,
        estimate: np.ndarray,
        residual: np.ndarray,
        damping: float,
        push_tol: float,
        stop_norm: float,
    ) -> None:
        super().__init__()
        self._p_init = estimate
        self._r_init = residual
        self.damping = float(damping)
        self.push_tol = float(push_tol)
        self.stop_norm = float(stop_norm)
        self.p: np.ndarray | None = None
        self.r: np.ndarray | None = None
        self._deg: np.ndarray | None = None
        self._front: np.ndarray | None = None
        self.pushes = 0

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        self.p = self._p_init.astype(np.float64).copy()
        self.r = self._r_init.astype(np.float64).copy()
        self._deg = graph.out_degrees().astype(np.float64)
        self._front = np.flatnonzero(np.abs(self.r) > self.push_tol)
        self.pushes = 0

    def initial_frontier(self) -> np.ndarray:
        assert self._front is not None
        return self._front

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.p is not None and self.r is not None
        assert self._deg is not None and self._front is not None
        assert self.graph is not None
        n = self.graph.num_nodes
        front = self._front
        moved = self.r[front].copy()
        self.p[front] += moved
        self.r[front] = 0.0
        if edge_src.size:
            spread = np.zeros(n, dtype=np.float64)
            spread[front] = moved
            np.add.at(
                self.r, edge_dst,
                self.damping * spread[edge_src] / self._deg[edge_src],
            )
        dangling = moved[self._deg[front] == 0.0].sum()
        if dangling:
            self.r += self.damping * dangling / n
        self.pushes += int(front.size)
        # The certificate is computed, not assumed: once the global
        # residual mass is under the target, more pushes only polish a
        # bound that already holds — stop.
        if np.abs(self.r).sum() <= self.stop_norm:
            self._front = np.empty(0, dtype=np.int64)
        else:
            self._front = np.flatnonzero(np.abs(self.r) > self.push_tol)
        return self._front

    def result(self) -> dict[str, np.ndarray]:
        assert self.p is not None and self.r is not None
        return {"pagerank": self.p, "residual": self.r}

    def remap_nodes(self, perm: np.ndarray) -> None:
        # The stored frontier holds node *ids* — map values, don't
        # permute positions like the size-n value arrays below.
        front = self._front
        self._front = None
        super().remap_nodes(perm)
        if front is not None:
            self._front = np.sort(perm[front])


class IncrementalPageRank(IncrementalEngine):
    """Delta-aware PageRank with a computed L1 error certificate."""

    kind = "pagerank"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        damping: float = 0.85,
        tolerance: float = 1e-6,
        max_iterations: int = 200,
        scheduler_factory: Callable[[], Scheduler] = SageScheduler,
        fallback_fraction: float = 0.25,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            graph,
            scheduler_factory=scheduler_factory,
            fallback_fraction=fallback_fraction,
            metrics=metrics,
        )
        if not 0.0 < damping < 1.0:
            raise InvalidParameterError("damping must be in (0, 1)")
        if tolerance <= 0.0:
            raise InvalidParameterError("tolerance must be positive")
        self.damping = float(damping)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self._p: np.ndarray = np.empty(0, dtype=np.float64)
        self._r: np.ndarray = np.empty(0, dtype=np.float64)
        self.initial_seconds = self._full(graph)

    # -- state -----------------------------------------------------------

    @property
    def pagerank(self) -> np.ndarray:
        """Current estimate (see :meth:`error_bound` for its quality)."""
        return self._p.copy()

    def result(self) -> dict[str, np.ndarray]:
        """Result dict shaped like the full app's (for oracles/caches)."""
        return {"pagerank": self.pagerank}

    def error_bound(self) -> float:
        """Computed certificate: ``|p - pagerank*|_1`` is at most this.

        Derived from the maintained invariant ``r = A(p) - p`` and the
        ``d``-contractivity of ``A``, not from trusting convergence.
        """
        return float(np.abs(self._r).sum()) / (1.0 - self.damping)

    @property
    def push_tol(self) -> float:
        """Per-vertex push threshold; ``|r|_1 <= tolerance`` when drained."""
        return self.tolerance / max(1, self.graph.num_nodes)

    # -- the exact operator, host-side (invariant maintenance) -----------

    def _segment_image(
        self, graph: CSRGraph, x: np.ndarray, sources: np.ndarray
    ) -> np.ndarray:
        """``d``-scaled image of ``x`` restricted to ``sources``' rows.

        The constant ``(1-d)/n`` term and untouched rows are identical
        between two graphs that differ only at ``sources``, so the
        operator difference is the difference of these segments.
        """
        n = graph.num_nodes
        out = np.zeros(n, dtype=np.float64)
        deg = graph.out_degrees().astype(np.float64)
        edge_src, edge_dst, _ = graph.expand_frontier(sources)
        if edge_src.size:
            np.add.at(
                out, edge_dst,
                self.damping * x[edge_src] / deg[edge_src],
            )
        dangling = x[sources][deg[sources] == 0.0].sum()
        if dangling:
            out += self.damping * dangling / n
        return out

    def _operator_image(self, graph: CSRGraph, x: np.ndarray) -> np.ndarray:
        """``A(x)`` exactly as :class:`PageRankApp` computes one sweep."""
        n = graph.num_nodes
        everyone = np.arange(n, dtype=np.int64)
        return (1.0 - self.damping) / n + self._segment_image(
            graph, x, everyone
        )

    # -- solves ----------------------------------------------------------

    def _full(self, graph: CSRGraph) -> float:
        app = PageRankApp(
            damping=self.damping,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        run = self._run(graph, app)
        p = np.asarray(run.result["pagerank"], dtype=np.float64).copy()
        self._p = p
        self._r = self._operator_image(graph, p) - p
        self.graph = graph
        return run.seconds

    def update(
        self, new_graph: CSRGraph, delta: GraphDelta
    ) -> IncrementalReport:
        """Restore the invariant for one merge, then drain residuals."""
        self._check_delta(new_graph, delta)
        with self.metrics.span("incremental.update", app=self.kind):
            if self._should_fallback(new_graph, delta):
                seconds = self._full(new_graph)
                return self._record(IncrementalReport(
                    mode=MODE_FULL, sim_seconds=seconds,
                ))
            report = self._push_repair(new_graph, delta)
        return self._record(report)

    def _push_repair(
        self, new_graph: CSRGraph, delta: GraphDelta
    ) -> IncrementalReport:
        old_graph = self.graph
        touched = delta.touched_sources
        if touched.size:
            # r = A_new(p) - p, via the row-difference of the operator.
            self._r = self._r + (
                self._segment_image(new_graph, self._p, touched)
                - self._segment_image(old_graph, self._p, touched)
            )
        self.graph = new_graph

        if np.abs(self._r).sum() <= self.tolerance:
            return IncrementalReport(
                mode=MODE_NOOP, sim_seconds=0.0,
                affected=int(touched.size),
            )
        over = np.flatnonzero(np.abs(self._r) > self.push_tol)

        app = _ResidualPushApp(
            self._p, self._r, self.damping, self.push_tol,
            self.tolerance,
        )
        run = self._run(new_graph, app)
        self._p = np.asarray(
            run.result["pagerank"], dtype=np.float64
        ).copy()
        self._r = np.asarray(
            run.result["residual"], dtype=np.float64
        ).copy()
        self.metrics.count("incremental.residual_pushes", app.pushes)
        return IncrementalReport(
            mode=MODE_INCREMENTAL,
            sim_seconds=run.seconds,
            affected=int(touched.size),
            frontier=int(over.size),
            iterations=run.iterations,
        )
