"""Shared plumbing of the incremental engines.

Each engine owns its converged state (distances, or a PageRank
estimate/residual pair), consumes one :class:`~repro.graph.delta.
GraphDelta` per :meth:`update` call, and reports what it did as an
:class:`IncrementalReport`.  All device work — the initial solve, the
affected-cone discovery, the repair/re-settle passes, and any fallback
full recompute — runs through the
:class:`~repro.core.pipeline.TraversalPipeline`, so ``sim_seconds`` is
in the same simulated-device currency as an ordinary
:func:`~repro.core.pipeline.run_app` call.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.pipeline import RunResult, TraversalPipeline
from repro.core.scheduler import Scheduler
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.obs import NULL_REGISTRY, MetricsRegistry

#: Update modes an engine can report.
MODE_FULL = "full"
MODE_INCREMENTAL = "incremental"
MODE_NOOP = "noop"


@dataclass(frozen=True)
class IncrementalReport:
    """What one :meth:`update` call did.

    Attributes:
        mode: ``"incremental"`` (repair ran), ``"full"`` (delta over the
            fallback threshold — recomputed from scratch), or ``"noop"``
            (the delta provably cannot change the result).
        sim_seconds: simulated device seconds spent by this update (all
            pipeline passes combined; 0.0 for a no-op).
        affected: vertices invalidated by cone discovery (0 outside
            incremental mode).
        frontier: seed-frontier size of the repair / push pass.
        iterations: pipeline iterations across this update's passes.
    """

    mode: str
    sim_seconds: float
    affected: int = 0
    frontier: int = 0
    iterations: int = 0


class IncrementalEngine:
    """Base class: scheduler wiring, fallback policy, bookkeeping."""

    #: short app-family name used in metrics span attributes.
    kind: str = "incremental"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        scheduler_factory: Callable[[], Scheduler],
        fallback_fraction: float = 0.25,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < fallback_fraction <= 1.0:
            raise InvalidParameterError(
                "fallback_fraction must be in (0, 1]"
            )
        self.graph = graph
        self.fallback_fraction = float(fallback_fraction)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._scheduler_factory = scheduler_factory
        self.updates = 0
        self.full_recomputes = 0
        self.repairs = 0
        self.noops = 0
        self.last_report: IncrementalReport | None = None

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _run(self, graph, app, source=None) -> RunResult:
        """One pipeline pass on a fresh scheduler (device time counted)."""
        pipeline = TraversalPipeline(
            graph, self._scheduler_factory(), metrics=self.metrics
        )
        return pipeline.run(app, source)

    def _should_fallback(
        self, new_graph: CSRGraph, delta: GraphDelta
    ) -> bool:
        """Full recompute when the delta is too large for repair to win.

        The repair cost scales with the affected region while a full
        recompute scales with the whole graph — past a fixed fraction
        of the edge count the cone is likely most of the graph and the
        bookkeeping overhead loses (DESIGN.md discusses the threshold).
        """
        return delta.size > self.fallback_fraction * max(
            1, new_graph.num_edges
        )

    def _check_delta(self, new_graph: CSRGraph, delta: GraphDelta) -> None:
        if delta.num_nodes != self.graph.num_nodes:
            raise InvalidParameterError(
                f"delta is for {delta.num_nodes} nodes, engine tracks "
                f"{self.graph.num_nodes}"
            )
        if new_graph.num_nodes != self.graph.num_nodes:
            raise InvalidParameterError(
                "updates must preserve the vertex set"
            )

    def _record(self, report: IncrementalReport) -> IncrementalReport:
        self.updates += 1
        self.metrics.count("incremental.updates")
        if report.mode == MODE_FULL:
            self.full_recomputes += 1
            self.metrics.count("incremental.full_recomputes")
        elif report.mode == MODE_INCREMENTAL:
            self.repairs += 1
            self.metrics.count("incremental.repairs")
            if report.affected:
                self.metrics.count(
                    "incremental.affected_vertices", report.affected
                )
        else:
            self.noops += 1
            self.metrics.count("incremental.noops")
        self.last_report = report
        return report
