"""Delta-aware incremental algorithms: stop paying full price per epoch.

A hot graph under a sustained update stream used to recompute every
query from scratch after every :class:`~repro.graph.dynamic.DynamicGraph`
merge.  The engines here consume the structured
:class:`~repro.graph.delta.GraphDelta` a merge produces and repair the
previous answer instead:

* :class:`IncrementalBFS` / :class:`IncrementalSSSP` — invalidate only
  the cone of vertices whose distances can have changed (descendants of
  deletion-broken shortest-path-DAG edges) and re-settle it with a
  min-relaxation pass seeded from the cone's intact boundary plus the
  inserted edges' sources.  Results are **bit-identical** to a full
  recompute at every epoch (shortest distances are unique).
* :class:`IncrementalPageRank` — maintains a (estimate, residual) pair
  with the invariant ``residual = A(p) - p`` for the PageRank operator
  ``A``; a delta perturbs residuals only at the changed-out-edge
  vertices, and frontier-driven residual pushes drain them back under
  tolerance.  ``error_bound()`` is a *computed* certificate:
  ``|p - pagerank*|_1 <= |residual|_1 / (1 - damping)``.

Every repair pass runs through the
:class:`~repro.core.pipeline.TraversalPipeline`, so incremental device
seconds are directly comparable to the full-recompute oracle's — the
``dynamic_stream`` bench tier gates on that ratio.  Each engine falls
back to a full recompute when the delta is too large for repair to win
(``fallback_fraction`` of the edge count).
"""

from repro.apps.incremental.base import IncrementalReport
from repro.apps.incremental.pagerank import IncrementalPageRank
from repro.apps.incremental.repair import IncrementalBFS, IncrementalSSSP

__all__ = [
    "IncrementalBFS",
    "IncrementalPageRank",
    "IncrementalReport",
    "IncrementalSSSP",
]
