"""PageRank.

The paper's PR filter (Algorithm 1) atomically adds
``0.85 * pr_in[frontier] / outdegree(frontier)`` to every neighbor.  PR is
a *global* traversal: the frontier of every iteration is the entire node
set (Section 7.2), which makes its workload regular compared to BFS/BC.

Dangling nodes (out-degree 0) redistribute their mass uniformly, matching
the convention of ``networkx.pagerank`` so results validate exactly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.graph.csr import CSRGraph


class PageRankApp(App):
    """Power-iteration PageRank over the traversal pipeline."""

    name = "pr"
    uses_atomics = True
    value_access_factor = 1.5
    edge_compute_factor = 1.5

    def __init__(
        self,
        damping: float = 0.85,
        max_iterations: int = 30,
        tolerance: float = 1e-8,
    ) -> None:
        super().__init__()
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.pr_in: np.ndarray | None = None
        self.pr_out: np.ndarray | None = None
        self._out_degrees: np.ndarray | None = None
        self._iteration = 0
        self._all_nodes: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        n = graph.num_nodes
        self.pr_in = np.full(n, 1.0 / n, dtype=np.float64)
        self.pr_out = np.zeros(n, dtype=np.float64)
        self._out_degrees = graph.out_degrees().astype(np.float64)
        self._iteration = 0
        self._all_nodes = np.arange(n, dtype=np.int64)

    def initial_frontier(self) -> np.ndarray:
        assert self._all_nodes is not None
        return self._all_nodes

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.pr_in is not None and self.pr_out is not None
        assert self._out_degrees is not None and self._all_nodes is not None
        assert self.graph is not None
        n = self.graph.num_nodes
        self.pr_out[:] = 0.0
        contributions = (
            self.damping * self.pr_in[edge_src] / self._out_degrees[edge_src]
        )
        np.add.at(self.pr_out, edge_dst, contributions)
        dangling_mass = self.pr_in[self._out_degrees == 0].sum()
        self.pr_out += (
            (1.0 - self.damping) / n + self.damping * dangling_mass / n
        )
        delta = float(np.abs(self.pr_out - self.pr_in).sum())
        self.pr_in, self.pr_out = self.pr_out, self.pr_in
        self._iteration += 1
        if delta < self.tolerance or self._iteration >= self.max_iterations:
            return np.empty(0, dtype=np.int64)
        return self._all_nodes

    def result(self) -> dict[str, np.ndarray]:
        assert self.pr_in is not None
        return {"pagerank": self.pr_in}

    @property
    def iterations_run(self) -> int:
        """Number of power iterations executed so far."""
        return self._iteration
