"""Connected Components via minimum-label propagation.

One of the extra primitives the paper lists for its pipeline (Section 4):
components merge by propagating the smallest reachable label along edges
until a fixpoint.  On a symmetric (undirected) graph this converges to
the weakly-connected components; on a directed graph it computes the
minimum label reachable *from* each node's ancestors, so callers wanting
WCC should pass a symmetrized graph.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App, contract
from repro.graph.csr import CSRGraph


class ConnectedComponentsApp(App):
    """Min-label propagation connected components."""

    name = "cc"
    uses_atomics = True
    value_access_factor = 1.0
    edge_compute_factor = 1.2

    def __init__(self) -> None:
        super().__init__()
        self.component: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        self.component = np.arange(graph.num_nodes, dtype=np.int64)

    def initial_frontier(self) -> np.ndarray:
        assert self.graph is not None
        return np.arange(self.graph.num_nodes, dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.component is not None
        before = self.component[edge_dst]
        np.minimum.at(self.component, edge_dst, self.component[edge_src])
        changed = self.component[edge_dst] < before
        return contract(edge_dst[changed])

    def result(self) -> dict[str, np.ndarray]:
        assert self.component is not None
        return {"component": self.component}
