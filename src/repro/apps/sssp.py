"""Single-Source Shortest Paths (frontier Bellman-Ford).

The "Shortest Path: iteratively update neighbors' distances" primitive
from the paper's pipeline list (Section 4).  Edge weights are supplied by
the caller as an array aligned with ``graph.targets``; when omitted,
deterministic pseudo-random integer weights in ``[1, 8]`` are derived
from the edge endpoints (CSR stores no weights, and the evaluation only
needs a weighted workload, not specific weights).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App, contract
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

INF = np.iinfo(np.int64).max // 4


def pair_weights(
    src: np.ndarray, dst: np.ndarray, max_weight: int = 8
) -> np.ndarray:
    """Deterministic positive weight of each ``(src, dst)`` pair.

    A pure hash of the endpoint ids, so the same pair always weighs the
    same — across graph epochs, duplicate edge copies, and independent
    callers.  Incremental SSSP repair relies on this stability: the
    weight of a deleted or inserted edge can be recomputed from its
    endpoints alone.  Weights are in ``[1, max_weight]``.
    """
    mix = (
        np.asarray(src, dtype=np.int64) * np.int64(2654435761)
        ^ (np.asarray(dst, dtype=np.int64) + np.int64(0x9E3779B9))
    )
    return 1 + (np.abs(mix) % max_weight)


def synthetic_weights(graph: CSRGraph, max_weight: int = 8) -> np.ndarray:
    """Deterministic positive weights, one per CSR edge slot.

    Hash of (src, dst) so the weights survive node reordering applied to
    both endpoints consistently... they do not — reordering relabels
    nodes, so SSSP runs either use explicit weights or skip reordering.
    Weights are in ``[1, max_weight]``.
    """
    coo = graph.to_coo()
    return pair_weights(coo.src, coo.dst, max_weight)


class SSSPApp(App):
    """Frontier-based Bellman-Ford from one source."""

    name = "sssp"
    uses_atomics = True
    value_access_factor = 1.0
    edge_compute_factor = 1.5
    needs_edge_positions = True

    def __init__(self, weights: np.ndarray | None = None) -> None:
        super().__init__()
        self._weights_arg = weights
        self.weights: np.ndarray | None = None
        self.dist: np.ndarray | None = None
        self._source: int | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if source is None:
            raise InvalidParameterError("SSSP requires a source node")
        if not 0 <= source < graph.num_nodes:
            raise InvalidParameterError(f"source {source} out of range")
        self.graph = graph
        self._source = int(source)
        if self._weights_arg is not None:
            weights = np.asarray(self._weights_arg, dtype=np.int64)
            if weights.size != graph.num_edges:
                raise InvalidParameterError(
                    f"weights length {weights.size} != num_edges "
                    f"{graph.num_edges}"
                )
            if weights.size and weights.min() < 0:
                raise InvalidParameterError("weights must be non-negative")
            self.weights = weights
        else:
            self.weights = synthetic_weights(graph)
        self.dist = np.full(graph.num_nodes, INF, dtype=np.int64)
        self.dist[source] = 0

    def initial_frontier(self) -> np.ndarray:
        return np.array([self._source], dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.dist is not None and self.weights is not None
        if edge_pos is None:
            raise InvalidParameterError("SSSP needs edge positions for weights")
        candidate = self.dist[edge_src] + self.weights[edge_pos]
        before = self.dist[edge_dst].copy()
        np.minimum.at(self.dist, edge_dst, candidate)
        improved = self.dist[edge_dst] < before
        return contract(edge_dst[improved])

    def result(self) -> dict[str, np.ndarray]:
        assert self.dist is not None
        return {"dist": self.dist}

    def source_node(self) -> int | None:
        return self._source
