"""Multi-source concurrent BFS (iBFS-style bit-parallel traversal).

The paper cites iBFS [27] — running many BFS instances concurrently so
their frontiers share traversal work.  The GPU-idiomatic formulation
packs up to 64 sources into one 64-bit *visitation mask* per node: an
edge propagates its source's mask bits; a node joins the next frontier
whenever it gains any new bit.  One traversal then answers all sources'
reachability/level queries at once, which is how BC over many sources or
all-pairs-style analytics amortize traversal cost.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App, contract
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

MAX_SOURCES = 64


class MultiSourceBFSApp(App):
    """Concurrent BFS from up to 64 sources via bitmask propagation.

    ``result()["levels"]`` is a ``(num_sources, num_nodes)`` level matrix
    (-1 = unreached); ``result()["reach_mask"]`` holds each node's final
    visitation bitmask.
    """

    name = "msbfs"
    uses_atomics = True  # bitmask OR-aggregation
    value_access_factor = 1.5  # 8-byte masks vs 4-byte labels

    def __init__(self, sources: np.ndarray) -> None:
        super().__init__()
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0 or sources.size > MAX_SOURCES:
            raise InvalidParameterError(
                f"need 1..{MAX_SOURCES} sources, got {sources.size}"
            )
        if np.unique(sources).size != sources.size:
            raise InvalidParameterError("sources must be distinct")
        self.sources = sources
        self.mask: np.ndarray | None = None
        self.levels: np.ndarray | None = None
        self._level = 0

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if self.sources.min() < 0 or self.sources.max() >= graph.num_nodes:
            raise InvalidParameterError("source out of range")
        self.graph = graph
        n = graph.num_nodes
        self.mask = np.zeros(n, dtype=np.uint64)
        self.levels = np.full((self.sources.size, n), -1, dtype=np.int64)
        bits = np.uint64(1) << np.arange(self.sources.size, dtype=np.uint64)
        self.mask[self.sources] |= bits
        self.levels[np.arange(self.sources.size), self.sources] = 0
        self._level = 0

    def initial_frontier(self) -> np.ndarray:
        return np.unique(self.sources)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.mask is not None and self.levels is not None
        incoming = np.zeros(self.graph.num_nodes, dtype=np.uint64)
        np.bitwise_or.at(incoming, edge_dst, self.mask[edge_src])
        gained = incoming & ~self.mask
        changed = np.flatnonzero(gained)
        self._level += 1
        if changed.size:
            # record the level for every newly-gained (source, node) pair
            gained_bits = gained[changed]
            for s in range(self.sources.size):
                bit = np.uint64(1) << np.uint64(s)
                hit = changed[(gained_bits & bit) != 0]
                self.levels[s, hit] = self._level
            self.mask[changed] |= gained[changed]
        return contract(changed)

    def result(self) -> dict[str, np.ndarray]:
        assert self.mask is not None and self.levels is not None
        return {"levels": self.levels, "reach_mask": self.mask}

    def remap_nodes(self, perm: np.ndarray) -> None:
        assert self.graph is not None
        n = self.graph.num_nodes
        if self.mask is not None:
            remapped = np.empty_like(self.mask)
            remapped[perm] = self.mask
            self.mask = remapped
        if self.levels is not None:
            remapped_levels = np.empty_like(self.levels)
            remapped_levels[:, perm] = self.levels
            self.levels = remapped_levels
        self.sources = perm[self.sources]
