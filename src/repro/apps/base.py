"""Application contract for the expansion-filtering-contraction pipeline.

The paper's framework (Section 4, Algorithm 1) asks developers to
implement only the ``filter(frontier, neighbor)`` step; expansion and
contraction are generic.  Here the same contract appears in vectorized
form: an :class:`App` receives the full edge batch of the current
iteration (``edge_src[i] -> edge_dst[i]``) and returns the next frontier.

Apps are *semantically* independent of the scheduler: every scheduling
strategy traverses the same edges, so results are identical across
SAGE and all baselines (asserted by the integration tests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graph.csr import CSRGraph


class App(ABC):
    """One node-centric graph application.

    Lifecycle: construct -> :meth:`setup` -> repeatedly
    :meth:`process_level` with the expanded edges of the frontier it last
    returned, until it returns an empty frontier.
    """

    #: short name used in reports ("bfs", "bc", "pr", ...)
    name: str = "app"
    #: whether the filter relies on atomic aggregation (Section 7.2:
    #: BC and PR do, BFS tolerates dirty writes).
    uses_atomics: bool = False
    #: scattered value-array accesses per traversed edge (cost model).
    value_access_factor: float = 1.0
    #: relative per-edge instruction cost of the filter (cost model).
    edge_compute_factor: float = 1.0
    #: whether process_level needs CSR edge positions (e.g. edge weights).
    needs_edge_positions: bool = False
    #: whether frontiers are deduplicated (the :func:`contract` default);
    #: the sanitizer flags duplicate ids when claimed.
    frontier_unique: bool = True
    #: whether a settled node may never re-enter a later frontier (BFS's
    #: level monotonicity); checked by the sanitizer when True.
    monotone_levels: bool = False

    def __init__(self) -> None:
        self.graph: CSRGraph | None = None

    @abstractmethod
    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        """Allocate state for ``graph`` (and ``source`` if used)."""

    @abstractmethod
    def initial_frontier(self) -> np.ndarray:
        """Frontier of the first iteration."""

    @abstractmethod
    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply the filter to one expanded edge batch.

        Args:
            edge_src: frontier node of each edge.
            edge_dst: neighbor of each edge.
            edge_pos: positions of the edges in ``graph.targets`` (only
                when ``needs_edge_positions``).

        Returns:
            The contracted next frontier (unique node ids); empty when
            the application has converged.
        """

    @abstractmethod
    def result(self) -> dict[str, np.ndarray]:
        """Converged outputs, e.g. ``{"dist": ...}``."""

    # ------------------------------------------------------------------
    # Hooks used by SAGE's self-adaptive machinery
    # ------------------------------------------------------------------

    def remap_nodes(self, perm: np.ndarray) -> None:
        """Relabel all node-indexed state after a reordering commit.

        ``perm`` maps old ids to new ids.  The default permutes every
        1-D array of length ``num_nodes`` found in ``self.__dict__``
        (value at old index lands at the new index) and remaps stored
        frontier arrays — subclasses with richer state override this.
        """
        if self.graph is None:
            return
        n = self.graph.num_nodes
        for key, val in list(self.__dict__.items()):
            if isinstance(val, np.ndarray) and val.ndim == 1 and val.size == n:
                remapped = np.empty_like(val)
                remapped[perm] = val
                setattr(self, key, remapped)

    def source_node(self) -> int | None:
        """The traversal source, if the app has one (for remapping)."""
        return None


def contract(candidates: np.ndarray) -> np.ndarray:
    """Contraction step: dedupe and sort a candidate frontier."""
    if candidates.size == 0:
        return candidates.astype(np.int64)
    return np.unique(candidates)
