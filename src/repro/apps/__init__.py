"""Node-centric graph applications over the traversal pipeline."""

from repro.apps.base import App, contract
from repro.apps.bc import BCApp
from repro.apps.bfs import BFSApp
from repro.apps.cc import ConnectedComponentsApp
from repro.apps.functional import FunctionalApp, make_app, one_hot
from repro.apps.labelprop import LabelPropagationApp
from repro.apps.msbfs import MAX_SOURCES, MultiSourceBFSApp
from repro.apps.pagerank import PageRankApp
from repro.apps.pagerank_pull import PageRankPullApp
from repro.apps.ppr import PersonalizedPageRankApp
from repro.apps.sampling import (
    BiasedRandomWalkApp,
    KHopSampleApp,
    Node2VecWalkApp,
    SampledPPRApp,
    node2vec_transition_probabilities,
)
from repro.apps.scc import (
    MaskedReachabilityApp,
    SCCResult,
    strongly_connected_components,
)
from repro.apps.sssp import SSSPApp, synthetic_weights

__all__ = [
    "App",
    "BCApp",
    "BFSApp",
    "BiasedRandomWalkApp",
    "ConnectedComponentsApp",
    "FunctionalApp",
    "KHopSampleApp",
    "LabelPropagationApp",
    "MAX_SOURCES",
    "MaskedReachabilityApp",
    "MultiSourceBFSApp",
    "Node2VecWalkApp",
    "PageRankApp",
    "PageRankPullApp",
    "PersonalizedPageRankApp",
    "SCCResult",
    "SSSPApp",
    "SampledPPRApp",
    "contract",
    "make_app",
    "node2vec_transition_probabilities",
    "one_hot",
    "strongly_connected_components",
    "synthetic_weights",
]
