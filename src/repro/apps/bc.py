"""Betweenness Centrality (Brandes), single source.

The paper implements BC as two traversal phases over the same pipeline
(Algorithm 1): a forward BFS that counts shortest paths (``sigma``,
accumulated with atomics) and a backward sweep over the BFS DAG that
accumulates dependencies (``delta``).  Both phases run through
:meth:`process_level`; the app switches phase when the forward frontier
drains.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App, contract
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

UNVISITED = -1


class BCApp(App):
    """Single-source betweenness (dependency) computation.

    ``result()["delta"]`` holds the Brandes dependency of the source on
    every node; summing it over all sources — excluding each run's own
    source, per Brandes — gives unnormalized betweenness centrality.
    """

    name = "bc"
    uses_atomics = True
    # forward reads dist + accumulates sigma; backward reads sigma/delta.
    value_access_factor = 2.0
    edge_compute_factor = 2.0

    def __init__(self) -> None:
        super().__init__()
        self.dist: np.ndarray | None = None
        self.sigma: np.ndarray | None = None
        self.delta: np.ndarray | None = None
        self._source: int | None = None
        self._level = 0
        self._phase = "forward"
        self._levels: list[np.ndarray] = []
        self._back_index = 0

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if source is None:
            raise InvalidParameterError("BC requires a source node")
        if not 0 <= source < graph.num_nodes:
            raise InvalidParameterError(f"source {source} out of range")
        self.graph = graph
        self._source = int(source)
        self._level = 0
        self._phase = "forward"
        self._back_index = 0
        n = graph.num_nodes
        self.dist = np.full(n, UNVISITED, dtype=np.int64)
        self.sigma = np.zeros(n, dtype=np.float64)
        self.delta = np.zeros(n, dtype=np.float64)
        self.dist[source] = 0
        self.sigma[source] = 1.0
        self._levels = [np.array([source], dtype=np.int64)]

    def initial_frontier(self) -> np.ndarray:
        return self._levels[0]

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        if self._phase == "forward":
            return self._forward(edge_src, edge_dst)
        return self._backward(edge_src, edge_dst)

    def _forward(self, edge_src: np.ndarray, edge_dst: np.ndarray) -> np.ndarray:
        assert self.dist is not None and self.sigma is not None
        # Discovery (the atomicCAS of Algorithm 1): neighbors still
        # unvisited get dist = level + 1 and enter the next frontier.
        undiscovered = self.dist[edge_dst] == UNVISITED
        next_frontier = contract(edge_dst[undiscovered])
        self._level += 1
        self.dist[next_frontier] = self._level
        # Path counting (the atomicAdd): every DAG edge into the next
        # level contributes sigma[parent].
        dag_edge = self.dist[edge_dst] == self._level
        np.add.at(self.sigma, edge_dst[dag_edge], self.sigma[edge_src[dag_edge]])
        if next_frontier.size:
            self._levels.append(next_frontier)
            return next_frontier
        return self._start_backward()

    def _start_backward(self) -> np.ndarray:
        self._phase = "backward"
        # Deepest level has no children to accumulate from; start one up.
        self._back_index = len(self._levels) - 2
        if self._back_index < 0:
            return np.empty(0, dtype=np.int64)
        return self._levels[self._back_index]

    def _backward(self, edge_src: np.ndarray, edge_dst: np.ndarray) -> np.ndarray:
        assert self.dist is not None and self.sigma is not None
        assert self.delta is not None
        dag_edge = self.dist[edge_dst] == self.dist[edge_src] + 1
        src = edge_src[dag_edge]
        dst = edge_dst[dag_edge]
        increments = self.sigma[src] / self.sigma[dst] * (1.0 + self.delta[dst])
        np.add.at(self.delta, src, increments)
        self._back_index -= 1
        if self._back_index < 0:
            return np.empty(0, dtype=np.int64)
        return self._levels[self._back_index]

    def result(self) -> dict[str, np.ndarray]:
        assert self.dist is not None and self.sigma is not None
        assert self.delta is not None
        return {"dist": self.dist, "sigma": self.sigma, "delta": self.delta}

    def source_node(self) -> int | None:
        return self._source

    def remap_nodes(self, perm: np.ndarray) -> None:
        super().remap_nodes(perm)
        if self._source is not None:
            self._source = int(perm[self._source])
        self._levels = [perm[level] for level in self._levels]
