"""Pull-based (gather) PageRank: the atomic-free design alternative.

Section 7.2 observes that PR's atomic aggregation makes locality a
double-edged sword.  The classic way around it is the *pull* formulation
(Gunrock, CuSha and most CPU frameworks offer it): run over the
transpose graph so each node **gathers** its in-neighbors' contributions
— one writer per node, no atomics — at the price of reading the
transpose structure.

The app runs on ``graph.reversed()`` and is self-contained: the original
out-degrees equal the transpose's in-degrees, so no side-channel state
is needed.  Results match the push PR exactly, making the pair a clean
ablation of atomics cost (see ``benchmarks/test_parameter_ablation.py``).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.graph.csr import CSRGraph


class PageRankPullApp(App):
    """Gather-based PageRank over the transpose graph."""

    name = "pr-pull"
    uses_atomics = False  # single writer per node
    value_access_factor = 1.5
    edge_compute_factor = 1.5

    def __init__(
        self,
        damping: float = 0.85,
        max_iterations: int = 30,
        tolerance: float = 1e-8,
    ) -> None:
        super().__init__()
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.pr: np.ndarray | None = None
        self._out_degrees: np.ndarray | None = None
        self._iteration = 0
        self._all_nodes: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        """``graph`` must be the transpose of the graph being ranked."""
        self.graph = graph
        n = graph.num_nodes
        self.pr = np.full(n, 1.0 / n, dtype=np.float64)
        # out-degree in the original == in-degree in the transpose
        self._out_degrees = np.bincount(
            graph.targets, minlength=n
        ).astype(np.float64)
        self._iteration = 0
        self._all_nodes = np.arange(n, dtype=np.int64)

    def initial_frontier(self) -> np.ndarray:
        assert self._all_nodes is not None
        return self._all_nodes

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.pr is not None and self._out_degrees is not None
        assert self.graph is not None and self._all_nodes is not None
        n = self.graph.num_nodes
        # transpose edge (v -> u) == original edge (u -> v): node v
        # gathers contribution pr[u] / outdeg[u].
        contributions = np.zeros(n, dtype=np.float64)
        gathered = self.damping * self.pr[edge_dst] \
            / self._out_degrees[edge_dst]
        np.add.at(contributions, edge_src, gathered)
        dangling_mass = self.pr[self._out_degrees == 0].sum()
        contributions += (
            (1.0 - self.damping) / n + self.damping * dangling_mass / n
        )
        delta = float(np.abs(contributions - self.pr).sum())
        self.pr = contributions
        self._iteration += 1
        if delta < self.tolerance or self._iteration >= self.max_iterations:
            return np.empty(0, dtype=np.int64)
        return self._all_nodes

    def result(self) -> dict[str, np.ndarray]:
        assert self.pr is not None
        return {"pagerank": self.pr}

    @property
    def iterations_run(self) -> int:
        return self._iteration
