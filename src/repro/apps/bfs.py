"""Breadth-First Search.

Algorithm 1 (paper): a neighbor passes the filter iff its ``dist`` is
still unset; it then receives ``dist[frontier] + 1`` and joins the next
frontier.  BFS tolerates dirty writes (every concurrent writer stores the
same level), so it needs no atomics — the reason its performance profile
differs from BC/PR in Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App, contract
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

UNVISITED = -1


class BFSApp(App):
    """Level-synchronous BFS from a single source."""

    name = "bfs"
    uses_atomics = False
    value_access_factor = 1.0
    # Level-synchronous BFS settles a node the first time it is reached;
    # a revisit means a non-monotone level assignment (sanitizer check).
    monotone_levels = True

    def __init__(self) -> None:
        super().__init__()
        self.dist: np.ndarray | None = None
        self._source: int | None = None
        self._level = 0

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if source is None:
            raise InvalidParameterError("BFS requires a source node")
        if not 0 <= source < graph.num_nodes:
            raise InvalidParameterError(f"source {source} out of range")
        self.graph = graph
        self._source = int(source)
        self._level = 0
        self.dist = np.full(graph.num_nodes, UNVISITED, dtype=np.int64)
        self.dist[source] = 0

    def initial_frontier(self) -> np.ndarray:
        return np.array([self._source], dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.dist is not None
        undiscovered = self.dist[edge_dst] == UNVISITED
        next_frontier = contract(edge_dst[undiscovered])
        self._level += 1
        self.dist[next_frontier] = self._level
        return next_frontier

    def result(self) -> dict[str, np.ndarray]:
        assert self.dist is not None
        return {"dist": self.dist}

    def source_node(self) -> int | None:
        return self._source

    def remap_nodes(self, perm: np.ndarray) -> None:
        super().remap_nodes(perm)
        if self._source is not None:
            self._source = int(perm[self._source])
