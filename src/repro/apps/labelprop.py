"""Label Propagation (community detection primitive).

The paper lists "Label Propagation: identify the label majority among all
neighbors of a frontier" among its pipeline-supported primitives
(Section 4).  Semi-synchronous variant: each iteration, every node with
in-edges adopts the most frequent label among its in-neighbors (smallest
label wins ties, making the algorithm deterministic); iteration stops at
a fixpoint or a round budget.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.graph.csr import CSRGraph


class LabelPropagationApp(App):
    """Deterministic semi-synchronous LPA."""

    name = "lp"
    uses_atomics = True
    value_access_factor = 1.5
    edge_compute_factor = 2.0

    def __init__(self, max_iterations: int = 20) -> None:
        super().__init__()
        self.max_iterations = max_iterations
        self.labels: np.ndarray | None = None
        self._iteration = 0
        self._all_nodes: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        self.labels = np.arange(graph.num_nodes, dtype=np.int64)
        self._iteration = 0
        self._all_nodes = np.arange(graph.num_nodes, dtype=np.int64)

    def initial_frontier(self) -> np.ndarray:
        assert self._all_nodes is not None
        return self._all_nodes

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.labels is not None and self._all_nodes is not None
        new_labels = self._majority_labels(edge_src, edge_dst)
        changed = bool(np.any(new_labels != self.labels))
        self.labels = new_labels
        self._iteration += 1
        if not changed or self._iteration >= self.max_iterations:
            return np.empty(0, dtype=np.int64)
        return self._all_nodes

    def _majority_labels(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> np.ndarray:
        """Majority label of in-neighbors per dst, vectorized.

        Sort edges by (dst, neighbor label); count run lengths; for each
        dst keep the run with the highest count, breaking ties toward the
        smaller label (runs for one dst arrive label-ascending, and a
        strict ``>`` keeps the first maximum).
        """
        assert self.labels is not None and self.graph is not None
        labels = self.labels
        new_labels = labels.copy()
        if edge_dst.size == 0:
            return new_labels
        src_labels = labels[edge_src]
        order = np.lexsort((src_labels, edge_dst))
        d = edge_dst[order]
        lab = src_labels[order]
        run_start = np.ones(d.size, dtype=bool)
        run_start[1:] = (d[1:] != d[:-1]) | (lab[1:] != lab[:-1])
        run_idx = np.flatnonzero(run_start)
        run_len = np.diff(np.append(run_idx, d.size))
        run_dst = d[run_idx]
        run_lab = lab[run_idx]
        best_count = np.zeros(self.graph.num_nodes, dtype=np.int64)
        # First pass: maximum run length per dst.
        np.maximum.at(best_count, run_dst, run_len)
        # Second pass: smallest label achieving the maximum.
        is_best = run_len == best_count[run_dst]
        winner = np.full(self.graph.num_nodes, np.iinfo(np.int64).max)
        np.minimum.at(winner, run_dst[is_best], run_lab[is_best])
        has_in = best_count > 0
        new_labels[has_in] = winner[has_in]
        return new_labels

    def result(self) -> dict[str, np.ndarray]:
        assert self.labels is not None
        return {"labels": self.labels}
