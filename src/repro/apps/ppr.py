"""Personalized PageRank (random walk with restart at a source).

The authors' earlier system computes personalized PageRank on dynamic
graphs (paper reference [14], Guo et al., VLDB'17); the primitive drops
straight into this pipeline: identical to global PageRank except the
teleport (and dangling) mass returns to the *source* instead of being
spread uniformly, so scores measure proximity to the source node.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


class PersonalizedPageRankApp(App):
    """Power iteration of random walk with restart."""

    name = "ppr"
    uses_atomics = True
    value_access_factor = 1.5
    edge_compute_factor = 1.5

    def __init__(
        self,
        damping: float = 0.85,
        max_iterations: int = 50,
        tolerance: float = 1e-10,
    ) -> None:
        super().__init__()
        if not 0.0 < damping < 1.0:
            raise InvalidParameterError("damping must be in (0, 1)")
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.scores: np.ndarray | None = None
        self._next: np.ndarray | None = None
        self._out_degrees: np.ndarray | None = None
        self._source: int | None = None
        self._iteration = 0
        self._all_nodes: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if source is None:
            raise InvalidParameterError("PPR requires a source node")
        if not 0 <= source < graph.num_nodes:
            raise InvalidParameterError(f"source {source} out of range")
        self.graph = graph
        self._source = int(source)
        n = graph.num_nodes
        self.scores = np.zeros(n, dtype=np.float64)
        self.scores[source] = 1.0
        self._next = np.zeros(n, dtype=np.float64)
        self._out_degrees = graph.out_degrees().astype(np.float64)
        self._iteration = 0
        self._all_nodes = np.arange(n, dtype=np.int64)

    def initial_frontier(self) -> np.ndarray:
        assert self._all_nodes is not None
        return self._all_nodes

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.scores is not None and self._next is not None
        assert self._out_degrees is not None and self._source is not None
        assert self._all_nodes is not None
        self._next[:] = 0.0
        contributions = (
            self.damping * self.scores[edge_src]
            / self._out_degrees[edge_src]
        )
        np.add.at(self._next, edge_dst, contributions)
        # restart: the teleport share and all dangling mass return home
        dangling = self.scores[self._out_degrees == 0].sum()
        self._next[self._source] += (
            (1.0 - self.damping) + self.damping * dangling
        )
        delta = float(np.abs(self._next - self.scores).sum())
        self.scores, self._next = self._next, self.scores
        self._iteration += 1
        if delta < self.tolerance or self._iteration >= self.max_iterations:
            return np.empty(0, dtype=np.int64)
        return self._all_nodes

    def result(self) -> dict[str, np.ndarray]:
        assert self.scores is not None
        return {"ppr": self.scores}

    def source_node(self) -> int | None:
        return self._source

    def remap_nodes(self, perm: np.ndarray) -> None:
        super().remap_nodes(perm)
        if self._source is not None:
            self._source = int(perm[self._source])
