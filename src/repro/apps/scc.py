"""Strongly Connected Components via Forward-Backward reachability.

The paper lists Tarjan-style SCC among the primitives its pipeline
supports (Section 4).  Tarjan's DFS is inherently sequential, so GPU
systems compute SCCs with the *Forward-Backward* (FB-Trim) algorithm
[Barnat et al., IPDPS'11 — the paper's reference 2]: repeatedly pick a
pivot in an unresolved partition, run a forward and a backward
reachability sweep (two pipeline traversals), intersect them into one
SCC, and recurse on the three remainders; trivial SCCs are trimmed
eagerly.

Each reachability sweep is an ordinary masked BFS through the
expansion-filtering-contraction pipeline, so the whole decomposition
inherits SAGE's (or any baseline's) scheduling and cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import App, contract
from repro.core.pipeline import TraversalPipeline
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device


class MaskedReachabilityApp(App):
    """BFS reachability restricted to an active-node mask.

    The filter admits a neighbor iff it is unvisited *and* belongs to the
    currently unresolved partition — the masked sweep at the heart of
    FB-SCC.
    """

    name = "reach"
    uses_atomics = False
    value_access_factor = 1.0

    def __init__(self, active: np.ndarray, source: int) -> None:
        super().__init__()
        self._active = active
        self._source = source
        self.visited: np.ndarray | None = None

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        self.graph = graph
        start = self._source if source is None else source
        if not self._active[start]:
            raise InvalidParameterError("reachability source must be active")
        self.visited = np.zeros(graph.num_nodes, dtype=bool)
        self.visited[start] = True
        self._source = int(start)

    def initial_frontier(self) -> np.ndarray:
        return np.array([self._source], dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.visited is not None
        passes = self._active[edge_dst] & ~self.visited[edge_dst]
        next_frontier = contract(edge_dst[passes])
        self.visited[next_frontier] = True
        return next_frontier

    def result(self) -> dict[str, np.ndarray]:
        assert self.visited is not None
        return {"visited": self.visited}


@dataclass
class SCCResult:
    """Outcome of an SCC decomposition.

    Attributes:
        labels: SCC id per node (the smallest member's id).
        num_components: number of SCCs found.
        seconds: simulated time across all sweeps.
        sweeps: number of reachability traversals executed.
        trimmed: nodes resolved by the trim step (degree-0 in their
            partition) without any traversal.
    """

    labels: np.ndarray
    num_components: int
    seconds: float
    sweeps: int
    trimmed: int


def strongly_connected_components(
    graph: CSRGraph,
    scheduler_factory,
    *,
    max_partitions: int = 1_000_000,
) -> SCCResult:
    """Decompose ``graph`` into SCCs with Forward-Backward + trimming.

    Args:
        graph: input digraph.
        scheduler_factory: zero-arg callable building a fresh
            :class:`~repro.core.scheduler.Scheduler` per sweep (forward
            and backward sweeps traverse different CSRs).
        max_partitions: safety bound on the partition worklist.
    """
    n = graph.num_nodes
    reverse = graph.reversed()
    labels = np.full(n, -1, dtype=np.int64)
    device = Device(scheduler_factory().spec)
    sweeps = 0
    trimmed_total = 0

    worklist: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    processed = 0
    while worklist:
        processed += 1
        if processed > max_partitions:
            raise InvalidParameterError("partition worklist exceeded bound")
        partition = worklist.pop()
        if partition.size == 0:
            continue
        # Trim to fixpoint: nodes with no in- or out-edges inside the
        # partition are singleton SCCs; removing them can expose more
        # (chains trim away entirely without any traversal).
        active = np.zeros(n, dtype=bool)
        active[partition] = True
        while partition.size:
            local_out = _masked_degree(graph, partition, active)
            local_in = _masked_degree_rev(reverse, partition, active)
            trivial_mask = (local_out == 0) | (local_in == 0)
            if not trivial_mask.any():
                break
            trivial = partition[trivial_mask]
            labels[trivial] = trivial
            trimmed_total += int(trivial.size)
            partition = partition[~trivial_mask]
            active[trivial] = False
        if partition.size == 0:
            continue
        if partition.size == 1:
            labels[partition] = partition
            continue

        pivot = int(partition[0])
        fwd = _reach(graph, active, pivot, scheduler_factory, device)
        bwd = _reach(reverse, active, pivot, scheduler_factory, device)
        sweeps += 2

        scc_mask = fwd & bwd
        members = np.flatnonzero(scc_mask)
        labels[members] = members.min()

        remainder_fwd = partition[fwd[partition] & ~scc_mask[partition]]
        remainder_bwd = partition[bwd[partition] & ~scc_mask[partition]]
        remainder_none = partition[~fwd[partition] & ~bwd[partition]]
        for rest in (remainder_fwd, remainder_bwd, remainder_none):
            if rest.size:
                worklist.append(rest)

    return SCCResult(
        labels=labels,
        num_components=int(np.unique(labels).size),
        seconds=device.elapsed_seconds,
        sweeps=sweeps,
        trimmed=trimmed_total,
    )


def _masked_degree(
    graph: CSRGraph, partition: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Out-degree of each partition node counting only intra-partition
    edges."""
    _, edge_dst, __ = graph.expand_frontier(partition)
    degrees = graph.offsets[partition + 1] - graph.offsets[partition]
    owner = np.repeat(np.arange(partition.size), degrees)
    inside = active[edge_dst]
    out = np.zeros(partition.size, dtype=np.int64)
    np.add.at(out, owner, inside.astype(np.int64))
    return out


def _masked_degree_rev(
    reverse: CSRGraph, partition: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """In-degree restricted to the partition (out-degree on G^T)."""
    return _masked_degree(reverse, partition, active)


def _reach(
    graph: CSRGraph,
    active: np.ndarray,
    pivot: int,
    scheduler_factory,
    device: Device,
) -> np.ndarray:
    """One masked reachability sweep, accumulating time on ``device``."""
    app = MaskedReachabilityApp(active, pivot)
    pipeline = TraversalPipeline(graph, scheduler_factory(), device)
    result = pipeline.run(app, source=None)
    return result.result["visited"]
