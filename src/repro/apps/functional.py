"""Functional application builder (Medusa/Gunrock-style programmability).

The paper's programmability pitch (Sections 1, 2.2): platforms like
Medusa [53] and Gunrock [48] let users express graph algorithms through
a few user-defined functions instead of hand-written kernels.  This
module is that layer for the repro framework: build a full
:class:`~repro.apps.base.App` from three plain functions, no subclassing.

Example — reachability in five lines::

    from repro.apps.functional import make_app

    reach = make_app(
        "reach",
        init=lambda graph, source: {"seen": one_hot(graph, source)},
        edge_filter=lambda state, src, dst: ~state["seen"][dst],
        on_pass=lambda state, nodes: state["seen"].__setitem__(nodes, True),
    )
    result = run_app(graph, reach(), SageScheduler(), source=0)

The three callbacks mirror the pipeline's steps: ``init`` allocates node
state, ``edge_filter`` is Algorithm 1's ``filter(frontier, neighbor)``
vectorized over the edge batch, and ``on_pass`` applies updates to the
contracted next frontier.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.apps.base import App, contract
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

State = dict[str, np.ndarray]
InitFn = Callable[[CSRGraph, "int | None"], State]
EdgeFilterFn = Callable[[State, np.ndarray, np.ndarray], np.ndarray]
OnPassFn = Callable[[State, np.ndarray], None]
FrontierFn = Callable[[State, CSRGraph, "int | None"], np.ndarray]


class FunctionalApp(App):
    """An :class:`App` assembled from user callbacks."""

    uses_atomics = False

    def __init__(
        self,
        name: str,
        init: InitFn,
        edge_filter: EdgeFilterFn,
        *,
        on_pass: OnPassFn | None = None,
        initial_frontier: FrontierFn | None = None,
        max_iterations: int | None = None,
        uses_atomics: bool = False,
        value_access_factor: float = 1.0,
    ) -> None:
        super().__init__()
        self.name = name
        self._init = init
        self._edge_filter = edge_filter
        self._on_pass = on_pass
        self._initial_frontier = initial_frontier
        self._max_iterations = max_iterations
        self.uses_atomics = uses_atomics
        self.value_access_factor = value_access_factor
        self.state: State = {}
        self._source: int | None = None
        self._iteration = 0

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if source is not None and not 0 <= source < graph.num_nodes:
            raise InvalidParameterError(f"source {source} out of range")
        self.graph = graph
        self._source = source
        self._iteration = 0
        self.state = self._init(graph, source)
        if not isinstance(self.state, dict):
            raise InvalidParameterError("init must return a state dict")

    def initial_frontier(self) -> np.ndarray:
        assert self.graph is not None
        if self._initial_frontier is not None:
            return np.asarray(
                self._initial_frontier(self.state, self.graph, self._source),
                dtype=np.int64,
            )
        if self._source is None:
            return np.arange(self.graph.num_nodes, dtype=np.int64)
        return np.array([self._source], dtype=np.int64)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        passes = np.asarray(self._edge_filter(self.state, edge_src, edge_dst))
        if passes.shape != edge_dst.shape or passes.dtype != bool:
            raise InvalidParameterError(
                "edge_filter must return a boolean mask over the edge batch"
            )
        next_frontier = contract(edge_dst[passes])
        if self._on_pass is not None:
            self._on_pass(self.state, next_frontier)
        self._iteration += 1
        if (self._max_iterations is not None
                and self._iteration >= self._max_iterations):
            return np.empty(0, dtype=np.int64)
        return next_frontier

    def result(self) -> dict[str, np.ndarray]:
        return dict(self.state)

    def source_node(self) -> int | None:
        return self._source

    def remap_nodes(self, perm: np.ndarray) -> None:
        assert self.graph is not None
        n = self.graph.num_nodes
        for key, val in self.state.items():
            arr = np.asarray(val)
            if arr.ndim == 1 and arr.size == n:
                remapped = np.empty_like(arr)
                remapped[perm] = arr
                self.state[key] = remapped
        if self._source is not None:
            self._source = int(perm[self._source])


def make_app(
    name: str,
    init: InitFn,
    edge_filter: EdgeFilterFn,
    **kwargs,
) -> Callable[[], FunctionalApp]:
    """Factory of factories: returns a zero-arg constructor for the app.

    Matches how schedulers/benchmarks expect app factories, so a
    functional app drops into any harness slot::

        my_app = make_app("mine", init, edge_filter)
        run_app(graph, my_app(), SageScheduler(), source=0)
    """
    return lambda: FunctionalApp(name, init, edge_filter, **kwargs)


def one_hot(graph: CSRGraph, node: int, dtype=bool) -> np.ndarray:
    """Convenience: an indicator array with ``node`` set."""
    out = np.zeros(graph.num_nodes, dtype=dtype)
    out[node] = True
    return out
