"""Sampling-based approximate personalized PageRank (Monte Carlo).

The classic endpoint estimator: a walk from the source stops at every
step with probability ``1 - damping`` and otherwise follows a uniform
out-edge (dangling nodes teleport back to the source, exactly the
dangling-mass rule of the exact power-iteration app); the distribution
of the node where a walk *stops* is the personalized PageRank vector.
``result()["sppr"]`` is the empirical endpoint frequency over
``num_walks`` walks — an unbiased estimate whose error versus the exact
:class:`~repro.apps.ppr.PersonalizedPageRankApp` shrinks as
``O(1/sqrt(num_walks))`` (the statistical-oracle test documents the
bound it enforces).

Stream identity is ``(seed, source, walk_index)``; each step consumes
two fixed-coordinate draws — slot 0 for the stop decision, slot 1 for
the hop — so batched execution never perturbs a walk.  Walks still
running after ``max_steps`` stop where they stand; with the default
``damping=0.85, max_steps=32`` the truncated tail carries ~0.5% of the
mass, deterministically the same on every run.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.apps.sampling import rng
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


class SampledPPRApp(App):
    """Monte Carlo personalized PageRank from one source (or a batch)."""

    name = "sppr"
    uses_atomics = True  # endpoint histogram accumulation
    value_access_factor = 1.0
    edge_compute_factor = 1.2

    def __init__(
        self,
        num_walks: int = 256,
        damping: float = 0.85,
        max_steps: int = 32,
        seed: int = 0,
        sources: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        if num_walks < 1:
            raise InvalidParameterError("num_walks must be >= 1")
        if not 0.0 < damping < 1.0:
            raise InvalidParameterError("damping must be in (0, 1)")
        if max_steps < 1:
            raise InvalidParameterError("max_steps must be >= 1")
        self.num_walks = int(num_walks)
        self.damping = float(damping)
        self.max_steps = int(max_steps)
        self.seed = int(seed)
        self._sources_arg = (
            None if sources is None else np.asarray(sources, dtype=np.int64)
        )
        self.sources: np.ndarray | None = None
        self.counts: np.ndarray | None = None  # (groups, num_nodes)
        self.cur: np.ndarray | None = None
        self.group: np.ndarray | None = None
        self.active: np.ndarray | None = None
        self.keys: np.ndarray | None = None
        self._sources_cur: np.ndarray | None = None  # current labeling
        self._step = 0

    # ------------------------------------------------------------------
    # App contract
    # ------------------------------------------------------------------

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if self._sources_arg is not None:
            groups = self._sources_arg
            if groups.size == 0:
                raise InvalidParameterError("sources must be non-empty")
        else:
            if source is None:
                raise InvalidParameterError("sppr requires a source node")
            groups = np.array([source], dtype=np.int64)
        if groups.min() < 0 or groups.max() >= graph.num_nodes:
            raise InvalidParameterError("sppr source out of range")
        self.graph = graph
        self.sources = groups
        self._sources_cur = groups.copy()
        walk_sources = np.repeat(groups, self.num_walks)
        walk_indices = np.tile(
            np.arange(self.num_walks, dtype=np.int64), groups.size
        )
        self.keys = rng.derive(self.seed, walk_sources, walk_indices)
        self.counts = np.zeros(
            (groups.size, graph.num_nodes), dtype=np.float64
        )
        self.cur = walk_sources.copy()
        self.group = np.repeat(
            np.arange(groups.size, dtype=np.int64), self.num_walks
        )
        self.active = np.ones(walk_sources.size, dtype=bool)
        self._step = 0

    def initial_frontier(self) -> np.ndarray:
        assert self.cur is not None and self.active is not None
        return np.unique(self.cur[self.active])

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.graph is not None and self.cur is not None
        assert self.active is not None and self.counts is not None
        assert self.keys is not None and self.group is not None
        assert self._sources_cur is not None
        offsets, targets = self.graph.offsets, self.graph.targets
        walk_ids = np.flatnonzero(self.active)
        # Slot 0: the geometric stop decision for this step.
        stop_u = rng.uniform(self.keys[walk_ids], self._step, 0)
        stopping = stop_u < (1.0 - self.damping)
        if self._step + 1 >= self.max_steps:
            stopping = np.ones_like(stopping)  # deterministic truncation
        stopped = walk_ids[stopping]
        if stopped.size:
            np.add.at(
                self.counts,
                (self.group[stopped], self.cur[stopped]),
                1.0,
            )
            self.active[stopped] = False
        moving = walk_ids[~stopping]
        if moving.size:
            cur = self.cur[moving]
            degrees = offsets[cur + 1] - offsets[cur]
            dangling = degrees == 0
            # Dangling mass teleports home, like the exact app.
            if dangling.any():
                self.cur[moving[dangling]] = self._sources_cur[
                    self.group[moving[dangling]]
                ]
            live = moving[~dangling]
            if live.size:
                # Slot 1: the hop choice.
                u = rng.uniform(self.keys[live], self._step, 1)
                cur_live = self.cur[live]
                starts = offsets[cur_live]
                degs = offsets[cur_live + 1] - starts
                self.cur[live] = targets[
                    starts + rng.choose_index(u, degs)
                ]
        self._step += 1
        if not self.active.any():
            return np.empty(0, dtype=np.int64)
        return np.unique(self.cur[self.active])

    def result(self) -> dict[str, np.ndarray]:
        assert self.counts is not None
        estimates = self.counts / float(self.num_walks)
        if self._sources_arg is None:
            return {"sppr": estimates[0]}
        return {"sppr": estimates}

    # ------------------------------------------------------------------
    # Reordering hooks
    # ------------------------------------------------------------------

    def remap_nodes(self, perm: np.ndarray) -> None:
        if self.cur is not None:
            self.cur = perm[self.cur]
        if self._sources_cur is not None:
            self._sources_cur = perm[self._sources_cur]
        if self.counts is not None:
            remapped = np.empty_like(self.counts)
            remapped[:, perm] = self.counts
            self.counts = remapped
