"""Random-walk & sampling workload family (GNN/recommendation traffic).

Biased random walks, node2vec transition sampling, k-hop neighbor
sampling for GNN mini-batches, and Monte Carlo personalized PageRank —
all running on the standard expansion-filtering-contraction engine with
counter-based seeded RNG (:mod:`repro.apps.sampling.rng`) so every
result is bit-reproducible regardless of batching, routing or pipeline
interleaving.  See DESIGN.md "Sampling workloads" for the derivation
scheme and the coalescing cost model.
"""

from repro.apps.sampling.khop import KHopSampleApp
from repro.apps.sampling.sppr import SampledPPRApp
from repro.apps.sampling.walks import (
    BiasedRandomWalkApp,
    Node2VecWalkApp,
    node2vec_transition_probabilities,
)

__all__ = [
    "BiasedRandomWalkApp",
    "KHopSampleApp",
    "Node2VecWalkApp",
    "SampledPPRApp",
    "node2vec_transition_probabilities",
]
