"""Counter-based seeded RNG for the sampling workload family.

Every random draw in :mod:`repro.apps.sampling` is a *pure function* of
integer coordinates — ``(global_seed, walk_id, step, slot)`` — hashed
through a splitmix64-style finalizer.  There is no mutable generator
state at all: a walk's next hop depends only on its identity and the
step counter, never on how many other walks share the kernel, which
batch the query landed in, or which replica served it.  That is what
makes batched/clustered/pipelined sampling bit-identical to the
single-query oracle (the differential harness in ``tests/serve/`` pins
it) and is the GPU-idiomatic formulation: C-SAW and cuRAND's
counter-based generators derive per-thread streams the same way.

Deliberately **no** ``numpy.random`` anywhere in this package — the
SAGE003 determinism lint and the AST drift test in
``tests/test_sampling_apps.py`` both enforce that every draw flows
through :func:`derive` / :func:`uniform`.
"""

from __future__ import annotations

import numpy as np

#: splitmix64 stream increment (the 64-bit golden-ratio constant).
GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MASK = (1 << 64) - 1
#: 2**-53: scales the top 53 hash bits onto the float64 unit interval.
_INV_2_53 = float(2.0 ** -53)


def _as_u64(value) -> np.ndarray:
    """Coerce an int or integer array to uint64 (two's-complement wrap).

    Always returns an ``ndarray`` (0-d for scalars): array arithmetic
    wraps silently on overflow, exactly the modular behavior splitmix64
    needs, whereas numpy *scalar* overflow raises RuntimeWarnings.
    """
    if isinstance(value, (int, np.integer)):
        return np.asarray(int(value) & _U64_MASK, dtype=np.uint64)
    arr = np.asarray(value)
    if arr.dtype == np.uint64:
        return arr
    return arr.astype(np.uint64)


def mix64(x) -> np.ndarray:
    """The splitmix64 finalizer: a bijective avalanche on uint64."""
    x = _as_u64(x)
    # Modular wraparound is the whole point of the finalizer; numpy
    # reports 0-d overflow as a RuntimeWarning, so mute it here.
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def derive(*parts) -> np.ndarray:
    """Fold integer coordinates into one uint64 key (order-sensitive).

    Broadcasting applies across array-valued parts, so
    ``derive(seed, sources, walk_indices)`` yields one independent key
    per walk in a single vectorized pass.  Keys are themselves valid
    parts: ``derive(derive(seed, walk), step)`` equals nothing else in
    the stream family, which is how per-step draws are chained.
    """
    acc = np.zeros((), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for part in parts:
            acc = mix64(acc ^ (mix64(part) + GOLDEN))
    return acc


def uniform(*parts) -> np.ndarray:
    """Deterministic float64 uniforms in ``[0, 1)`` at the coordinates.

    Uses the top 53 bits of :func:`derive`, the standard bits-to-double
    construction, so every value is exactly representable and strictly
    below 1.0.
    """
    bits = derive(*parts)
    return (bits >> np.uint64(11)).astype(np.float64) * _INV_2_53


def choose_index(u: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Map unit uniforms onto ``[0, counts)`` indices (counts >= 1)."""
    counts = np.asarray(counts, dtype=np.int64)
    idx = (np.asarray(u, dtype=np.float64) * counts).astype(np.int64)
    # u < 1.0 guarantees idx < counts mathematically; the clip guards
    # the float rounding edge where u * counts lands exactly on counts.
    return np.minimum(idx, counts - 1)
