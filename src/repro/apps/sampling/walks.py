"""Biased random walks and node2vec transition sampling on the engine.

Each walk is an independent stream: walk ``w`` started at ``source`` has
identity ``(source, w)`` and its step-``t`` draw is
``uniform(derive(seed, source, w), t)`` — a pure function of those
coordinates (see :mod:`repro.apps.sampling.rng`).  The app advances all
live walks one hop per pipeline iteration; the frontier it hands the
engine is the set of *unique* current nodes, so thousands of concurrent
walks coalesce MS-BFS-style: the expansion kernel gathers each node's
adjacency once no matter how many walks currently sit on it.  That
shared gather — not any change to the per-walk streams — is where the
batched serving tier's speedup comes from, and why a batch of
walk queries is bit-identical to running each query alone.

Walks stop early at dangling nodes (out-degree 0); the remaining trace
slots stay ``-1``.  Node ids recorded in traces are always expressed in
the *original* labeling even if a self-adaptive scheduler commits a
reordering mid-run (the apps maintain the inverse relabeling), but the
*selection* itself reads the current CSR, so bit-stable sampling should
use a non-reordering scheduler — every serving path does (the default
``SageScheduler`` never commits reorders).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.apps.sampling import rng
from repro.apps.sssp import synthetic_weights
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


class BiasedRandomWalkApp(App):
    """Fixed-length random walks, uniform or edge-weight-biased.

    One query's worth of walks is ``num_walks`` streams from a single
    ``source`` (passed to :meth:`setup`); the batched executor instead
    passes ``sources`` — one group of ``num_walks`` streams per unique
    query source — and gets the exact concatenation of the per-source
    runs, because stream identity includes the source.
    ``result()["walks"]`` is an int64 ``(num_walks * num_sources,
    walk_length + 1)`` trace matrix, source in column 0, ``-1`` padding
    after a walk dies at a dangling node.

    ``weighted=True`` biases each hop by the deterministic synthetic
    edge weights (:func:`repro.apps.sssp.synthetic_weights`), the same
    weights the SSSP workload traverses.
    """

    name = "walk"
    uses_atomics = False
    value_access_factor = 1.0
    edge_compute_factor = 1.2

    def __init__(
        self,
        num_walks: int = 4,
        walk_length: int = 8,
        seed: int = 0,
        weighted: bool = False,
        sources: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        if num_walks < 1:
            raise InvalidParameterError("num_walks must be >= 1")
        if walk_length < 1:
            raise InvalidParameterError("walk_length must be >= 1")
        self.num_walks = int(num_walks)
        self.walk_length = int(walk_length)
        self.seed = int(seed)
        self.weighted = bool(weighted)
        self._sources_arg = (
            None if sources is None else np.asarray(sources, dtype=np.int64)
        )
        self.sources: np.ndarray | None = None
        self.trace: np.ndarray | None = None
        self.cur: np.ndarray | None = None
        self.prev: np.ndarray | None = None
        self.active: np.ndarray | None = None
        self.keys: np.ndarray | None = None
        self._step = 0
        self._inv: np.ndarray | None = None  # current id -> original id
        self._weights: np.ndarray | None = None  # per-edge weights
        self._cumw: np.ndarray | None = None  # inclusive weight prefix sums

    # ------------------------------------------------------------------
    # App contract
    # ------------------------------------------------------------------

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if self._sources_arg is not None:
            groups = self._sources_arg
            if groups.size == 0:
                raise InvalidParameterError("sources must be non-empty")
        else:
            if source is None:
                raise InvalidParameterError(
                    f"{self.name} requires a source node"
                )
            groups = np.array([source], dtype=np.int64)
        if groups.min() < 0 or groups.max() >= graph.num_nodes:
            raise InvalidParameterError("walk source out of range")
        self.graph = graph
        self.sources = groups
        walk_sources = np.repeat(groups, self.num_walks)
        walk_indices = np.tile(
            np.arange(self.num_walks, dtype=np.int64), groups.size
        )
        # Stream identity: key_w = derive(seed, source_w, index_w); the
        # per-step draw is uniform(key_w, step) — batch-independent.
        self.keys = rng.derive(self.seed, walk_sources, walk_indices)
        total = walk_sources.size
        self.trace = np.full(
            (total, self.walk_length + 1), -1, dtype=np.int64
        )
        self.trace[:, 0] = walk_sources
        self.cur = walk_sources.copy()
        self.prev = np.full(total, -1, dtype=np.int64)
        self.active = np.ones(total, dtype=bool)
        self._step = 0
        self._inv = None
        if self.weighted:
            self._weights = synthetic_weights(graph).astype(np.float64)
            self._cumw = np.cumsum(self._weights)
        else:
            self._weights = None
            self._cumw = None

    def initial_frontier(self) -> np.ndarray:
        assert self.cur is not None and self.active is not None
        return np.unique(self.cur[self.active])

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.graph is not None and self.cur is not None
        assert self.active is not None and self.trace is not None
        assert self.keys is not None and self.prev is not None
        offsets = self.graph.offsets
        walk_ids = np.flatnonzero(self.active)
        cur = self.cur[walk_ids]
        degrees = offsets[cur + 1] - offsets[cur]
        # Walks at dangling nodes die; their remaining trace stays -1.
        dead = walk_ids[degrees == 0]
        self.active[dead] = False
        live = degrees > 0
        walk_ids, cur = walk_ids[live], cur[live]
        if walk_ids.size:
            u = rng.uniform(self.keys[walk_ids], self._step)
            nxt = self._choose_next(walk_ids, cur, u)
            self.prev[walk_ids] = cur
            self.cur[walk_ids] = nxt
            recorded = nxt if self._inv is None else self._inv[nxt]
            self.trace[walk_ids, self._step + 1] = recorded
        self._step += 1
        if self._step >= self.walk_length:
            self.active[:] = False
        if not self.active.any():
            return np.empty(0, dtype=np.int64)
        return np.unique(self.cur[self.active])

    def result(self) -> dict[str, np.ndarray]:
        assert self.trace is not None
        return {"walks": self.trace}

    # ------------------------------------------------------------------
    # Hop selection (overridden by node2vec)
    # ------------------------------------------------------------------

    def _choose_next(
        self, walk_ids: np.ndarray, cur: np.ndarray, u: np.ndarray
    ) -> np.ndarray:
        """One hop for every live walk (``cur`` has out-degree >= 1)."""
        assert self.graph is not None
        offsets, targets = self.graph.offsets, self.graph.targets
        starts = offsets[cur]
        if self._cumw is None:
            degrees = offsets[cur + 1] - starts
            return targets[starts + rng.choose_index(u, degrees)]
        # Weighted: invert the per-slice CDF through the *global* prefix
        # sums (strictly increasing, weights >= 1), so one vectorized
        # searchsorted lands inside each walk's adjacency slice.
        ends = offsets[cur + 1]
        base = np.where(starts > 0, self._cumw[starts - 1], 0.0)
        total = self._cumw[ends - 1] - base
        pos = np.searchsorted(self._cumw, base + u * total, side="right")
        return targets[np.clip(pos, starts, ends - 1)]

    # ------------------------------------------------------------------
    # Reordering hooks
    # ------------------------------------------------------------------

    def remap_nodes(self, perm: np.ndarray) -> None:
        assert self.graph is not None
        # Traces hold original ids (via self._inv) and keys are frozen
        # at setup; only the current-labeling cursors move.
        if self.cur is not None:
            self.cur = perm[self.cur]
        if self.prev is not None:
            valid = self.prev >= 0
            self.prev[valid] = perm[self.prev[valid]]
        n = self.graph.num_nodes
        if self._inv is None:
            self._inv = np.empty(n, dtype=np.int64)
            self._inv[perm] = np.arange(n, dtype=np.int64)
        else:
            updated = np.empty(n, dtype=np.int64)
            updated[perm] = self._inv
            self._inv = updated
        if self.weighted:
            # Synthetic weights are endpoint hashes: recompute on the
            # relabeled CSR so biases track the current adjacency.
            self._weights = synthetic_weights(self.graph).astype(np.float64)
            self._cumw = np.cumsum(self._weights)


def node2vec_transition_probabilities(
    graph: CSRGraph,
    prev: int,
    cur: int,
    p: float,
    q: float,
    *,
    weighted: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact node2vec transition distribution out of ``cur`` given ``prev``.

    Returns ``(neighbors, probabilities)`` — the statistical oracle the
    chi-square/TV-distance tests compare empirical walk frequencies
    against.  Weights follow Grover & Leskovec: a neighbor ``x`` of
    ``cur`` is scaled by ``1/p`` if ``x == prev`` (return), ``1`` if
    ``x`` is also a neighbor of ``prev`` (distance 1), else ``1/q``.
    """
    neighbors = np.asarray(graph.neighbors(cur), dtype=np.int64)
    if neighbors.size == 0:
        return neighbors, np.empty(0, dtype=np.float64)
    if weighted:
        start, end = int(graph.offsets[cur]), int(graph.offsets[cur + 1])
        base = synthetic_weights(graph)[start:end].astype(np.float64)
    else:
        base = np.ones(neighbors.size, dtype=np.float64)
    prev_adj = graph.neighbors(prev)
    factor = np.where(
        neighbors == prev,
        1.0 / p,
        np.where(np.isin(neighbors, prev_adj), 1.0, 1.0 / q),
    )
    weights = base * factor
    return neighbors, weights / weights.sum()


class Node2VecWalkApp(BiasedRandomWalkApp):
    """node2vec second-order walks (p/q return / in-out weighting).

    The first hop of every walk is the plain (optionally weighted)
    biased choice; every later hop rescales the candidate weights by the
    node2vec search bias relative to the previous node: ``1/p`` for
    returning, ``1`` for staying at distance one, ``1/q`` for moving
    outward.  Exactly one uniform is drawn per (walk, step), same
    coordinates as the parent class, so node2vec streams are just as
    batch-independent.
    """

    name = "node2vec"
    edge_compute_factor = 2.0

    def __init__(
        self,
        num_walks: int = 4,
        walk_length: int = 8,
        seed: int = 0,
        p: float = 1.0,
        q: float = 1.0,
        weighted: bool = False,
        sources: np.ndarray | None = None,
    ) -> None:
        super().__init__(
            num_walks=num_walks,
            walk_length=walk_length,
            seed=seed,
            weighted=weighted,
            sources=sources,
        )
        if p <= 0 or q <= 0:
            raise InvalidParameterError("p and q must be > 0")
        self.p = float(p)
        self.q = float(q)

    def _choose_next(
        self, walk_ids: np.ndarray, cur: np.ndarray, u: np.ndarray
    ) -> np.ndarray:
        if self._step == 0:
            return super()._choose_next(walk_ids, cur, u)
        assert self.graph is not None and self.prev is not None
        graph = self.graph
        prev = self.prev[walk_ids]
        nxt = np.empty(walk_ids.size, dtype=np.int64)
        for i in range(walk_ids.size):
            v, t = int(cur[i]), int(prev[i])
            adj = graph.neighbors(v)
            if self._weights is not None:
                start, end = int(graph.offsets[v]), int(graph.offsets[v + 1])
                base = self._weights[start:end]
            else:
                base = np.ones(adj.size, dtype=np.float64)
            factor = np.where(
                adj == t,
                1.0 / self.p,
                np.where(np.isin(adj, graph.neighbors(t)), 1.0, 1.0 / self.q),
            )
            cdf = np.cumsum(base * factor)
            pick = np.searchsorted(cdf, u[i] * cdf[-1], side="right")
            nxt[i] = adj[min(int(pick), adj.size - 1)]
        return nxt
