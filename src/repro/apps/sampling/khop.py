"""K-hop neighbor sampling for GNN mini-batches.

The GraphSAGE-style primitive: from each seed node, sample ``fanouts[0]``
neighbors (with replacement), then ``fanouts[1]`` neighbors of each of
those, and so on — one pipeline iteration per layer, so a whole batch of
seeds shares each layer's expansion kernel.  Every draw is keyed by
``(seed, source, layer, parent_index, slot)`` where ``parent_index`` is
the parent's position within *its own query's* layer; the sampled tree
of one query is therefore identical whether the query runs alone or
coalesced with thousands of others (the differential harness pins it).

``result()`` for a single-query run is ``{"nodes", "offsets"}``: the
layer-concatenated sampled node ids (seed first) and the layer boundary
offsets (length ``len(fanouts) + 2``).  A batched run (``sources=...``)
additionally returns ``"group_offsets"`` delimiting each query's slice
of ``nodes`` — the executor splits on it and hands every query exactly
the arrays its single-query oracle run would have produced.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.apps.sampling import rng
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


class KHopSampleApp(App):
    """Layered neighbor sampling from one seed (or a batch of seeds)."""

    name = "khop"
    uses_atomics = False
    value_access_factor = 1.0
    edge_compute_factor = 1.2

    def __init__(
        self,
        fanouts: tuple[int, ...] = (4, 3),
        seed: int = 0,
        sources: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        fanouts = tuple(int(f) for f in fanouts)
        if not fanouts or any(f < 1 for f in fanouts):
            raise InvalidParameterError(
                f"fanouts must be a non-empty tuple of ints >= 1, "
                f"got {fanouts!r}"
            )
        self.fanouts = fanouts
        self.seed = int(seed)
        self._sources_arg = (
            None if sources is None else np.asarray(sources, dtype=np.int64)
        )
        self.sources: np.ndarray | None = None
        self._layer = 0
        self._cur_nodes: np.ndarray | None = None  # current labeling
        self._cur_group: np.ndarray | None = None
        self._cur_index: np.ndarray | None = None  # index within group layer
        self._layers: list[tuple[np.ndarray, np.ndarray]] = []
        self._inv: np.ndarray | None = None  # current id -> original id

    # ------------------------------------------------------------------
    # App contract
    # ------------------------------------------------------------------

    def setup(self, graph: CSRGraph, source: int | None = None) -> None:
        if self._sources_arg is not None:
            groups = self._sources_arg
            if groups.size == 0:
                raise InvalidParameterError("sources must be non-empty")
        else:
            if source is None:
                raise InvalidParameterError("khop requires a source node")
            groups = np.array([source], dtype=np.int64)
        if groups.min() < 0 or groups.max() >= graph.num_nodes:
            raise InvalidParameterError("khop source out of range")
        self.graph = graph
        self.sources = groups
        self._layer = 0
        self._cur_nodes = groups.copy()
        self._cur_group = np.arange(groups.size, dtype=np.int64)
        self._cur_index = np.zeros(groups.size, dtype=np.int64)
        self._layers = []
        self._inv = None

    def initial_frontier(self) -> np.ndarray:
        assert self._cur_nodes is not None
        return np.unique(self._cur_nodes)

    def process_level(
        self,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> np.ndarray:
        assert self.graph is not None and self.sources is not None
        assert self._cur_nodes is not None and self._cur_group is not None
        assert self._cur_index is not None
        offsets, targets = self.graph.offsets, self.graph.targets
        fanout = self.fanouts[self._layer]
        parents, groups = self._cur_nodes, self._cur_group
        pidx = self._cur_index
        degrees = offsets[parents + 1] - offsets[parents]
        live = degrees > 0  # dangling parents contribute no children
        parents, groups, pidx = parents[live], groups[live], pidx[live]
        degrees = degrees[live]
        if parents.size:
            # One draw per (parent, slot); keys broadcast (P, 1) x (f,).
            slots = np.arange(fanout, dtype=np.int64)
            u = rng.uniform(
                rng.derive(
                    self.seed, self.sources[groups], self._layer, pidx
                )[:, None],
                slots,
            )
            sel = rng.choose_index(u, degrees[:, None])
            children = targets[offsets[parents][:, None] + sel]
            flat = children.reshape(-1)
            child_groups = np.repeat(groups, fanout)
            recorded = flat if self._inv is None else self._inv[flat]
            self._layers.append((child_groups, recorded))
            # Per-group position of each child (groups are contiguous
            # because parents stay sorted by group across layers).
            counts = np.bincount(child_groups,
                                 minlength=self.sources.size)
            run_starts = np.repeat(
                np.cumsum(counts) - counts, counts
            )
            child_index = (
                np.arange(flat.size, dtype=np.int64) - run_starts
            )
            self._cur_nodes = flat
            self._cur_group = child_groups
            self._cur_index = child_index
        else:
            self._layers.append((
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            ))
            self._cur_nodes = np.empty(0, dtype=np.int64)
            self._cur_group = np.empty(0, dtype=np.int64)
            self._cur_index = np.empty(0, dtype=np.int64)
        self._layer += 1
        if self._layer >= len(self.fanouts) or self._cur_nodes.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._cur_nodes)

    def result(self) -> dict[str, np.ndarray]:
        assert self.sources is not None
        num_groups = self.sources.size
        num_layers = len(self.fanouts)
        # Layers may be missing when sampling died early; pad empties.
        layers = list(self._layers)
        while len(layers) < num_layers:
            layers.append((
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            ))
        pieces: list[np.ndarray] = []
        offsets = np.zeros((num_groups, num_layers + 2), dtype=np.int64)
        group_offsets = np.zeros(num_groups + 1, dtype=np.int64)
        for g in range(num_groups):
            # self.sources already holds original ids (frozen at setup).
            parts = [np.array([self.sources[g]], dtype=np.int64)]
            for layer_groups, layer_nodes in layers:
                parts.append(layer_nodes[layer_groups == g])
            sizes = np.array([p.size for p in parts], dtype=np.int64)
            offsets[g, 1:] = np.cumsum(sizes)
            pieces.append(np.concatenate(parts))
            group_offsets[g + 1] = group_offsets[g] + offsets[g, -1]
        nodes = (
            np.concatenate(pieces) if pieces
            else np.empty(0, dtype=np.int64)
        )
        if self._sources_arg is None:
            return {"nodes": nodes, "offsets": offsets[0]}
        return {
            "nodes": nodes,
            "offsets": offsets,
            "group_offsets": group_offsets,
        }

    # ------------------------------------------------------------------
    # Reordering hooks
    # ------------------------------------------------------------------

    def remap_nodes(self, perm: np.ndarray) -> None:
        assert self.graph is not None
        # Recorded layers hold original ids; only the cursors move.
        if self._cur_nodes is not None and self._cur_nodes.size:
            self._cur_nodes = perm[self._cur_nodes]
        n = self.graph.num_nodes
        if self._inv is None:
            self._inv = np.empty(n, dtype=np.int64)
            self._inv[perm] = np.arange(n, dtype=np.int64)
        else:
            updated = np.empty(n, dtype=np.int64)
            updated[perm] = self._inv
            self._inv = updated
