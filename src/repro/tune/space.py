"""The typed tuning space: every knob the auto-tuner may move.

A :class:`TuningPoint` is one full assignment of the joint configuration
space the paper's "self-adaptive" claim spans — Beamer push/pull
thresholds (:class:`~repro.core.hybrid.HybridConfig`), the tile
decomposition floor (``min_tile``), the micro-batching window/cap, the
cluster routing policy, the AIMD admission knobs and the stream-pipeline
knobs (in-flight window, stream count, prefetch depth).  A
:class:`TuningSpace` is the ordered set of per-knob candidate values the
search DAG expands over: axis order is the DAG's level order, so the
highest-leverage knobs come first and shallow searches still move them.

Everything here is pure data: points are hashable (they key the
evaluation cache and the tuned-profile files) and round-trip through
JSON losslessly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, fields
from typing import Any

import numpy as np

from repro.core.engine import SageScheduler
from repro.core.hybrid import DEFAULT_ALPHA, DEFAULT_BETA, HybridConfig
from repro.core.scheduler import Scheduler
from repro.core.tiling import DEFAULT_MIN_TILE
from repro.errors import InvalidParameterError
from repro.serve.admission import AdmissionConfig
from repro.serve.cluster import ROUTING_POLICIES
from repro.serve.pipelined import PipelineConfig


@dataclass(frozen=True)
class TuningPoint:
    """One full assignment of every tunable knob.

    Field defaults are exactly the hand-set constants the library ships
    with, so ``TuningPoint()`` *is* the default configuration and every
    speedup the tuner reports is measured against it.
    """

    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    min_tile: int = DEFAULT_MIN_TILE
    batch_window: float = 0.05
    max_batch_size: int = 64
    routing: str = "affinity"
    max_concurrency: int = 64
    backoff: float = 0.5
    recovery: float = 0.5
    in_flight: int = 1
    num_streams: int = 1
    prefetch_depth: int = 0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise InvalidParameterError("alpha and beta must be positive")
        if self.min_tile < 1 or self.min_tile & (self.min_tile - 1):
            raise InvalidParameterError("min_tile must be a power of two")
        if self.batch_window < 0:
            raise InvalidParameterError("batch_window must be >= 0")
        if self.max_batch_size < 1:
            raise InvalidParameterError("max_batch_size must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise InvalidParameterError(
                f"unknown routing policy {self.routing!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if self.max_concurrency < 1:
            raise InvalidParameterError("max_concurrency must be >= 1")
        if not 0.0 < self.backoff < 1.0:
            raise InvalidParameterError("backoff must be in (0, 1)")
        if self.recovery <= 0:
            raise InvalidParameterError("recovery must be > 0")
        # Delegates range checks for the pipeline knobs (>= 1 / >= 0).
        self.pipeline_config()

    def key(self) -> tuple[Any, ...]:
        """Canonical hashable identity (evaluation-cache key)."""
        return tuple(getattr(self, f.name) for f in fields(self))

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TuningPoint":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown tuning knobs {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))

    # ------------------------------------------------------------------
    # Projections onto the subsystems the knobs configure
    # ------------------------------------------------------------------

    def hybrid_config(self) -> HybridConfig:
        """The point's Beamer thresholds for direction-optimized BFS."""
        return HybridConfig(alpha=self.alpha, beta=self.beta)

    def admission_config(self) -> AdmissionConfig:
        """The point's AIMD admission knobs (rate limiting stays off)."""
        return AdmissionConfig(
            max_concurrency=self.max_concurrency,
            backoff=self.backoff,
            recovery=self.recovery,
        )

    def pipeline_config(self) -> PipelineConfig:
        """The point's stream-pipeline knobs (defaults = synchronous)."""
        return PipelineConfig(
            in_flight=self.in_flight,
            num_streams=self.num_streams,
            prefetch_depth=self.prefetch_depth,
        )

    def scheduler_factory(self) -> Callable[[], Scheduler]:
        """A fresh-SAGE-scheduler factory carrying the point's tile floor."""
        min_tile = self.min_tile

        def factory() -> Scheduler:
            return SageScheduler(min_tile=min_tile)

        return factory


#: The default candidate grid, ordered by expected leverage: batching
#: first (it moves the serving tier directly), then the stream-pipeline
#: window (it cuts device busy time directly), the per-kernel tile
#: floor, the Beamer thresholds, routing, the admission knobs, and
#: last the out-of-core prefetch depth (a no-op for in-core workloads).
DEFAULT_AXES: tuple[tuple[str, tuple[Any, ...]], ...] = (
    ("batch_window", (0.02, 0.05, 0.1, 0.2)),
    ("max_batch_size", (16, 64, 128)),
    ("in_flight", (1, 2, 4)),
    ("num_streams", (1, 2, 4)),
    ("min_tile", (4, 8, 16, 32)),
    ("alpha", (4.0, 8.0, 14.0, 24.0, 48.0)),
    ("beta", (8.0, 24.0, 64.0)),
    ("routing", ("round_robin", "least_outstanding", "affinity")),
    ("max_concurrency", (16, 64)),
    ("backoff", (0.25, 0.5)),
    ("recovery", (0.5, 2.0)),
    ("prefetch_depth", (0, 1, 2)),
)


class TuningSpace:
    """An ordered grid of candidate values per knob (the search DAG).

    ``axes`` maps knob name → candidate tuple; iteration order is the
    DAG's level order.  Every knob must be a :class:`TuningPoint` field
    and every candidate must validate, so any full assignment the search
    reaches is a constructible point.
    """

    def __init__(
        self,
        axes: Sequence[tuple[str, Sequence[Any]]] | None = None,
    ) -> None:
        axes = tuple(axes) if axes is not None else DEFAULT_AXES
        known = {f.name for f in fields(TuningPoint)}
        self.axes: tuple[tuple[str, tuple[Any, ...]], ...] = tuple(
            (name, tuple(values)) for name, values in axes
        )
        seen: set[str] = set()
        for name, values in self.axes:
            if name not in known:
                raise InvalidParameterError(
                    f"unknown tuning knob {name!r}; "
                    f"expected one of {sorted(known)}"
                )
            if name in seen:
                raise InvalidParameterError(f"duplicate axis {name!r}")
            if not values:
                raise InvalidParameterError(f"axis {name!r} has no candidates")
            seen.add(name)
        # Any combination must construct; validate each candidate alone.
        for name, values in self.axes:
            for value in values:
                TuningPoint(**{name: value})

    @property
    def num_axes(self) -> int:
        return len(self.axes)

    @property
    def size(self) -> int:
        """Number of full assignments in the grid."""
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def default_point(self) -> TuningPoint:
        return TuningPoint()

    def point(self, assignment: Mapping[str, Any]) -> TuningPoint:
        """A full point from a (possibly partial) axis assignment."""
        return TuningPoint(**dict(assignment))

    def sample(
        self, rng: np.random.Generator, partial: Mapping[str, Any] | None = None
    ) -> TuningPoint:
        """Complete ``partial`` by seeded uniform choice per free axis."""
        assignment = dict(partial or {})
        for name, values in self.axes:
            if name not in assignment:
                assignment[name] = values[int(rng.integers(len(values)))]
        return self.point(assignment)

    def to_list(self) -> list[list[Any]]:
        """JSON form: ``[[axis, [candidates...]], ...]``.

        A list of pairs, not a dict — axis order is the search DAG's
        level order and must survive key-sorting JSON serializers.
        """
        return [[name, list(values)] for name, values in self.axes]

    @classmethod
    def from_list(
        cls, data: Sequence[Sequence[Any]]
    ) -> "TuningSpace":
        return cls(tuple((name, tuple(values)) for name, values in data))

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any]]) -> "TuningSpace":
        return cls(tuple((name, tuple(values)) for name, values in data.items()))


DEFAULT_SPACE = TuningSpace()
