"""Seeded UCB/MCTS search over the tuning-space DAG.

The search tree mirrors the :class:`~repro.tune.space.TuningSpace` axis
order: a node at depth *d* is a partial assignment of the first *d*
axes, its children the candidates of axis *d*.  Each rollout descends
by UCB1 while every child has been visited, expands the first
unvisited child otherwise (candidate order — deterministic), completes
the remaining axes by seeded uniform sampling, scores the full point
through the cached :class:`~repro.tune.evaluator.CostModelEvaluator`,
and backpropagates the reward (speedup over the default, zeroed for
infeasible points, clipped to tame outliers).

Everything that moves is seeded — candidate order, the numpy
``default_rng`` rollout tail, and deterministic argmax tie-breaks — so
equal ``(space, workload, budget, seed)`` inputs reproduce the same
trace and the same best point bit-for-bit on any machine.  The CI
`tune` job leans on exactly that property.

The default point is evaluated before the first rollout and competes
for *best* on equal terms, so tuning can never return a configuration
worse than the shipped defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.tune.evaluator import CostModelEvaluator, Evaluation
from repro.tune.space import TuningPoint, TuningSpace

#: UCB1 exploration constant.  Smaller than the classic sqrt(2): the
#: reward spread between configurations is a few tenths, so the bandit
#: must exploit early within small CI budgets.
DEFAULT_EXPLORATION = 0.5

#: Probability that a rollout tail keeps an axis at its default value
#: instead of sampling uniformly.  Biasing tails toward the shipped
#: defaults isolates the expanded axis's effect (coordinate-descent
#: flavor) while still exploring joint interactions.
DEFAULT_TAIL_BIAS = 0.5

#: Rewards are clipped here so one freak outlier cannot dominate UCB.
MAX_REWARD = 4.0


@dataclass
class _Node:
    """One search-DAG node: a prefix assignment of the axis order."""

    visits: int = 0
    total_reward: float = 0.0
    children: dict[Any, "_Node"] = field(default_factory=dict)

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one tuner search (all costs in simulated seconds)."""

    best: Evaluation
    default: Evaluation
    rollouts: int
    evaluations: int
    trace: tuple[dict[str, Any], ...]

    @property
    def speedup(self) -> float:
        if self.best.cost_seconds <= 0:
            return 1.0
        return self.default.cost_seconds / self.best.cost_seconds


def search(
    space: TuningSpace,
    evaluator: CostModelEvaluator,
    *,
    budget: int = 32,
    seed: int = 0,
    exploration: float = DEFAULT_EXPLORATION,
    metrics: MetricsRegistry | None = None,
) -> SearchResult:
    """Run ``budget`` seeded UCB rollouts and return the best point."""
    if budget < 1:
        raise InvalidParameterError("budget must be >= 1")
    if exploration < 0:
        raise InvalidParameterError("exploration must be >= 0")
    metrics = metrics if metrics is not None else NULL_REGISTRY
    rng = np.random.default_rng(seed)
    root = _Node()
    trace: list[dict[str, Any]] = []

    with metrics.span("tune.search", workload=evaluator.workload.name):
        default = evaluator.default()
        best = default
        for rollout in range(budget):
            metrics.count("tune.rollouts")
            point, path = _select(space, root, rng, exploration)
            evaluation = evaluator.evaluate(point)
            reward = _reward(default, evaluation)
            for node in path:
                node.visits += 1
                node.total_reward += reward
            if _better(evaluation, best):
                best = evaluation
            trace.append(
                {
                    "rollout": rollout,
                    "point": point.to_dict(),
                    "cost_seconds": evaluation.cost_seconds,
                    "latency_p95": evaluation.latency_p95,
                    "feasible": evaluation.feasible,
                    "reward": reward,
                    "best_cost_seconds": best.cost_seconds,
                }
            )
        metrics.set_gauge(
            "tune.best_speedup",
            default.cost_seconds / best.cost_seconds
            if best.cost_seconds > 0
            else 1.0,
        )
        metrics.count("tune.searches")
    return SearchResult(
        best=best,
        default=default,
        rollouts=budget,
        evaluations=evaluator.evaluations,
        trace=tuple(trace),
    )


def _select(
    space: TuningSpace,
    root: _Node,
    rng: np.random.Generator,
    exploration: float,
) -> tuple[TuningPoint, list[_Node]]:
    """One tree descent: UCB while saturated, expand once, sample tail."""
    assignment: dict[str, Any] = {}
    path = [root]
    node = root
    defaults = TuningPoint()
    for depth, (name, values) in enumerate(space.axes):
        unvisited = [v for v in values if v not in node.children]
        if unvisited:
            value = unvisited[0]
            child = _Node()
            node.children[value] = child
            assignment[name] = value
            path.append(child)
            # Expansion stops the walk.  Root expansions anchor the
            # tail to pure defaults — a deterministic single-axis probe
            # of each first-level arm, so one noisy tail can never bury
            # a good arm before it is ever tried cleanly.  Deeper
            # expansions sample a seeded tail biased toward defaults.
            anchored = depth == 0
            for tail_name, tail_values in space.axes[depth + 1:]:
                default_value = getattr(defaults, tail_name)
                if anchored:
                    assignment[tail_name] = default_value
                elif rng.random() < DEFAULT_TAIL_BIAS and (
                    default_value in tail_values
                ):
                    assignment[tail_name] = default_value
                else:
                    assignment[tail_name] = tail_values[
                        int(rng.integers(len(tail_values)))
                    ]
            return space.point(assignment), path
        value = _ucb_argmax(node, values, exploration)
        child = node.children[value]
        assignment[name] = value
        path.append(child)
        node = child
    return space.point(assignment), path


def _ucb_argmax(node: _Node, values: tuple, exploration: float) -> Any:
    """Highest-UCB child; ties break on candidate order (deterministic)."""
    log_parent = math.log(max(1, node.visits))
    best_value = values[0]
    best_score = -math.inf
    for value in values:
        child = node.children[value]
        score = child.mean_reward + exploration * math.sqrt(
            log_parent / child.visits
        )
        if score > best_score:
            best_score = score
            best_value = value
    return best_value


def _reward(default: Evaluation, evaluation: Evaluation) -> float:
    """Clipped speedup over default; infeasible points keep a damped
    fraction of it so one bad tail cannot zero out a whole arm."""
    if evaluation.cost_seconds <= 0:
        return 0.0
    speedup = min(MAX_REWARD, default.cost_seconds / evaluation.cost_seconds)
    if not evaluation.feasible:
        return min(0.75, 0.25 * speedup)
    return speedup


def _better(candidate: Evaluation, incumbent: Evaluation) -> bool:
    """Strictly lower feasible cost wins (ties keep the incumbent)."""
    if not candidate.feasible:
        return False
    if not incumbent.feasible:
        return True
    return candidate.cost_seconds < incumbent.cost_seconds
