"""Deterministic cost-model evaluation of tuning points.

The evaluator is the tuner's objective function.  One evaluation replays
two legs of the deterministic simulator with the point's knobs plugged
in:

* **serving leg** — :func:`~repro.serve.cluster.simulate_cluster_open_loop`
  over the workload's seeded query trace, with the point's batching
  window/cap, routing policy, admission knobs and stream-pipeline
  knobs.  The result cache is disabled so the measured cost reflects
  the knobs, not cache luck.
* **kernel leg** — :func:`~repro.core.hybrid.direction_optimized_bfs`
  from the workload's fixed roots, with the point's Beamer thresholds
  and tile floor.

Cost is the total simulated *device* seconds of both legs (the
cluster's summed replica device time plus the hybrid runs) — not
wall-clock, so equal inputs give byte-equal costs on any machine.
When the point's pipeline knobs are on, the serving leg's device time
is the stream devices' *busy* time (the union of intervals where any
node occupies the device), not the serial sum — overlap that genuinely
shares the device gets rewarded, and because pipelined responses are
bit-identical to the synchronous executor's, the tuner can never buy
that reward with changed results.  Device seconds reward exactly what
the knobs control: wider batch windows coalesce more queries per
kernel, better thresholds and tile floors shrink each kernel, deeper
in-flight windows overlap batches.  The counterweight is the feasibility
guard: a point is **feasible** only if every response is OK and its
p95 latency stays within ``slo_factor`` of the default point's p95,
so the tuner may not buy device time by shedding queries or blowing
the latency budget arbitrarily.

Evaluations are cached by point identity; the search revisits nodes
freely and pays for each distinct configuration once.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.core.hybrid import direction_optimized_bfs
from repro.serve.cluster import simulate_cluster_open_loop
from repro.serve.request import QueryStatus
from repro.tune.space import TuningPoint
from repro.tune.workloads import TuningWorkload


@dataclass(frozen=True)
class Evaluation:
    """Deterministic outcome of scoring one point on one workload."""

    point: TuningPoint
    #: Serving-leg device seconds: stream-device busy time when the
    #: point pipelines, summed replica device time otherwise.
    cluster_seconds: float
    hybrid_seconds: float
    latency_p95: float
    all_ok: bool
    feasible: bool

    @property
    def cost_seconds(self) -> float:
        return self.cluster_seconds + self.hybrid_seconds

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        data["point"] = self.point.to_dict()
        data["cost_seconds"] = self.cost_seconds
        return data


class CostModelEvaluator:
    """Scores :class:`TuningPoint`s against one workload, with caching.

    The default point is always evaluated first (it anchors the SLO
    feasibility bound), so ``evaluations`` counts the default too.
    """

    def __init__(
        self,
        workload: TuningWorkload,
        *,
        num_replicas: int = 2,
        slo_factor: float = 2.5,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.workload = workload
        self.num_replicas = num_replicas
        self.slo_factor = slo_factor
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.graph = workload.build_graph()
        self.requests = workload.build_queries(self.graph)
        self.arrivals = workload.build_arrivals()
        self._cache: dict[tuple, Evaluation] = {}
        self._default_p95: float | None = None

    @property
    def evaluations(self) -> int:
        """Distinct points scored so far (cache misses)."""
        return len(self._cache)

    def default(self) -> Evaluation:
        return self.evaluate(TuningPoint())

    def evaluate(self, point: TuningPoint) -> Evaluation:
        key = point.key()
        hit = self._cache.get(key)
        if hit is not None:
            self.metrics.count("tune.eval_cache_hits")
            return hit
        if self._default_p95 is None and key != TuningPoint().key():
            # Anchor the SLO bound before scoring any non-default point.
            self.default()
        evaluation = self._score(point)
        self._cache[key] = evaluation
        self.metrics.count("tune.evaluations")
        return evaluation

    def _score(self, point: TuningPoint) -> Evaluation:
        responses, report = simulate_cluster_open_loop(
            {self.workload.name: self.graph},
            self.requests,
            self.arrivals,
            point.scheduler_factory(),
            num_replicas=self.num_replicas,
            routing=point.routing,
            batch_window=point.batch_window,
            max_batch_size=point.max_batch_size,
            cache_capacity=0,
            admission=point.admission_config(),
            pipeline=point.pipeline_config(),
        )
        all_ok = all(r.status is QueryStatus.OK for r in responses)
        hybrid_seconds = 0.0
        for source in self.workload.hybrid_sources:
            result, _ = direction_optimized_bfs(
                self.graph,
                point.scheduler_factory(),
                source,
                config=point.hybrid_config(),
            )
            hybrid_seconds += result.seconds
        if self._default_p95 is None:
            # This is the default point itself: it anchors the bound.
            self._default_p95 = report.latency_p95
        feasible = all_ok and (
            report.latency_p95 <= self.slo_factor * self._default_p95
        )
        cluster_seconds = (
            report.pipeline_busy_seconds
            if report.pipeline_enabled
            else report.sim_seconds_total
        )
        return Evaluation(
            point=point,
            cluster_seconds=cluster_seconds,
            hybrid_seconds=hybrid_seconds,
            latency_p95=report.latency_p95,
            all_ok=all_ok,
            feasible=feasible,
        )
