"""Self-tuning: cost-model-driven search over the traversal knob space.

The paper's self-adaptivity picks strategy *per iteration*; this
package closes the remaining loop by picking the *configuration* per
workload — Beamer thresholds, tile floor, batching, routing and
admission — with a seeded UCB/MCTS search scored entirely by the
deterministic simulator.  Results persist as canonical-JSON
:class:`~repro.tune.profiles.TunedProfile` files that
``api.serve``/``api.cluster`` auto-load by graph fingerprint, and the
whole pipeline is bit-reproducible, so CI regenerates and diffs the
committed profiles on every push.
"""

from __future__ import annotations

from repro.obs import MetricsRegistry
from repro.serve.cache import graph_fingerprint
from repro.tune.evaluator import CostModelEvaluator, Evaluation
from repro.tune.profiles import (
    ProfileStore,
    TunedProfile,
    default_profile_dir,
)
from repro.tune.search import SearchResult, search
from repro.tune.space import DEFAULT_SPACE, TuningPoint, TuningSpace
from repro.tune.workloads import (
    BENCH_WORKLOADS,
    SAMPLING_WORKLOADS,
    TuningWorkload,
    get_workload,
)

__all__ = [
    "BENCH_WORKLOADS",
    "DEFAULT_SPACE",
    "SAMPLING_WORKLOADS",
    "CostModelEvaluator",
    "Evaluation",
    "ProfileStore",
    "SearchResult",
    "TunedProfile",
    "TuningPoint",
    "TuningSpace",
    "TuningWorkload",
    "default_profile_dir",
    "get_workload",
    "search",
    "tune_workload",
]


def tune_workload(
    workload: TuningWorkload | str,
    *,
    budget: int = 32,
    seed: int = 0,
    space: TuningSpace | None = None,
    num_replicas: int = 2,
    slo_factor: float = 2.0,
    metrics: MetricsRegistry | None = None,
) -> tuple[TunedProfile, SearchResult]:
    """Search one workload and package the outcome as a profile.

    The returned profile embeds the workload name, seed, budget and
    space, so ``tune_workload(profile.workload, budget=profile.budget,
    seed=profile.seed, space=profile.space)`` regenerates it exactly —
    the contract the CI verification job checks byte-for-byte.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    space = space if space is not None else DEFAULT_SPACE
    evaluator = CostModelEvaluator(
        workload,
        num_replicas=num_replicas,
        slo_factor=slo_factor,
        metrics=metrics,
    )
    result = search(
        space, evaluator, budget=budget, seed=seed, metrics=metrics
    )
    profile = TunedProfile(
        graph_fingerprint=graph_fingerprint(evaluator.graph),
        apps=tuple(sorted(workload.mix)),
        workload=workload.name,
        category=workload.category,
        point=result.best.point,
        default_cost_seconds=result.default.cost_seconds,
        tuned_cost_seconds=result.best.cost_seconds,
        seed=seed,
        budget=budget,
        evaluations=result.evaluations,
        space=space,
    )
    return profile, result
