"""Tuned-profile persistence: JSON records of what the tuner found.

A :class:`TunedProfile` captures one search outcome — the winning
:class:`~repro.tune.space.TuningPoint`, the default/tuned costs, and
everything needed to *regenerate* the search (workload name, seed,
budget, the exact space) — keyed on the graph's content fingerprint,
the apps of the traffic mix, and the workload class.

Serialization is **canonical**: sorted keys, two-space indent, a
trailing newline, and no wall-clock fields anywhere.  Rerunning the
tuner with equal inputs therefore reproduces the committed file
byte-for-byte, which is exactly what the CI `tune` job asserts.

Profiles invalidate themselves on graph change: the fingerprint is a
content hash of the CSR, so a dynamic-graph epoch bump (or any edit to
a generator) changes the fingerprint and :meth:`ProfileStore.find`
simply stops matching — stale tuning can never be applied to a graph
it was not measured on.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any

from repro.errors import InvalidParameterError
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.tune.space import TuningPoint, TuningSpace

SCHEMA_VERSION = 1

#: Profiles live here unless overridden (env var or explicit root).
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"
DEFAULT_PROFILE_DIR = "profiles"


@dataclass(frozen=True)
class TunedProfile:
    """One persisted tuning outcome (see module docstring for keying)."""

    graph_fingerprint: str
    apps: tuple[str, ...]
    workload: str
    category: str
    point: TuningPoint
    default_cost_seconds: float
    tuned_cost_seconds: float
    seed: int
    budget: int
    evaluations: int
    space: TuningSpace
    schema_version: int = SCHEMA_VERSION

    @property
    def speedup(self) -> float:
        if self.tuned_cost_seconds <= 0:
            return 1.0
        return self.default_cost_seconds / self.tuned_cost_seconds

    def matches(self, fingerprint: str, app: str | None = None) -> bool:
        """Does this profile apply to (graph, app)?  Exact-key semantics."""
        if fingerprint != self.graph_fingerprint:
            return False
        return app is None or app in self.apps

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "graph_fingerprint": self.graph_fingerprint,
            "apps": list(self.apps),
            "workload": self.workload,
            "category": self.category,
            "point": self.point.to_dict(),
            "default_cost_seconds": self.default_cost_seconds,
            "tuned_cost_seconds": self.tuned_cost_seconds,
            "speedup": self.speedup,
            "seed": self.seed,
            "budget": self.budget,
            "evaluations": self.evaluations,
            "space": self.space.to_list(),
        }

    def canonical_json(self) -> str:
        """The byte-stable serialization the CI job diffs against."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TunedProfile":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise InvalidParameterError(
                f"unsupported profile schema_version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            graph_fingerprint=str(data["graph_fingerprint"]),
            apps=tuple(data["apps"]),
            workload=str(data["workload"]),
            category=str(data["category"]),
            point=TuningPoint.from_dict(data["point"]),
            default_cost_seconds=float(data["default_cost_seconds"]),
            tuned_cost_seconds=float(data["tuned_cost_seconds"]),
            seed=int(data["seed"]),
            budget=int(data["budget"]),
            evaluations=int(data["evaluations"]),
            space=TuningSpace.from_list(data["space"]),
        )


def default_profile_dir() -> pathlib.Path:
    return pathlib.Path(os.environ.get(PROFILE_DIR_ENV, DEFAULT_PROFILE_DIR))


class ProfileStore:
    """Loads and saves tuned profiles under one directory.

    Filenames are ``<workload>.json`` — one committed profile per
    tuning workload; the content key (fingerprint + apps) decides
    whether a profile applies at load time.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.root = (
            pathlib.Path(root) if root is not None else default_profile_dir()
        )
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    def path_for(self, workload: str) -> pathlib.Path:
        return self.root / f"{workload}.json"

    def save(self, profile: TunedProfile) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(profile.workload)
        path.write_text(profile.canonical_json(), encoding="utf-8")
        self.metrics.count("tune.profiles_saved")
        return path

    def load(self, path: str | pathlib.Path) -> TunedProfile:
        text = pathlib.Path(path).read_text(encoding="utf-8")
        profile = TunedProfile.from_dict(json.loads(text))
        self.metrics.count("tune.profiles_loaded")
        return profile

    def list(self) -> list[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def find(
        self, fingerprint: str, app: str | None = None
    ) -> TunedProfile | None:
        """The first committed profile matching (graph, app), if any.

        Unreadable or foreign JSON files in the directory are skipped —
        a corrupt profile must never break serving, which falls back to
        defaults.
        """
        for path in self.list():
            try:
                profile = self.load(path)
            except (OSError, ValueError, KeyError, InvalidParameterError):
                self.metrics.count("tune.profiles_skipped")
                continue
            if profile.matches(fingerprint, app):
                self.metrics.count("tune.profile_matches")
                return profile
        return None
