"""Named tuning workloads: the (graph, traffic) pairs the tuner optimizes.

A :class:`TuningWorkload` bundles everything the evaluator needs to
replay a deterministic serving trace: a seeded graph, a seeded query
mix with Poisson arrivals, and a handful of BFS roots for the hybrid
direction-optimization leg of the cost.  The two built-in workloads
cover the bench's two graph *categories* — a scale-free R-MAT (skewed
degrees, shallow BFS) and a road/mesh-like 2-D grid (uniform low
degree, deep BFS) — scaled so a small-budget CI search finishes in
seconds while still separating good configurations from bad ones.

Workloads are identified by name inside tuned-profile files, so a
profile records *which* traffic it was tuned for and the CI `tune` job
can regenerate it from the name alone.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_2d, rmat
from repro.serve.loadgen import generate_queries, open_loop_arrivals
from repro.serve.request import QueryRequest


@dataclass(frozen=True)
class TuningWorkload:
    """One reproducible (graph, traffic) pair.

    ``graph_factory`` must be deterministic: the evaluator and the
    profile-verification CI job both rebuild the graph from it and rely
    on identical fingerprints.
    """

    name: str
    category: str
    graph_factory: Callable[[], CSRGraph]
    num_queries: int = 48
    rate_qps: float = 400.0
    seed: int = 0
    hybrid_sources: tuple[int, ...] = (0, 1, 2)
    mix: dict[str, float] = field(
        default_factory=lambda: {"bfs": 0.7, "pr": 0.1, "sssp": 0.2}
    )

    def build_graph(self) -> CSRGraph:
        return self.graph_factory()

    def build_queries(self, graph: CSRGraph) -> list[QueryRequest]:
        return generate_queries(
            self.name,
            graph.num_nodes,
            self.num_queries,
            mix=self.mix,
            seed=self.seed,
        )

    def build_arrivals(self) -> np.ndarray:
        return open_loop_arrivals(
            self.num_queries, self.rate_qps, seed=self.seed
        )


def _rmat_small() -> CSRGraph:
    # Scale-free category stand-in: 1024 nodes, ~8k edges, heavy-tailed.
    return rmat(10, edge_factor=8, seed=1234)


def _road_small() -> CSRGraph:
    # Road/mesh category stand-in: 1600 nodes, uniform degree <= 4.
    return grid_2d(40, 40)


#: The workloads the committed profiles and the bench tier tune over.
BENCH_WORKLOADS: tuple[TuningWorkload, ...] = (
    TuningWorkload(
        name="rmat_small",
        category="rmat",
        graph_factory=_rmat_small,
        hybrid_sources=(0, 7, 42),
    ),
    TuningWorkload(
        name="road_small",
        category="road",
        graph_factory=_road_small,
        hybrid_sources=(0, 820, 1599),
    ),
)


def _rmat_sampling() -> CSRGraph:
    # Sampling-traffic stand-in: small scale-free graph; walk frontiers
    # stay wide enough to exercise coalescing without slowing CI tuning.
    return rmat(9, edge_factor=8, seed=77)


#: Sampling-traffic workloads (GNN/embedding service traffic).  Kept out
#: of :data:`BENCH_WORKLOADS` deliberately: the committed-profile CI
#: check pins one profile per bench workload, and the sampling tier is
#: gated by the trajectory benchmark instead of a committed profile.
SAMPLING_WORKLOADS: tuple[TuningWorkload, ...] = (
    TuningWorkload(
        name="sampling_small",
        category="sampling",
        graph_factory=_rmat_sampling,
        hybrid_sources=(0, 5, 19),
        mix={"walk": 0.5, "node2vec": 0.2, "khop": 0.2, "sppr": 0.1},
    ),
)


def get_workload(name: str) -> TuningWorkload:
    for workload in BENCH_WORKLOADS + SAMPLING_WORKLOADS:
        if workload.name == name:
            return workload
    known = [w.name for w in BENCH_WORKLOADS + SAMPLING_WORKLOADS]
    raise InvalidParameterError(
        f"unknown tuning workload {name!r}; expected one of {known}"
    )
