"""Experiment harness: drivers for every paper table and figure."""

from repro.bench.harness import (
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    run_once,
    table1_rows,
    table2_rows,
    table3_rows,
    wall_time,
)
from repro.bench.plots import format_bars
from repro.bench.reporting import format_table
from repro.bench.rounds import ReorderRounds, sage_reorder_rounds
from repro.bench.session import SessionTrace, crossover_query, run_query_session
from repro.bench.workloads import (
    APP_NAMES,
    app_factory,
    needs_source,
    pick_sources,
)

__all__ = [
    "APP_NAMES",
    "ReorderRounds",
    "SessionTrace",
    "app_factory",
    "crossover_query",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_rows",
    "fig10_rows",
    "format_bars",
    "format_table",
    "needs_source",
    "pick_sources",
    "run_once",
    "run_query_session",
    "sage_reorder_rounds",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "wall_time",
]
