"""Terminal bar charts for experiment rows.

The paper's figures are grouped bar charts; the benchmark harness prints
tables for machines and these horizontal ASCII bars for humans.  Pure
text, no plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import InvalidParameterError

BAR_CHAR = "#"


def format_bars(
    rows: Sequence[dict[str, object]],
    label_key: str,
    value_keys: Sequence[str],
    *,
    width: int = 48,
    title: str = "",
) -> str:
    """Render grouped horizontal bars, one group per row.

    Args:
        rows: uniform dict rows (as produced by the harness).
        label_key: column naming each group (e.g. ``"dataset"``).
        value_keys: numeric columns to draw, one bar each per group.
        width: character width of the longest bar.
        title: optional heading.

    Returns:
        The chart as a multi-line string; all bars share one scale.
    """
    if width < 1:
        raise InvalidParameterError("width must be >= 1")
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    missing = [k for k in [label_key, *value_keys] if k not in rows[0]]
    if missing:
        raise InvalidParameterError(f"rows lack columns: {missing}")

    values = {
        (i, key): float(row[key])  # type: ignore[arg-type]
        for i, row in enumerate(rows)
        for key in value_keys
    }
    peak = max(values.values(), default=0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(row[label_key])) for row in rows)
    series_width = max(len(k) for k in value_keys)

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for i, row in enumerate(rows):
        group = str(row[label_key])
        for j, key in enumerate(value_keys):
            value = values[(i, key)]
            bar = BAR_CHAR * max(1 if value > 0 else 0,
                                 round(width * value / peak))
            prefix = group if j == 0 else ""
            lines.append(
                f"{prefix:<{label_width}}  {key:<{series_width}} "
                f"|{bar:<{width}}| {value:g}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
