"""Run every experiment without pytest: ``python -m repro.bench.run_all``.

Executes each table/figure driver (and optionally a reduced extension
set), writes the result tables under ``benchmarks/results/`` and
regenerates EXPERIMENTS.md — the one-command reproduction entry point
for users who do not want the pytest/benchmark tooling.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.bench.experiments_md import generate
from repro.bench.harness import (
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.bench.reporting import format_table

EXPERIMENTS: list[tuple[str, str, object]] = [
    ("table1", "Table 1 — dataset statistics (synthetic stand-ins)",
     lambda scale: table1_rows(scale)),
    ("table2", "Table 2 — reordering time consumption (seconds)",
     lambda scale: table2_rows(scale, sage_rounds=3)),
    ("table3", "Table 3 — Tiled Partitioning overhead (ms and % of runtime)",
     lambda scale: table3_rows(scale, num_sources=3)),
    ("fig6", "Figure 6 — traversal GTEPS under orderings "
             "(sage_k = after k reorder rounds)",
     lambda scale: fig6_rows(scale, num_sources=2)),
    ("fig7", "Figure 7 — GTEPS, PGP approaches with/without Gorder",
     lambda scale: fig7_rows(scale, num_sources=2)),
    ("fig8", "Figure 8 — out-of-core BFS GTEPS (device = 25% of graph)",
     lambda scale: fig8_rows(scale, num_sources=3)),
    ("fig9", "Figure 9 — multi-GPU BFS GTEPS",
     lambda scale: fig9_rows(scale, num_sources=3)),
    ("fig10", "Figure 10 — ablation GTEPS (features applied incrementally)",
     lambda scale: fig10_rows(scale, num_sources=2, reorder_rounds=10)),
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale (1.0 = benchmark default)")
    parser.add_argument("--only", nargs="*", default=None,
                        metavar="EXP",
                        help="subset of experiment names (e.g. fig6 fig10)")
    parser.add_argument("--results", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/results"))
    parser.add_argument("--experiments-md", type=pathlib.Path,
                        default=pathlib.Path("EXPERIMENTS.md"))
    args = parser.parse_args(argv)

    args.results.mkdir(parents=True, exist_ok=True)
    wanted = set(args.only) if args.only else None
    for name, title, fn in EXPERIMENTS:
        if wanted is not None and name not in wanted:
            continue
        started = time.perf_counter()
        rows = fn(args.scale)
        elapsed = time.perf_counter() - started
        text = format_table(rows, title)
        (args.results / f"{name}.txt").write_text(text + "\n",
                                                  encoding="utf-8")
        print(text)
        print(f"[{name} regenerated in {elapsed:.1f} s]\n")

    args.experiments_md.write_text(generate(args.results), encoding="utf-8")
    print(f"wrote {args.experiments_md}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
