"""Query-session experiments: the cost of preprocessing, end to end.

The paper's core pitch (Section 1) is not a single-kernel speedup but a
*deployment* property: SAGE answers queries the moment the CSR is loaded
("without any launching latency"), while dedicated systems pay minutes
to hours of preprocessing before the first result — and pay it again
after every graph update.  This module measures that directly: a
*session* issues a stream of BFS queries and records the cumulative
wall-clock + simulated time at which each answer becomes available.

Three system profiles:

* ``sage``            — no preprocessing; optionally a few sampling
  rounds interleaved with the first queries (self-adaptive).
* ``gorder+gunrock``  — full Gorder preprocessing up front, then fast
  queries on the reordered graph.
* ``tigr``            — UDT transform up front (cheap), then Tigr
  traversal.

The interesting output is the crossover: after how many queries does the
preprocessing investment pay off?  (The paper's answer: for realistic
workloads measured in hours, often never — "most real-world graph
analysis can be processed in a few hours", Section 1.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps import BFSApp
from repro.baselines import GunrockScheduler, TigrScheduler
from repro.bench.rounds import sage_reorder_rounds
from repro.bench.workloads import pick_sources
from repro.core import SageScheduler, run_app
from repro.graph.csr import CSRGraph
from repro.reorder import gorder_order, timed_ordering


@dataclass
class SessionTrace:
    """Per-query completion times of one system profile."""

    system: str
    setup_seconds: float
    query_seconds: list[float] = field(default_factory=list)

    @property
    def completion_times(self) -> np.ndarray:
        """Cumulative time at which query ``i``'s answer is ready."""
        return self.setup_seconds + np.cumsum(self.query_seconds)

    @property
    def total_seconds(self) -> float:
        return float(self.setup_seconds + sum(self.query_seconds))

    def queries_done_by(self, deadline_seconds: float) -> int:
        """How many answers are available after ``deadline_seconds``."""
        return int((self.completion_times <= deadline_seconds).sum())


def run_query_session(
    graph: CSRGraph,
    num_queries: int,
    *,
    seed: int = 0,
    sage_adapt_rounds: int = 3,
) -> dict[str, SessionTrace]:
    """Run the same BFS query stream under the three system profiles.

    Query cost is *simulated* device time; preprocessing cost is real
    wall-clock of this library's implementations (both reported in
    seconds, which favours the preprocessing systems — a real GPU would
    shrink only the query side).
    """
    sources = pick_sources(graph, num_queries, seed=seed)

    # --- SAGE: answer immediately; adapt after the first few queries ---
    sage = SessionTrace("sage", setup_seconds=0.0)
    current = graph
    adapted = False
    for index, source in enumerate(sources):
        result = run_app(current, BFSApp(), SageScheduler(),
                         source=int(source))
        query_cost = result.seconds
        if not adapted and index + 1 >= min(3, num_queries):
            rounds = sage_reorder_rounds(
                current, sage_adapt_rounds, checkpoints=(sage_adapt_rounds,)
            )
            current = rounds.snapshots[sage_adapt_rounds]
            query_cost += sum(rounds.per_round_seconds)
            adapted = True
        sage.query_seconds.append(query_cost)

    # --- Gorder + Gunrock: preprocess first, then query ----------------
    timed = timed_ordering("gorder", gorder_order, graph)
    reordered = graph.permute(timed.perm)
    gorder = SessionTrace("gorder+gunrock", setup_seconds=timed.seconds)
    r_sources = pick_sources(reordered, num_queries, seed=seed)
    for source in r_sources:
        result = run_app(reordered, BFSApp(), GunrockScheduler(),
                         source=int(source))
        gorder.query_seconds.append(result.seconds)

    # --- Tigr: UDT transform, then query --------------------------------
    scheduler = TigrScheduler()
    scheduler.reset(graph)
    assert scheduler.transform is not None
    tigr = SessionTrace("tigr", setup_seconds=scheduler.transform.build_seconds)
    for source in sources:
        result = run_app(graph, BFSApp(), TigrScheduler(),
                         source=int(source))
        tigr.query_seconds.append(result.seconds)

    return {"sage": sage, "gorder+gunrock": gorder, "tigr": tigr}


def crossover_query(
    fast_start: SessionTrace, fast_steady: SessionTrace
) -> int | None:
    """First query index at which ``fast_steady`` catches ``fast_start``.

    Returns None if it never catches up within the session.
    """
    a = fast_start.completion_times
    b = fast_steady.completion_times
    ahead = np.flatnonzero(b < a)
    return int(ahead[0]) if ahead.size else None
