"""Round-by-round driver for Sampling-based Reordering.

Figure 6 and Table 2 need SAGE's reordering applied for a controlled
number of rounds with the per-round cost measured.  One *round* samples
tile accesses worth ``|E|`` responded edges (the paper's threshold) and
commits one permutation; the driver uses a full-graph sweep per round —
the access pattern of a PR iteration and a superset of any frontier
workload — so every adjacency list contributes samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.reorder import SamplingReorderer
from repro.core.tiling import DEFAULT_MIN_TILE, decompose_frontier
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.gpusim.spec import GPUSpec


@dataclass
class ReorderRounds:
    """Outcome of a multi-round reordering session.

    Attributes:
        snapshots: graphs after each requested checkpoint round, keyed by
            round number (1-based; round ``r`` means ``r`` commits).
        perms: cumulative permutation (original -> current ids) at each
            checkpoint.
        per_round_seconds: wall-clock cost of each round (Table 2's
            "SAGE per round").
    """

    snapshots: dict[int, CSRGraph] = field(default_factory=dict)
    perms: dict[int, np.ndarray] = field(default_factory=dict)
    per_round_seconds: list[float] = field(default_factory=list)

    @property
    def mean_round_seconds(self) -> float:
        if not self.per_round_seconds:
            return 0.0
        return float(np.mean(self.per_round_seconds))


def sage_reorder_rounds(
    graph: CSRGraph,
    rounds: int,
    *,
    spec: GPUSpec | None = None,
    checkpoints: tuple[int, ...] | None = None,
    min_tile: int = DEFAULT_MIN_TILE,
    seed: int = 0,
) -> ReorderRounds:
    """Run ``rounds`` reordering rounds, snapshotting at ``checkpoints``.

    Args:
        graph: starting graph (left unmodified; rounds work on copies).
        rounds: number of sample-and-commit rounds.
        spec: hardware description (sector width, block size).
        checkpoints: round numbers to snapshot; defaults to every round
            for small counts, else (1, 5, ...) growing geometrically.
        min_tile: SAGE's MIN_TILE_SIZE.
        seed: sampling seed.
    """
    if rounds < 1:
        raise InvalidParameterError("rounds must be >= 1")
    spec = spec or GPUSpec()
    if checkpoints is None:
        checkpoints = tuple(r for r in (1, 2, 5, 10, 20, 50, 100) if r <= rounds)
        if rounds not in checkpoints:
            checkpoints = checkpoints + (rounds,)
    wanted = set(checkpoints)

    reorderer = SamplingReorderer(
        graph.num_nodes, spec,
        threshold_edges=graph.num_edges, seed=seed,
    )
    current = graph
    total_perm = np.arange(graph.num_nodes, dtype=np.int64)
    out = ReorderRounds()
    for round_no in range(1, rounds + 1):
        started = time.perf_counter()
        degrees = current.out_degrees()
        decomp = decompose_frontier(degrees, spec.block_size, min_tile)
        cum_deg = np.cumsum(degrees) - degrees
        seg_starts = decomp.segment_starts(cum_deg)
        # Full sweep in id order: the expanded edge array is `targets`.
        reorderer.observe(current.targets, seg_starts)
        outcome = reorderer.compute_round()
        if not outcome.is_identity:
            current = current.permute(outcome.perm)
            total_perm = outcome.perm[total_perm]
        out.per_round_seconds.append(time.perf_counter() - started)
        if round_no in wanted:
            out.snapshots[round_no] = current
            out.perms[round_no] = total_perm.copy()
    return out
