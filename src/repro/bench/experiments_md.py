"""EXPERIMENTS.md generator.

Collates the result tables written by ``pytest benchmarks/`` under
``benchmarks/results/`` into a single markdown report that records, for
every table and figure of the paper, what the paper observed and what
this reproduction measured.  Regenerate with::

    python -m repro.bench.experiments_md [--results DIR] [--out FILE]

The per-experiment commentary is fixed (it states the paper's claims and
which of them the benchmark suite asserts); the numbers are whatever the
latest benchmark run produced.
"""

from __future__ import annotations

import argparse
import pathlib

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of
*Self-adaptive Graph Traversal on GPUs* (SIGMOD 2021).  All timings are
**simulated** (see DESIGN.md §5 for the cost model); the reproduction
target is the *shape* of each comparison — who wins, by roughly what
factor, where the crossovers fall — not the absolute numbers from the
authors' RTX 8000 testbed.  Every "holds?" claim below is asserted by the
corresponding module under `benchmarks/`; regenerate the numbers with::

    pytest benchmarks/ --benchmark-only -s
    python -m repro.bench.experiments_md
"""

#: (results-file stem, section title, paper expectation, what we assert)
SECTIONS: list[tuple[str, str, str, str]] = [
    (
        "table1",
        "Table 1 — dataset statistics",
        "Five graphs spanning web (uk-2002), biology (brain, avg degree "
        "683, near-uniform) and social networks (ljournal / twitter / "
        "friendster, power-law; twitter has super-hubs with multi-million "
        "out-degree).",
        "Scaled stand-ins preserve the relative structure: brain has the "
        "largest average degree and near-zero degree Gini; twitter is the "
        "most skewed with hub degrees >10x the mean; uk-2002 keeps "
        "crawl-order id locality. Asserted in "
        "`benchmarks/test_table1_datasets.py`.",
    ),
    (
        "table2",
        "Table 2 — reordering time consumption",
        "RCM 17.4-654.6 s, LLP 135.5-4343.5 s, Gorder 45.1-15207.7 s "
        "(hours on the billion-edge social graphs) vs SAGE "
        "0.0394-1.4956 s *per round*: the per-round cost is 3-5 orders "
        "of magnitude below full preprocessing.",
        "Same ordering: Gorder is the most expensive method on every "
        "social graph, LLP sits above RCM, and one SAGE round costs a "
        "small fraction (~1/20-1/80 at this scale) of any full pass. The "
        "absolute gap is smaller than the paper's because the graphs are "
        "~10^4x smaller and Gorder's asymptotics dominate at scale. "
        "Asserted in `benchmarks/test_table2_reorder_cost.py`.",
    ),
    (
        "table3",
        "Table 3 — Tiled Partitioning overhead",
        "TP costs a bounded share of runtime: 2-19% for BFS, 2-10% for "
        "BC, 0.3-8.5% for PR (PR's full-frontier iterations amortize the "
        "scheduling work).",
        "Overheads land in the same band (1-13%), BFS pays the largest "
        "share, PR no more than BFS, and brain (regular, few huge "
        "iterations) pays the least. Asserted in "
        "`benchmarks/test_table3_tp_overhead.py`.",
    ),
    (
        "fig6",
        "Figure 6 — SAGE under different node orderings",
        "Reordering barely moves uk-2002/brain but lifts the social "
        "graphs (up to +36% BFS / +80% BC / +109% PR on twitter). Gorder "
        "is the strongest preprocessing order; LLP is notably good for "
        "PR; SAGE's Sampling-based Reordering reaches ~95% of Gorder's "
        "speed within a few cheap rounds and keeps closing the gap.",
        "All four shapes hold: brain moves <5% under every order and "
        "Gorder/SAGE leave uk-2002 within a few percent (RCM/LLP can "
        "even *hurt* uk-2002 by ~15% — they destroy the crawl order's "
        "native locality); social graphs gain up to ~35% (PR on "
        "friendster); Gorder leads the preprocessing orders with LLP "
        "strongest on PR; sage_50 reaches ~93-97% of Gorder's speed "
        "(sage_5 ~85-95%) at ~2% of its cost per round. Asserted in "
        "`benchmarks/test_fig6_reordering.py`.",
    ),
    (
        "fig7",
        "Figure 7 — SAGE vs PGP approaches (with/without Gorder)",
        "GPU methods beat Ligra by a large margin; Tigr's UDT wins on "
        "skewed social graphs but *loses* on the already-regular brain; "
        "Gorder helps the baselines mainly on social graphs; SAGE is "
        "best or highly competitive everywhere with no preprocessing.",
        "All four shapes hold: every dataset's best GPU method beats "
        "Ligra by 3-8x; thread-per-node is always worst; Tigr > B40C on "
        "social graphs but not on brain; SAGE wins most cells and stays "
        "within 20% of the winner otherwise (the winner then being "
        "Gunrock+Gorder, which pays the Table-2 preprocessing bill SAGE "
        "avoids). Asserted in `benchmarks/test_fig7_pgp_comparison.py`.",
    ),
    (
        "fig8",
        "Figure 8 — out-of-core BFS (SAGE vs Subway)",
        "With the graph exceeding device memory, SAGE's tile-aligned "
        "on-demand access + resident tiles matches or beats Subway's "
        "planned subgraph preloading on every dataset.",
        "SAGE matches or beats Subway on >=3 of 5 datasets (largest "
        "margin on brain, where Subway's per-iteration full-edge-list "
        "extraction scan hurts most); naive page-granular UM never wins. "
        "Asserted in `benchmarks/test_fig8_out_of_core.py`.",
    ),
    (
        "fig9",
        "Figure 9 — multi-GPU BFS",
        "Two GPUs are not automatically faster (per-iteration exchange + "
        "synchronization); metis pre-partitioning helps the baselines; "
        "SAGE achieves the best multi-GPU performance, especially on "
        "brain and uk-2002, with no pre-partitioning.",
        "Holds with one scale-driven deviation: bulk-synchronous 2-GPU "
        "runs lose to 1 GPU on every dataset because our graphs are "
        "~10^4x smaller, so per-iteration kernels (microseconds) cannot "
        "amortize the fixed exchange/barrier cost the way the paper's "
        "millisecond kernels do. Asynchronous coordination (Groute, and "
        "SAGE's stealable resident tiles) recovers it: SAGE-2GPU leads "
        "every 2-GPU field and is competitive with or better than 1 GPU "
        "on the dense graphs. Asserted in "
        "`benchmarks/test_fig9_multi_gpu.py`.",
    ),
    (
        "fig10",
        "Figure 10 — ablation study",
        "TP lifts every dataset (skew handling is the first-order "
        "concern, biggest on twitter); RTS adds the most on brain "
        "(latency hiding) and twitter (inter-SM balance); SR pays off on "
        "the social graphs, where node order has locality to recover.",
        "Monotone base < +TP < +TP+RTS on all 15 dataset/app cells; the "
        "largest RTS jumps are on brain (~12x over TP for BFS) and the "
        "hub-heavy graphs; SR gains concentrate on "
        "ljournal/twitter/friendster (up to +25% for PR) and are neutral "
        "to slightly negative on uk-2002/brain — exactly the paper's "
        "split. Asserted in `benchmarks/test_fig10_ablation.py`.",
    ),
]

EXTENSION_SECTIONS: list[tuple[str, str, str]] = [
    (
        "ablation_min_tile",
        "MIN_TILE_SIZE sweep",
        "SAGE's smallest cooperative tile: smaller tiles shrink scan-"
        "gathered fragments but deepen the binary partition; the paper's "
        "default region (8-32) is flat, so the choice is robust.",
    ),
    (
        "ablation_alignment",
        "Tile alignment",
        "Section 5.3's sector alignment: removing it costs every "
        "unaligned gather one straddling transaction; alignment never "
        "hurts.",
    ),
    (
        "ablation_compressed",
        "Compressed adjacency traversal",
        "The authors' [41] trade: gap+varint CSR shrinks adjacency "
        "traffic 2.4-4x for a per-edge decode cost; traversal on the "
        "compressed image is on par or faster for memory-bound runs.",
    ),
    (
        "ablation_push_pull",
        "Push vs pull PageRank",
        "The atomics ablation: the gather formulation eliminates atomic "
        "conflicts entirely and lands within ~20% of push either way.",
    ),
    (
        "sweep_device_fraction",
        "Out-of-core device-memory sweep",
        "Figure 8 at one budget, swept: SAGE's on-demand pool gains with "
        "residency while Subway (which re-ships the active subgraph "
        "every round) is flat.",
    ),
    (
        "sweep_gpu_scaling",
        "GPU-count scaling",
        "Figure 9 generalized to 1-8 GPUs: scaling peaks early and "
        "degrades as per-iteration exchange dominates — the paper's "
        "'efficient multi-GPU graph analysis remains open'.",
    ),
    (
        "calibration",
        "Cost-model calibration",
        "Internal consistency: the analytic placement rules behind every "
        "figure, replayed through the discrete-event simulator — both "
        "regimes agree within ~1%, and the stealing speedup column is "
        "Figure 10's RTS effect measured a second, independent way.",
    ),
    (
        "session",
        "Time-to-insight query session",
        "The Section-1 argument end to end: SAGE's whole session "
        "completes before the Gorder profile finishes preprocessing.",
    ),
]

FOOTER = """\
## Known deviations (and why they are scale artifacts, not model gaps)

1. **Absolute GTEPS** are simulator outputs at 10^3-10^4x smaller graphs;
   only relative comparisons are meaningful.
2. **Table 2 gap compression**: Gorder's advantage-destroying cost grows
   super-linearly with |E|; at our scale it is "only" ~20-80x a SAGE
   round rather than the paper's ~10^4x.
3. **Figure 9 bulk-synchronous 2-GPU slowdowns**: with microsecond
   kernels, fixed per-iteration coordination dominates; the paper's
   larger graphs sit past the crossover. The async engines show the
   crossover behaviour at our scale.
4. **Figure 6 convergence**: SAGE's sampled rounds plateau at ~95% of
   Gorder rather than matching it exactly by round ~94; the damped
   commit rule (see `repro/core/reorder.py`) trades the last few percent
   for stability at small |V|.
"""


def generate(results_dir: pathlib.Path) -> str:
    """Build the EXPERIMENTS.md content from a results directory."""
    parts = [HEADER]
    for stem, title, paper, measured in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper:** {paper}\n")
        parts.append(f"**Measured (holds?):** {measured}\n")
        result_file = results_dir / f"{stem}.txt"
        if result_file.exists():
            body = result_file.read_text(encoding="utf-8").rstrip()
            parts.append(f"\n```\n{body}\n```\n")
        else:
            parts.append(
                "\n*(no results yet — run `pytest benchmarks/"
                f"test_{stem}*.py --benchmark-only -s`)*\n"
            )
    parts.append("\n## Extension experiments (beyond the paper)\n")
    for stem, title, note in EXTENSION_SECTIONS:
        result_file = results_dir / f"{stem}.txt"
        parts.append(f"\n### {title}\n")
        parts.append(note + "\n")
        if result_file.exists():
            body = result_file.read_text(encoding="utf-8").rstrip()
            parts.append(f"\n```\n{body}\n```\n")
    parts.append("\n" + FOOTER)
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results", type=pathlib.Path,
        default=pathlib.Path("benchmarks/results"),
        help="directory holding the benchmark result tables",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("EXPERIMENTS.md"),
        help="output markdown file",
    )
    args = parser.parse_args(argv)
    args.out.write_text(generate(args.results), encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
