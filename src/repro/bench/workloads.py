"""Workload helpers shared by experiments and examples."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.apps import BCApp, BFSApp, PageRankApp
from repro.apps.base import App
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: The paper's three evaluated applications (Section 7.2).
APP_NAMES = ("bfs", "bc", "pr")


def app_factory(name: str) -> Callable[[], App]:
    """Factory for the paper's applications by short name."""
    factories: dict[str, Callable[[], App]] = {
        "bfs": BFSApp,
        "bc": BCApp,
        "pr": lambda: PageRankApp(max_iterations=10),
    }
    if name not in factories:
        raise InvalidParameterError(f"unknown app {name!r}")
    return factories[name]


def needs_source(name: str) -> bool:
    """Whether the app takes a traversal source (BFS/BC do, PR doesn't)."""
    return name in ("bfs", "bc")


def pick_sources(
    graph: CSRGraph, count: int, seed: int = 0
) -> np.ndarray:
    """Random traversal sources with non-zero out-degree.

    The paper measures BFS/BC from randomly selected source nodes
    (Section 7.2); zero-degree sources would produce empty traversals.
    """
    degrees = graph.out_degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        raise InvalidParameterError("graph has no node with out-degree > 0")
    rng = np.random.default_rng(seed)
    picks = rng.choice(candidates, size=min(count, candidates.size),
                       replace=count > candidates.size)
    return np.asarray(picks, dtype=np.int64)
