"""Experiment drivers — one function per paper table/figure.

Each function returns a list of plain-dict rows so the benchmark modules
under ``benchmarks/`` (and EXPERIMENTS.md generation) can print or assert
on them uniformly.  ``scale`` shrinks the five dataset stand-ins for
quick runs; benchmarks default to full scale, tests to small.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

import numpy as np

from repro.apps import BFSApp
from repro.baselines import (
    B40CScheduler,
    GrouteScheduler,
    GunrockScheduler,
    LigraRunner,
    ThreadPerNodeScheduler,
    TigrScheduler,
)
from repro.bench.rounds import sage_reorder_rounds
from repro.bench.workloads import APP_NAMES, app_factory, needs_source, pick_sources
from repro.core import RunResult, SageScheduler, run_app
from repro.core.scheduler import Scheduler
from repro.graph import datasets, degree_stats
from repro.graph.csr import CSRGraph
from repro.multigpu import MultiGpuRunner, chunk_partition, metis_like
from repro.outofcore import OnDemandUMRunner, SageOutOfCoreRunner, SubwayRunner
from repro.reorder import (
    gorder_order,
    llp_order,
    rcm_order,
    timed_ordering,
)

Row = dict[str, object]


def _mean_gteps(
    graph: CSRGraph,
    app_name: str,
    scheduler_factory,
    sources: Iterable[int] | None,
) -> float:
    """Average traversal speed over sources (one run for global apps)."""
    make_app = app_factory(app_name)
    if not needs_source(app_name):
        result = run_app(graph, make_app(), scheduler_factory())
        return result.gteps
    speeds = [
        run_app(graph, make_app(), scheduler_factory(), source=int(s)).gteps
        for s in (sources if sources is not None else ())
    ]
    return float(np.mean(speeds)) if speeds else 0.0


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------

def table1_rows(scale: float = 1.0) -> list[Row]:
    """Statistics of the five dataset stand-ins (paper Table 1)."""
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        stats = degree_stats(ds.graph)
        rows.append({
            "dataset": ds.name,
            "category": ds.category,
            "nodes": ds.num_nodes,
            "edges": ds.num_edges,
            "avg_degree": round(ds.avg_degree, 1),
            "max_degree": stats.maximum,
            "degree_gini": round(stats.gini, 3),
        })
    return rows


# ----------------------------------------------------------------------
# Table 2 — reordering time consumption
# ----------------------------------------------------------------------

def table2_rows(scale: float = 1.0, *, sage_rounds: int = 3) -> list[Row]:
    """Wall-clock cost of each reordering method (paper Table 2)."""
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        rcm = timed_ordering("rcm", rcm_order, graph)
        llp = timed_ordering("llp", llp_order, graph)
        gorder = timed_ordering("gorder", gorder_order, graph)
        rounds = sage_reorder_rounds(graph, sage_rounds,
                                     checkpoints=(sage_rounds,))
        rows.append({
            "dataset": ds.name,
            "rcm_s": round(rcm.seconds, 4),
            "llp_s": round(llp.seconds, 4),
            "gorder_s": round(gorder.seconds, 4),
            "sage_per_round_s": round(rounds.mean_round_seconds, 4),
        })
    return rows


# ----------------------------------------------------------------------
# Table 3 — Tiled Partitioning overhead
# ----------------------------------------------------------------------

def table3_rows(scale: float = 1.0, *, num_sources: int = 3) -> list[Row]:
    """Tiled-Partitioning scheduling cost as share of runtime (Table 3).

    Overhead is the profiler's scheduling-cycle share for the full SAGE
    engine (TP active, RTS amortizing repeat visits), reported per app
    and dataset as the paper does.
    """
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        sources = pick_sources(graph, num_sources, seed=7)
        row: Row = {"dataset": ds.name}
        for app_name in APP_NAMES:
            scheduler = SageScheduler()
            make_app = app_factory(app_name)
            if needs_source(app_name):
                results = [
                    run_app(graph, make_app(), scheduler, source=int(s))
                    for s in sources
                ]
            else:
                results = [run_app(graph, make_app(), scheduler)]
            total_ms = float(np.mean([r.seconds for r in results])) * 1e3
            overhead_frac = float(np.mean(
                [r.profiler.overhead_fraction for r in results]
            ))
            row[f"{app_name}_total_ms"] = round(total_ms, 4)
            row[f"{app_name}_tp_ms"] = round(total_ms * overhead_frac, 4)
            row[f"{app_name}_tp_pct"] = round(100 * overhead_frac, 1)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 6 — SAGE under different node orderings
# ----------------------------------------------------------------------

def fig6_rows(
    scale: float = 1.0,
    *,
    num_sources: int = 3,
    sage_checkpoints: tuple[int, ...] = (1, 5, 20, 50),
    apps: tuple[str, ...] = APP_NAMES,
) -> list[Row]:
    """SAGE traversal speed under each ordering (paper Figure 6).

    Orders compared: original, RCM, LLP, Gorder, and SAGE's own
    Sampling-based Reordering after each checkpoint round.
    """
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        variants: dict[str, CSRGraph] = {"original": graph}
        variants["rcm"] = graph.permute(rcm_order(graph))
        variants["llp"] = graph.permute(llp_order(graph))
        variants["gorder"] = graph.permute(gorder_order(graph))
        rounds = sage_reorder_rounds(
            graph, max(sage_checkpoints), checkpoints=sage_checkpoints
        )
        for r in sage_checkpoints:
            variants[f"sage_{r}"] = rounds.snapshots[r]
        for app_name in apps:
            row: Row = {"dataset": ds.name, "app": app_name}
            for label, g in variants.items():
                sources = pick_sources(g, num_sources, seed=7)
                row[label] = round(_mean_gteps(
                    g, app_name, SageScheduler, sources
                ), 4)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 7 — SAGE vs PGP approaches, with/without Gorder
# ----------------------------------------------------------------------

def _pgp_schedulers() -> dict[str, type[Scheduler]]:
    return {
        "tpn": ThreadPerNodeScheduler,
        "b40c": B40CScheduler,
        "tigr": TigrScheduler,
        "gunrock": GunrockScheduler,
        "sage": SageScheduler,
    }


def fig7_rows(
    scale: float = 1.0,
    *,
    num_sources: int = 3,
    apps: tuple[str, ...] = APP_NAMES,
    with_gorder: bool = True,
) -> list[Row]:
    """GTEPS of every PGP approach per app/dataset (paper Figure 7).

    Gorder is applied to every method except SAGE (whose runtime
    reordering replaces preprocessing), mirroring the paper's setup.
    ``ligra`` rows use the CPU model.
    """
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        reordered = graph.permute(gorder_order(graph)) if with_gorder else None
        for app_name in apps:
            row: Row = {"dataset": ds.name, "app": app_name}
            sources = pick_sources(graph, num_sources, seed=7)
            # CPU baseline.
            make_app = app_factory(app_name)
            if needs_source(app_name):
                ligra = float(np.mean([
                    LigraRunner().run(graph, make_app(), int(s)).gteps
                    for s in sources
                ]))
            else:
                ligra = LigraRunner().run(graph, make_app()).gteps
            row["ligra"] = round(ligra, 4)
            for name, factory in _pgp_schedulers().items():
                row[name] = round(_mean_gteps(
                    graph, app_name, factory, sources
                ), 4)
                if reordered is not None and name != "sage":
                    g_sources = pick_sources(reordered, num_sources, seed=7)
                    row[f"{name}+gorder"] = round(_mean_gteps(
                        reordered, app_name, factory, g_sources
                    ), 4)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 8 — out-of-core BFS
# ----------------------------------------------------------------------

def fig8_rows(
    scale: float = 1.0,
    *,
    num_sources: int = 3,
    device_fraction: float = 0.25,
) -> list[Row]:
    """Out-of-core BFS: SAGE vs Subway vs naive UM (paper Figure 8)."""
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        sources = pick_sources(graph, num_sources, seed=7)
        row: Row = {"dataset": ds.name}
        for runner_factory in (SubwayRunner, SageOutOfCoreRunner,
                               OnDemandUMRunner):
            speeds = []
            transfer = []
            for s in sources:
                runner = runner_factory(device_fraction=device_fraction)
                result = runner.run(graph, BFSApp(), int(s))
                speeds.append(result.gteps)
                transfer.append(result.extras["transfer_seconds"])
            name = runner_factory.name
            row[name] = round(float(np.mean(speeds)), 4)
            row[f"{name}_xfer_ms"] = round(float(np.mean(transfer)) * 1e3, 3)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 9 — multi-GPU BFS
# ----------------------------------------------------------------------

def fig9_rows(scale: float = 1.0, *, num_sources: int = 3) -> list[Row]:
    """Multi-GPU BFS: Gunrock/Groute (+/- metis) and SAGE (Figure 9).

    metis-like partitioning cost is excluded from the reported speeds, as
    in the paper; SAGE uses the preprocessing-free chunk partition.
    """
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        sources = pick_sources(graph, num_sources, seed=7)
        chunks = chunk_partition(graph.num_nodes, 2)
        metis = metis_like(graph, 2)
        single = chunk_partition(graph.num_nodes, 1)

        def mean_speed(runner_factory) -> float:
            speeds = []
            for s in sources:
                runner = runner_factory()
                speeds.append(runner.run(graph, BFSApp(), int(s)).gteps)
            return round(float(np.mean(speeds)), 4)

        row: Row = {"dataset": ds.name}
        row["gunrock_1gpu"] = mean_speed(lambda: MultiGpuRunner(
            GunrockScheduler, single, num_gpus=1, name="gunrock-1"))
        row["gunrock_2gpu"] = mean_speed(lambda: MultiGpuRunner(
            GunrockScheduler, chunks, num_gpus=2, name="gunrock-2"))
        row["gunrock_2gpu_metis"] = mean_speed(lambda: MultiGpuRunner(
            GunrockScheduler, metis, num_gpus=2, name="gunrock-2m"))
        row["groute_2gpu"] = mean_speed(lambda: MultiGpuRunner(
            GrouteScheduler, chunks, num_gpus=2, async_mode=True,
            name="groute-2"))
        row["groute_2gpu_metis"] = mean_speed(lambda: MultiGpuRunner(
            GrouteScheduler, metis, num_gpus=2, async_mode=True,
            name="groute-2m"))
        row["sage_1gpu"] = mean_speed(lambda: MultiGpuRunner(
            SageScheduler, single, num_gpus=1, name="sage-1"))
        # Resident tiles form device-local work queues consumed as they
        # arrive, so SAGE's multi-GPU coordination is asynchronous (no
        # bulk barrier) while still preprocessing-free (chunk partition).
        row["sage_2gpu"] = mean_speed(lambda: MultiGpuRunner(
            SageScheduler, chunks, num_gpus=2, async_mode=True,
            name="sage-2"))
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 10 — ablation study
# ----------------------------------------------------------------------

def fig10_rows(
    scale: float = 1.0,
    *,
    num_sources: int = 3,
    apps: tuple[str, ...] = APP_NAMES,
    reorder_rounds: int = 10,
) -> list[Row]:
    """Incremental impact of TP, RTS and SR (paper Figure 10)."""
    configs: list[tuple[str, dict[str, bool]]] = [
        ("base", dict(tiled_partitioning=False, resident_stealing=False)),
        ("+tp", dict(tiled_partitioning=True, resident_stealing=False)),
        ("+tp+rts", dict(tiled_partitioning=True, resident_stealing=True)),
    ]
    rows: list[Row] = []
    for ds in datasets.full_suite(scale):
        graph = ds.graph
        sources = pick_sources(graph, num_sources, seed=7)
        # SR's steady state: the order after `reorder_rounds` rounds.
        reordered = sage_reorder_rounds(
            graph, reorder_rounds, checkpoints=(reorder_rounds,)
        ).snapshots[reorder_rounds]
        for app_name in apps:
            row: Row = {"dataset": ds.name, "app": app_name}
            for label, flags in configs:
                row[label] = round(_mean_gteps(
                    graph, app_name,
                    lambda flags=flags: SageScheduler(**flags),
                    sources,
                ), 4)
            r_sources = pick_sources(reordered, num_sources, seed=7)
            row["+tp+rts+sr"] = round(_mean_gteps(
                reordered, app_name, SageScheduler, r_sources
            ), 4)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Utility: single-run timing used by benchmark wrappers
# ----------------------------------------------------------------------

def run_once(
    graph: CSRGraph,
    app_name: str,
    scheduler: Scheduler,
    source: int | None = None,
) -> RunResult:
    """One traversal run (thin wrapper for pytest-benchmark bodies)."""
    return run_app(graph, app_factory(app_name)(), scheduler, source=source)


def wall_time(fn, *args, **kwargs) -> float:
    """Wall-clock seconds of one call (for preprocessing-cost rows)."""
    started = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - started
