"""Plain-text table rendering for experiment rows."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(rows: Sequence[dict[str, object]], title: str = "") -> str:
    """Render a list of uniform dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(val.ljust(w) for val, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
