"""Once-per-process deprecation warnings for legacy entry points.

The :mod:`repro.api` facade (PR 5) replaced several accreted spellings
(``run_app(..., sanitizer=...)``, direct :class:`~repro.serve.broker.
QueryBroker` construction).  The legacy spellings keep working, but each
emits **exactly one** :class:`DeprecationWarning` per process — enough
to surface the migration without flooding a service's logs at request
rate.  ``tests/test_api_deprecations.py`` pins the exactly-once
contract; the SAGE005 lint rule keeps the library itself off the
deprecated spellings.
"""

from __future__ import annotations

import warnings

_WARNED: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning, once per ``key``."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset() -> None:
    """Forget which warnings fired (test isolation only)."""
    _WARNED.clear()
