"""The unified entry point: load a graph, run, serve, cluster, tune, bench.

Everything the CLI and the benchmarks do goes through these six
functions; library users should start here instead of wiring
:class:`~repro.core.pipeline.TraversalPipeline`,
:class:`~repro.serve.broker.QueryBroker` or the cluster tier by hand.

::

    import repro

    graph = repro.api.load_graph("twitter", scale=0.3)
    result = repro.api.run(graph, "bfs", checks=True)
    print(result.gteps, result.values["dist"])

    with repro.api.cluster({"g": graph}, num_replicas=2) as pool:
        response = pool.submit(request).result()

``run`` replaces the deprecated ``run_app(..., sanitizer=...)``
spelling (``checks=True`` wires the kernel hazard sanitizer and returns
it on the result), and ``serve``/``cluster`` replace direct
:class:`QueryBroker` construction.  The maps :data:`APPS` and
:data:`SCHEDULERS` are the canonical name → factory registries; the CLI
imports them from here.

``tune`` runs the :mod:`repro.tune` cost-model search and persists the
winning configuration as a :class:`~repro.tune.profiles.TunedProfile`.
``serve`` and ``cluster`` *auto-load* committed profiles: with the
default ``profile="auto"`` they fingerprint the registered graphs,
look for a matching profile under ``profiles/`` (override with the
``REPRO_PROFILE_DIR`` env var), and use its tuned knobs for any
parameter the caller did not set explicitly.  Explicit arguments
always win; pass ``profile=None`` to opt out entirely.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.apps import (
    BCApp,
    BFSApp,
    BiasedRandomWalkApp,
    ConnectedComponentsApp,
    KHopSampleApp,
    LabelPropagationApp,
    Node2VecWalkApp,
    PageRankApp,
    SSSPApp,
    SampledPPRApp,
)
from repro.apps.base import App
from repro.baselines import (
    B40CScheduler,
    GunrockScheduler,
    ThreadPerNodeScheduler,
    TigrScheduler,
)
from repro.core import SageScheduler, TraversalPipeline
from repro.core.scheduler import Scheduler
from repro.errors import InvalidParameterError
from repro.graph import datasets, io
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.graph.dynamic import DynamicGraph
from repro.gpusim.profiler import Profiler
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve.admission import AdmissionConfig
from repro.serve.broker import QueryBroker
from repro.serve.cache import GraphStore, graph_fingerprint
from repro.serve.cluster import (
    ClusterBenchReport,
    ClusterPool,
    simulate_cluster_open_loop,
)
from repro.serve.pipelined import PipelineConfig
from repro.serve.loadgen import (
    ServeBenchReport,
    generate_queries,
    open_loop_arrivals,
    sequential_baseline,
    simulate_open_loop,
)
from repro.tune import (
    ProfileStore,
    TunedProfile,
    TuningSpace,
    TuningWorkload,
    tune_workload,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import Sanitizer

#: Application kinds runnable through :func:`run` (name → factory).
APPS: dict[str, Callable[[], App]] = {
    "bfs": BFSApp,
    "bc": BCApp,
    "pr": lambda: PageRankApp(max_iterations=20),
    "cc": ConnectedComponentsApp,
    "sssp": SSSPApp,
    "lp": LabelPropagationApp,
    "walk": BiasedRandomWalkApp,
    "node2vec": Node2VecWalkApp,
    "khop": KHopSampleApp,
    "sppr": SampledPPRApp,
}

#: App kinds that require a traversal source.
SOURCE_APPS = frozenset(
    {"bfs", "bc", "sssp", "walk", "node2vec", "khop", "sppr"}
)

#: Scheduler names accepted everywhere a scheduler is chosen by name.
SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "sage": SageScheduler,
    "sage-sr": lambda: SageScheduler(sampling_reorder=True),
    "tpn": ThreadPerNodeScheduler,
    "b40c": B40CScheduler,
    "tigr": TigrScheduler,
    "gunrock": GunrockScheduler,
}


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :func:`run` call.

    ``values`` holds the application's output arrays (original node
    ids); ``checks`` is the kernel hazard sanitizer when the run was
    audited (``checks=True``), else ``None``; ``raw`` is the underlying
    :class:`repro.core.pipeline.RunResult` for callers that need the
    pipeline-level view.
    """

    app: str
    scheduler: str
    seconds: float
    iterations: int
    edges_traversed: int
    gteps: float
    values: dict[str, np.ndarray]
    profiler: Profiler
    reorder_commits: int = 0
    checks: "Sanitizer | None" = None
    metrics: MetricsRegistry | None = None
    raw: Any = field(default=None, repr=False)

    @property
    def clean(self) -> bool:
        """Whether the audited run produced no sanitizer findings
        (vacuously true when ``checks`` was off)."""
        return self.checks is None or self.checks.clean


def _make_app(app: str | App) -> tuple[str, App]:
    if isinstance(app, App):
        return app.name, app
    if app not in APPS:
        raise InvalidParameterError(
            f"unknown app {app!r}; expected one of {sorted(APPS)}"
        )
    return app, APPS[app]()


def _make_scheduler(
    scheduler: str | Scheduler | Callable[[], Scheduler],
) -> Scheduler:
    if isinstance(scheduler, Scheduler):
        return scheduler
    if callable(scheduler):
        return scheduler()
    if scheduler not in SCHEDULERS:
        raise InvalidParameterError(
            f"unknown scheduler {scheduler!r}; "
            f"expected one of {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[scheduler]()


def _scheduler_factory(
    scheduler: str | Callable[[], Scheduler],
) -> Callable[[], Scheduler]:
    if callable(scheduler):
        return scheduler
    if scheduler not in SCHEDULERS:
        raise InvalidParameterError(
            f"unknown scheduler {scheduler!r}; "
            f"expected one of {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[scheduler]


def _resolve_profile(
    profile: "TunedProfile | str | None",
    graphs: Mapping[str, CSRGraph | DynamicGraph] | GraphStore,
) -> TunedProfile | None:
    """Resolve the ``profile=`` argument of :func:`serve`/:func:`cluster`.

    ``"auto"`` fingerprints every registered graph and returns the
    first committed profile that matches one of them (profiles are
    keyed on graph content, so an epoch bump or regenerated graph
    silently falls back to defaults).  A path loads that file
    unconditionally; an instance is used as-is; ``None`` disables.
    """
    if profile is None:
        return None
    if isinstance(profile, TunedProfile):
        return profile
    if profile != "auto":
        return ProfileStore().load(profile)
    if isinstance(graphs, GraphStore):
        fingerprints = [graphs.fingerprint(h) for h in graphs.handles]
    else:
        fingerprints = []
        for graph in graphs.values():
            csr = graph.graph if isinstance(graph, DynamicGraph) else graph
            fingerprints.append(graph_fingerprint(csr))
    store = ProfileStore()
    for fingerprint in fingerprints:
        found = store.find(fingerprint)
        if found is not None:
            return found
    return None


def load_graph(
    name: str | None = None,
    *,
    scale: float = 0.5,
    path: str | None = None,
) -> CSRGraph:
    """Load a built-in synthetic dataset or a SNAP edge-list file."""
    if path is not None:
        return io.read_edge_list(path)
    if name is None:
        raise InvalidParameterError("pass a dataset name or path=...")
    return datasets.by_name(name, scale).graph


def run(
    graph: CSRGraph,
    app: str | App = "bfs",
    *,
    source: int | None = None,
    scheduler: str | Scheduler | Callable[[], Scheduler] = "sage",
    checks: bool = False,
    metrics: MetricsRegistry | None = None,
    max_iterations: int = 100_000,
) -> RunResult:
    """Run one application to convergence on the simulated device.

    ``checks=True`` audits every kernel with the hazard sanitizer
    (:mod:`repro.analysis`) and returns it as ``result.checks`` — this
    replaces the deprecated ``run_app(..., sanitizer=...)`` spelling.
    ``source`` defaults to the highest-out-degree node for apps that
    need one.
    """
    app_name, app_obj = _make_app(app)
    if source is None and app_name in SOURCE_APPS:
        source = int(np.argmax(graph.out_degrees()))
    sanitizer: "Sanitizer | None" = None
    if checks:
        from repro.analysis import Sanitizer

        sanitizer = Sanitizer()
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.count("api.runs")
    pipeline = TraversalPipeline(
        graph,
        _make_scheduler(scheduler),
        max_iterations=max_iterations,
        metrics=metrics,
        sanitizer=sanitizer,
    )
    raw = pipeline.run(app_obj, source)
    return RunResult(
        app=raw.app_name,
        scheduler=raw.scheduler_name,
        seconds=raw.seconds,
        iterations=raw.iterations,
        edges_traversed=raw.edges_traversed,
        gteps=raw.gteps,
        values=raw.result,
        profiler=raw.profiler,
        reorder_commits=raw.reorder_commits,
        checks=sanitizer,
        metrics=metrics,
        raw=raw,
    )


def serve(
    graphs: Mapping[str, CSRGraph] | CSRGraph,
    *,
    scheduler: str | Callable[[], Scheduler] = "sage",
    batch_window: float | None = None,
    max_batch_size: int | None = None,
    num_workers: int = 2,
    queue_capacity: int = 256,
    num_gpus: int = 1,
    max_retries: int = 1,
    profile: TunedProfile | str | None = "auto",
    metrics: MetricsRegistry | None = None,
    race_check: bool = False,
) -> QueryBroker:
    """Start a single micro-batching query broker (a context manager).

    This is the supported way to construct a broker — direct
    :class:`QueryBroker` construction is deprecated.  A bare
    :class:`CSRGraph` is registered under the handle ``"default"``.

    With the default ``profile="auto"`` a committed tuned profile
    matching one of the graphs (by content fingerprint) supplies the
    batching knobs and scheduler tile floor for any parameter left
    unset; explicit arguments always win (see :func:`tune`).

    ``race_check=True`` runs the broker under the concurrency sanitizer
    (:mod:`repro.analysis.races`): every lock, condition and worker
    thread it creates is tracked by a happens-before detector whose
    report is finalized at ``close()`` and exposed as
    ``broker.race_detector``.  Gated metrics are bit-identical either
    way; only ``races.*`` counters are added.
    """
    if isinstance(graphs, CSRGraph):
        graphs = {"default": graphs}
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.count("api.serve_sessions")
    tuned = _resolve_profile(profile, graphs)
    factory = _scheduler_factory(scheduler)
    if tuned is not None:
        registry.count("api.profiles_applied")
        if batch_window is None:
            batch_window = tuned.point.batch_window
        if max_batch_size is None:
            max_batch_size = tuned.point.max_batch_size
        if scheduler == "sage":
            factory = tuned.point.scheduler_factory()
    return QueryBroker(  # sage: allow(SAGE005) - the sanctioned constructor
        graphs,
        factory,
        batch_window=batch_window if batch_window is not None else 0.01,
        max_batch_size=max_batch_size if max_batch_size is not None else 64,
        num_workers=num_workers,
        queue_capacity=queue_capacity,
        num_gpus=num_gpus,
        max_retries=max_retries,
        metrics=metrics,
        race_check=race_check,
        _internal=True,
    )


def cluster(
    graphs: Mapping[str, CSRGraph | DynamicGraph] | CSRGraph | GraphStore,
    *,
    scheduler: str | Callable[[], Scheduler] = "sage",
    num_replicas: int = 2,
    routing: str | None = None,
    batch_window: float | None = None,
    max_batch_size: int | None = None,
    num_workers: int = 2,
    queue_capacity: int = 256,
    num_gpus: int = 1,
    max_retries: int = 1,
    cache_capacity: int = 1024,
    admission: AdmissionConfig | None = None,
    profile: TunedProfile | str | None = "auto",
    metrics: MetricsRegistry | None = None,
    race_check: bool = False,
) -> ClusterPool:
    """Start a sharded replica pool (a context manager).

    Adds routing (:data:`~repro.serve.cluster.ROUTING_POLICIES`),
    adaptive admission control and the epoch-versioned result cache on
    top of :func:`serve`-style replicas.  Register a
    :class:`~repro.graph.dynamic.DynamicGraph` to stream edge updates;
    merges propagate to every replica and invalidate the cache.

    With the default ``profile="auto"`` a committed tuned profile
    matching one of the graphs (by content fingerprint) supplies the
    batching, routing, admission and tile-floor knobs for any parameter
    left unset; explicit arguments always win (see :func:`tune`).

    ``race_check=True`` runs the whole pool — replicas, cache, admission
    and graph store — under the concurrency sanitizer; the finalized
    report is exposed as ``pool.race_detector`` after ``close()``.
    """
    if isinstance(graphs, CSRGraph):
        graphs = {"default": graphs}
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.count("api.cluster_sessions")
    tuned = _resolve_profile(profile, graphs)
    factory = _scheduler_factory(scheduler)
    if tuned is not None:
        registry.count("api.profiles_applied")
        if routing is None:
            routing = tuned.point.routing
        if batch_window is None:
            batch_window = tuned.point.batch_window
        if max_batch_size is None:
            max_batch_size = tuned.point.max_batch_size
        if admission is None:
            admission = tuned.point.admission_config()
        if scheduler == "sage":
            factory = tuned.point.scheduler_factory()
    return ClusterPool(
        graphs,
        factory,
        num_replicas=num_replicas,
        routing=routing if routing is not None else "least_outstanding",
        batch_window=batch_window if batch_window is not None else 0.01,
        max_batch_size=max_batch_size if max_batch_size is not None else 64,
        num_workers=num_workers,
        queue_capacity=queue_capacity,
        num_gpus=num_gpus,
        max_retries=max_retries,
        cache_capacity=cache_capacity,
        admission=admission,
        metrics=metrics,
        race_check=race_check,
    )


def tune(
    workload: str | TuningWorkload = "rmat_small",
    *,
    budget: int = 32,
    seed: int = 0,
    space: TuningSpace | None = None,
    out: str | None = None,
    trace: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> TunedProfile:
    """Search the tuning space for one workload (see :mod:`repro.tune`).

    Runs the seeded UCB/MCTS search against the deterministic cost
    model and returns the winning configuration as a
    :class:`~repro.tune.profiles.TunedProfile` — never worse than the
    defaults, which compete on equal terms.  ``out`` saves the profile
    (canonical JSON, byte-stable for equal inputs) into that directory;
    ``trace`` writes the full rollout-by-rollout search trace to a JSON
    file for offline inspection or CI artifacts.
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.count("api.tune_runs")
    profile, result = tune_workload(
        workload, budget=budget, seed=seed, space=space, metrics=metrics
    )
    if out is not None:
        ProfileStore(out).save(profile)
    if trace is not None:
        payload = {
            "workload": profile.workload,
            "seed": seed,
            "budget": budget,
            "evaluations": result.evaluations,
            "speedup": result.speedup,
            "rollouts": list(result.trace),
        }
        path = pathlib.Path(trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
    return profile


def bench(
    graph: CSRGraph,
    *,
    num_queries: int = 64,
    rate_qps: float = 200.0,
    mix: Mapping[str, float] | None = None,
    batch_window: float = 0.05,
    max_batch_size: int = 64,
    num_workers: int = 2,
    scheduler: str | Callable[[], Scheduler] = "sage",
    replicas: int = 0,
    routing: str = "affinity",
    cache_capacity: int = 1024,
    admission: AdmissionConfig | None = None,
    pipeline: PipelineConfig | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
) -> ServeBenchReport | ClusterBenchReport:
    """Deterministic open-loop serving benchmark over one graph.

    ``replicas=0`` (default) benchmarks the single micro-batching
    broker and returns a :class:`ServeBenchReport`; ``replicas >= 1``
    benchmarks the cluster tier on the same seeded trace (baselined
    against the single broker) and returns a
    :class:`ClusterBenchReport`.  Pass a
    :class:`~repro.serve.pipelined.PipelineConfig` to run replica
    devices through the stream/event pipeline (responses stay
    bit-identical; only device time changes).  Everything runs in
    virtual time, so equal arguments always produce equal reports.
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.count("api.bench_runs")
    factory = _scheduler_factory(scheduler)
    requests = generate_queries(
        "bench", graph.num_nodes, num_queries, mix=mix, seed=seed
    )
    arrivals = open_loop_arrivals(num_queries, rate_qps, seed=seed)
    sequential = sequential_baseline(graph, requests, factory)
    _, serve_report = simulate_open_loop(
        graph, requests, arrivals, factory,
        batch_window=batch_window,
        max_batch_size=max_batch_size,
        num_workers=num_workers,
        sequential_seconds=sequential,
        metrics=metrics if replicas < 1 else None,
    )
    if replicas < 1:
        return serve_report
    _, cluster_report = simulate_cluster_open_loop(
        {"bench": graph}, requests, arrivals, factory,
        num_replicas=replicas,
        routing=routing,
        batch_window=batch_window,
        max_batch_size=max_batch_size,
        cache_capacity=cache_capacity,
        admission=admission,
        pipeline=pipeline,
        single_broker_seconds=serve_report.sim_seconds_total,
        metrics=metrics,
    )
    return cluster_report


def update(
    target: GraphStore | ClusterPool | DynamicGraph,
    handle: str = "default",
    *,
    insert: tuple[Any, Any] | None = None,
    delete: tuple[Any, Any] | None = None,
    metrics: MetricsRegistry | None = None,
) -> GraphDelta:
    """Apply one batched edge update and return the merge's delta.

    ``target`` is a :class:`~repro.serve.cache.GraphStore`, a running
    :func:`cluster` pool (updates its store, so replicas patch their
    CSRs and the cache invalidates selectively), or a bare
    :class:`~repro.graph.dynamic.DynamicGraph`.  ``insert`` and
    ``delete`` are ``(src, dst)`` array pairs applied as a single merge
    — deletes win over same-batch inserts of the same pair.  The
    returned :class:`~repro.graph.delta.GraphDelta` records exactly
    what changed; feed it to the :mod:`repro.apps.incremental` engines
    to repair standing results instead of recomputing.
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    if insert is None and delete is None:
        raise InvalidParameterError(
            "pass insert=(src, dst) and/or delete=(src, dst)"
        )
    empty = np.empty(0, dtype=np.int64)
    ins_src, ins_dst = insert if insert is not None else (empty, empty)
    registry.count("api.updates")
    if isinstance(target, DynamicGraph):
        ins_src = np.asarray(ins_src)
        if ins_src.size:
            target.insert_edges(ins_src, np.asarray(ins_dst))
        if delete is not None:
            target.delete_edges(
                np.asarray(delete[0]), np.asarray(delete[1])
            )
        before = target.epoch
        target.flush()
        delta = target.last_delta
        if delta is None or target.epoch == before:
            raise InvalidParameterError(
                "update applied no changes (empty insert and delete)"
            )
        return delta
    store = target.store if isinstance(target, ClusterPool) else target
    before = store.epoch(handle)
    store.apply_edges(
        handle,
        ins_src,
        ins_dst,
        delete_src=delete[0] if delete is not None else None,
        delete_dst=delete[1] if delete is not None else None,
    )
    delta = store.last_delta(handle)
    if delta is None or store.epoch(handle) == before:
        raise InvalidParameterError(
            "update applied no changes (empty insert and delete)"
        )
    return delta


__all__ = [
    "APPS",
    "RunResult",
    "SCHEDULERS",
    "SOURCE_APPS",
    "bench",
    "cluster",
    "load_graph",
    "run",
    "serve",
    "tune",
    "update",
]
