"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``info``      — Table-1 style statistics for a dataset or edge-list file
* ``generate``  — write a synthetic dataset as a SNAP edge list
* ``run``       — run an application with a chosen scheduler, print timing
  (``--emit-metrics PATH`` exports the hierarchical span/metrics JSON)
* ``report``    — pretty-print a metrics JSON written by ``--emit-metrics``
* ``reorder``   — apply a reordering method, report locality + cost
* ``scc``       — strongly-connected-component decomposition
* ``experiment``— regenerate one paper table/figure from the harness
* ``serve-bench``— load-test the batched query service (closed- or
  open-loop, fixed seeds; open-loop runs in deterministic virtual time)
* ``cluster-bench``— benchmark the sharded replica pool (routing +
  admission + result cache) against the single broker on one trace
* ``tune``      — search the tuning space against the deterministic
  cost model and save/verify tuned profiles (``--verify DIR``
  regenerates committed profiles and byte-compares them — the CI gate)

``run``, ``serve-bench``, ``cluster-bench`` and ``tune`` share one flag
family (``--emit-metrics``, ``--sanitize``, ``--sanitize-report``,
``--race-check``, ``--race-report``, ``--seed``) via a common parent
parser, so observability and determinism knobs are spelled identically
everywhere.  ``--race-check`` runs the whole command under the
concurrency sanitizer (:mod:`repro.analysis.races`) and exits 3 on
findings, mirroring ``--sanitize``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import api
from repro.api import APPS, SCHEDULERS
from repro.apps.scc import strongly_connected_components
from repro.baselines import LigraRunner
from repro.bench import (
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    format_table,
    sage_reorder_rounds,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.graph import datasets, degree_stats, id_locality, io, sector_span
from repro.obs import (
    MetricsRegistry,
    format_report,
    report_from_json,
    write_json,
)
from repro.graph.csr import CSRGraph
from repro.reorder import (
    bfs_order,
    degree_order,
    gorder_order,
    llp_order,
    random_perm,
    rcm_order,
    timed_ordering,
)

DATASETS = ("uk-2002", "brain", "ljournal", "twitter", "friendster")

EXPERIMENTS = {
    "table1": lambda scale: table1_rows(scale),
    "table2": lambda scale: table2_rows(scale),
    "table3": lambda scale: table3_rows(scale),
    "fig6": lambda scale: fig6_rows(scale, num_sources=2),
    "fig7": lambda scale: fig7_rows(scale, num_sources=2),
    "fig8": lambda scale: fig8_rows(scale),
    "fig9": lambda scale: fig9_rows(scale),
    "fig10": lambda scale: fig10_rows(scale, num_sources=2),
}

REORDER_METHODS = {
    "rcm": rcm_order,
    "llp": llp_order,
    "gorder": gorder_order,
    "degree": degree_order,
    "bfs": bfs_order,
}


def _load_graph(args: argparse.Namespace) -> CSRGraph:
    if args.file:
        return io.read_edge_list(args.file)
    return datasets.by_name(args.dataset, args.scale).graph


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASETS, default="twitter",
                        help="built-in synthetic dataset stand-in")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor")
    parser.add_argument("--file", default=None,
                        help="read a SNAP edge list instead")


def _common_flags() -> argparse.ArgumentParser:
    """Parent parser shared by run / serve-bench / cluster-bench.

    One spelling for the observability and determinism knobs everywhere:
    ``--emit-metrics PATH``, ``--sanitize``, ``--sanitize-report PATH``
    (implies ``--sanitize``) and ``--seed N``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--emit-metrics", metavar="PATH", default=None,
                        help="write the hierarchical span/metrics JSON here")
    parent.add_argument("--sanitize", action="store_true",
                        help="audit the run(s) with the kernel hazard "
                             "sanitizer (exit code 3 on findings)")
    parent.add_argument("--sanitize-report", metavar="PATH", default=None,
                        help="write the sanitizer findings JSON here "
                             "(implies --sanitize)")
    parent.add_argument("--race-check", action="store_true",
                        help="audit the command with the concurrency "
                             "sanitizer (exit code 3 on findings)")
    parent.add_argument("--race-report", metavar="PATH", default=None,
                        help="write the race findings JSON here "
                             "(implies --race-check)")
    parent.add_argument("--seed", type=int, default=None,
                        help="seed for randomized choices (sources, "
                             "query mixes, arrival schedules)")
    return parent


def cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = degree_stats(graph)
    print(graph)
    print(f"  avg degree     {stats.mean:10.2f}")
    print(f"  median degree  {stats.median:10.2f}")
    print(f"  max degree     {stats.maximum:10d}")
    print(f"  degree gini    {stats.gini:10.3f}")
    print(f"  p99 degree     {stats.p99:10.1f}")
    print(f"  id locality    {id_locality(graph, 64):10.3f}")
    print(f"  sector span    {sector_span(graph):10.2f}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    graph = datasets.by_name(args.dataset, args.scale).graph
    io.write_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    app = APPS[args.app]()
    source = args.source
    if source is None and args.app in api.SOURCE_APPS:
        if args.seed is not None:
            # Seeded random source: reproducible sweeps without pinning
            # everyone to the same argmax-degree hub.
            rng = np.random.default_rng(args.seed)
            source = int(rng.integers(0, graph.num_nodes))
        else:
            source = int(np.argmax(graph.out_degrees()))
    sanitize = args.sanitize or args.sanitize_report is not None
    if sanitize and args.scheduler == "ligra":
        print("error: --sanitize does not support the ligra runner "
              "(it bypasses the traversal pipeline)", file=sys.stderr)
        return 2
    metrics = MetricsRegistry() if args.emit_metrics else None
    sanitizer = None
    if args.scheduler == "ligra":
        result = LigraRunner().run(graph, app, source)
        scheduler_name = result.scheduler_name
        values = result.result
        seconds, gteps = result.seconds, result.gteps
        iterations = result.iterations
        edges_traversed = result.edges_traversed
        reorder_commits = result.reorder_commits
        profiler = result.profiler
    else:
        run = api.run(graph, app, source=source, scheduler=args.scheduler,
                      checks=sanitize, metrics=metrics)
        scheduler_name = run.scheduler
        values = run.values
        seconds, gteps = run.seconds, run.gteps
        iterations = run.iterations
        edges_traversed = run.edges_traversed
        reorder_commits = run.reorder_commits
        profiler = run.profiler
        sanitizer = run.checks
    print(f"{args.app} on {graph} with {scheduler_name}"
          + (f" from source {source}" if source is not None else ""))
    print(f"  simulated time   {seconds * 1e3:10.4f} ms")
    print(f"  iterations       {iterations:10d}")
    print(f"  edges traversed  {edges_traversed:10d}")
    print(f"  traversal speed  {gteps:10.3f} GTEPS")
    if reorder_commits:
        print(f"  reorder commits  {reorder_commits:10d}")
    if args.profile:
        print("profile:")
        for line in profiler.format_summary().splitlines():
            print(f"  {line}")
    if args.validate:
        from repro.validate import validate_run
        validate_run(graph, args.app, values, source,
                     weights=getattr(app, "weights", None))
        print("  validation: results match the reference implementation")
    if args.emit_metrics:
        assert metrics is not None
        # The registry mirrors the run's profiler exactly (the ligra
        # path has no pipeline instrumentation, so fold it here; the
        # snapshot semantics make this a no-op for instrumented paths).
        metrics.fold_profiler(profiler)
        metrics.set_gauge("run.simulated_seconds", seconds)
        metrics.set_gauge("run.gteps", gteps)
        out = write_json(metrics, args.emit_metrics)
        print(f"  metrics exported to {out}")
    if sanitizer is not None:
        print("sanitizer:")
        for line in sanitizer.format_summary().splitlines():
            print(f"  {line}")
        if args.sanitize_report is not None:
            sanitizer.write_json(args.sanitize_report)
            print(f"  report written to {args.sanitize_report}")
        if not sanitizer.clean:
            return 3
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    with open(args.path, encoding="utf-8") as handle:
        report = report_from_json(handle.read())
    try:
        print(format_report(report))
    except BrokenPipeError:
        # Downstream pager/head closed early — not an error.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_reorder(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    before = sector_span(graph)
    if args.method == "sage":
        rounds = sage_reorder_rounds(graph, args.rounds,
                                     checkpoints=(args.rounds,))
        after_graph = rounds.snapshots[args.rounds]
        seconds = sum(rounds.per_round_seconds)
        label = f"sage x{args.rounds} rounds"
    elif args.method == "random":
        after_graph = graph.permute(random_perm(graph.num_nodes))
        seconds = 0.0
        label = "random"
    else:
        timed = timed_ordering(args.method, REORDER_METHODS[args.method],
                               graph)
        after_graph = graph.permute(timed.perm)
        seconds = timed.seconds
        label = args.method
    after = sector_span(after_graph)
    print(f"{label} on {graph}")
    print(f"  wall-clock cost   {seconds:10.3f} s")
    print(f"  sector span       {before:10.2f} -> {after:.2f} "
          f"({100 * (after - before) / before:+.1f} %)")
    return 0


def cmd_scc(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = strongly_connected_components(graph, SCHEDULERS[args.scheduler])
    sizes = np.bincount(result.labels)
    sizes = np.sort(sizes[sizes > 0])[::-1]
    print(f"SCC decomposition of {graph}")
    print(f"  components       {result.num_components:10d}")
    print(f"  largest SCC      {int(sizes[0]):10d} nodes")
    print(f"  reachability sweeps {result.sweeps:7d} "
          f"(trimmed {result.trimmed} trivial nodes)")
    print(f"  simulated time   {result.seconds * 1e3:10.4f} ms")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name](args.scale)
    print(format_table(rows, f"{args.name} (scale {args.scale})"))
    return 0


def _parse_mix(spec: str) -> dict[str, float]:
    """``bfs=0.8,pr=0.1,sssp=0.1`` -> weight dict."""
    mix: dict[str, float] = {}
    for part in spec.split(","):
        kind, _, weight = part.partition("=")
        mix[kind.strip()] = float(weight)
    return mix


def _audited_baseline(
    graph, requests, scheduler: str, report_path: str | None
) -> tuple[float, bool]:
    """Sequential oracle with the hazard sanitizer auditing every run.

    Returns (total simulated seconds, all-clean).  This is the bench's
    ``--sanitize`` mode: the baseline the speedups are measured against
    is itself certified hazard-free.
    """
    from repro.serve import make_single_app

    seconds = 0.0
    clean = True
    last_checks = None
    for request in requests:
        run = api.run(
            graph, make_single_app(request.app, request.param_dict()),
            source=request.source, scheduler=scheduler, checks=True,
        )
        seconds += run.seconds
        clean = clean and run.clean
        last_checks = run.checks
    if report_path is not None and last_checks is not None:
        last_checks.write_json(report_path)
    return seconds, clean


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import (
        generate_queries,
        open_loop_arrivals,
        publish_report_gauges,
        run_closed_loop,
        sequential_baseline,
        simulate_open_loop,
    )

    graph = _load_graph(args)
    seed = args.seed if args.seed is not None else 0
    mix = _parse_mix(args.mix) if args.mix else None
    requests = generate_queries(
        "bench", graph.num_nodes, args.queries,
        mix=mix, deadline_seconds=args.deadline, seed=seed,
    )
    metrics = MetricsRegistry() if args.emit_metrics else None
    scheduler_factory = SCHEDULERS[args.scheduler]
    sanitize = args.sanitize or args.sanitize_report is not None
    oracle_clean = True
    if args.mode == "open":
        arrivals = open_loop_arrivals(
            args.queries, rate_qps=args.rate, seed=seed
        )
        if sanitize:
            sequential, oracle_clean = _audited_baseline(
                graph, requests, args.scheduler, args.sanitize_report
            )
        else:
            sequential = sequential_baseline(
                graph, requests, scheduler_factory
            )
        _, report = simulate_open_loop(
            graph, requests, arrivals, scheduler_factory,
            batch_window=args.batch_window,
            max_batch_size=args.max_batch_size,
            num_workers=args.workers,
            sequential_seconds=sequential,
            metrics=metrics,
        )
    else:
        _, report = run_closed_loop(
            "bench", graph, requests, scheduler_factory,
            concurrency=args.concurrency,
            batch_window=args.batch_window,
            max_batch_size=args.max_batch_size,
            num_workers=args.workers,
            metrics=metrics,
        )
    unit = "virtual s" if args.mode == "open" else "wall s"
    print(f"serve-bench ({report.mode}) on {graph}")
    statuses = ", ".join(
        f"{k}={v}" for k, v in sorted(report.status_counts.items())
    )
    print(f"  queries           {report.num_queries:10d}   ({statuses})")
    print(f"  batches           {report.num_batches:10d}"
          f"   occupancy {report.batch_occupancy_mean:.2f}")
    print(f"  makespan          {report.makespan_seconds:10.4f} {unit}")
    print(f"  throughput        {report.throughput_qps:10.2f} qps")
    print(f"  latency p50/95/99 {report.latency_p50:10.4f}"
          f" / {report.latency_p95:.4f} / {report.latency_p99:.4f} {unit}")
    if report.sequential_seconds > 0:
        print(f"  device time       {report.sim_seconds_total:10.6f} s"
              f"   (sequential {report.sequential_seconds:.6f} s)")
        print(f"  speedup vs 1-at-a-time {report.speedup_vs_sequential:7.2f}x")
    else:
        print("  speedup vs 1-at-a-time     n/a (wall-clock mode)")
    if args.emit_metrics:
        assert metrics is not None
        publish_report_gauges(metrics, report)
        out = write_json(metrics, args.emit_metrics)
        print(f"  metrics exported to {out}")
    if sanitize:
        print(f"  sanitizer (oracle runs): "
              f"{'clean' if oracle_clean else 'FINDINGS'}")
        if not oracle_clean:
            return 3
    return 0


def cmd_cluster_bench(args: argparse.Namespace) -> int:
    from repro.serve import (
        AdmissionConfig,
        PipelineConfig,
        generate_queries,
        open_loop_arrivals,
        sequential_baseline,
        simulate_cluster_open_loop,
        simulate_open_loop,
        skew_sources,
    )

    graph = _load_graph(args)
    seed = args.seed if args.seed is not None else 0
    mix = _parse_mix(args.mix) if args.mix else None
    requests = generate_queries(
        "bench", graph.num_nodes, args.queries,
        mix=mix, deadline_seconds=args.deadline, seed=seed,
    )
    if args.hot_fraction > 0:
        requests = skew_sources(
            requests,
            hot_set_size=args.hot_set,
            hot_fraction=args.hot_fraction,
            num_nodes=graph.num_nodes,
            seed=seed,
        )
    arrivals = open_loop_arrivals(args.queries, rate_qps=args.rate, seed=seed)
    metrics = MetricsRegistry() if args.emit_metrics else None
    scheduler_factory = SCHEDULERS[args.scheduler]
    sanitize = args.sanitize or args.sanitize_report is not None
    oracle_clean = True
    if sanitize:
        _, oracle_clean = _audited_baseline(
            graph, requests, args.scheduler, args.sanitize_report
        )
    # The comparison point: the identical trace through one broker.
    _, single = simulate_open_loop(
        graph, requests, arrivals, scheduler_factory,
        batch_window=args.batch_window,
        max_batch_size=args.max_batch_size,
        sequential_seconds=sequential_baseline(
            graph, requests, scheduler_factory
        ),
    )
    admission = AdmissionConfig(
        rate_qps=args.rate_limit,
        burst=args.burst,
        max_concurrency=args.max_concurrency,
    )
    pipeline = PipelineConfig(
        in_flight=args.in_flight,
        num_streams=args.streams,
        prefetch_depth=args.prefetch_depth,
    )
    _, report = simulate_cluster_open_loop(
        {"bench": graph}, requests, arrivals, scheduler_factory,
        num_replicas=args.replicas,
        routing=args.routing,
        batch_window=args.batch_window,
        max_batch_size=args.max_batch_size,
        cache_capacity=args.cache_capacity,
        admission=admission,
        pipeline=pipeline,
        single_broker_seconds=single.sim_seconds_total,
        metrics=metrics,
    )
    print(f"cluster-bench on {graph} "
          f"({report.num_replicas} replicas, {report.routing} routing)")
    statuses = ", ".join(
        f"{k}={v}" for k, v in sorted(report.status_counts.items())
    )
    print(f"  queries           {report.num_queries:10d}   ({statuses})")
    print(f"  batches           {report.num_batches:10d}"
          f"   occupancy {report.batch_occupancy_mean:.2f}")
    print(f"  cache             {report.cache_hits:10d} hits"
          f" / {report.cache_misses} misses"
          f"   (ratio {report.cache_hit_ratio:.2f})")
    print(f"  admission         {report.throttled:10d} throttled"
          f" / {report.shed} shed"
          f"   (throttle level {report.throttle_level:.2f})")
    print(f"  makespan          {report.makespan_seconds:10.4f} virtual s")
    print(f"  throughput        {report.throughput_qps:10.2f} qps")
    print(f"  latency p50/95/99 {report.latency_p50:10.4f}"
          f" / {report.latency_p95:.4f} / {report.latency_p99:.4f} virtual s")
    print(f"  device time       {report.sim_seconds_total:10.6f} s"
          f"   (single broker {report.single_broker_seconds:.6f} s)")
    print(f"  replica occupancy {report.replica_occupancy_mean:10.2f}")
    if report.pipeline_enabled:
        print(f"  pipeline busy     {report.pipeline_busy_seconds:10.6f} s"
              f"   (overlap saved {report.pipeline_overlap_saved_seconds:.6f} s,"
              f" peak in-flight {report.pipeline_inflight_peak})")
        print(f"  device-time speedup vs serial "
              f"{report.pipeline_speedup_vs_serial:5.2f}x")
    if report.single_broker_seconds > 0:
        print(f"  speedup vs single broker {report.speedup_vs_single_broker:5.2f}x")
    if args.emit_metrics:
        assert metrics is not None
        out = write_json(metrics, args.emit_metrics)
        print(f"  metrics exported to {out}")
    if sanitize:
        print(f"  sanitizer (oracle runs): "
              f"{'clean' if oracle_clean else 'FINDINGS'}")
        if not oracle_clean:
            return 3
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune import BENCH_WORKLOADS, ProfileStore

    seed = args.seed if args.seed is not None else 0
    metrics = MetricsRegistry() if args.emit_metrics else None

    def trace_path(workload: str) -> str | None:
        if args.trace is None:
            return None
        return os.path.join(args.trace, f"{workload}.trace.json")

    if args.verify is not None:
        store = ProfileStore(args.verify)
        paths = store.list()
        if not paths:
            print(f"no profiles found under {args.verify}", file=sys.stderr)
            return 2
        mismatches = 0
        for path in paths:
            committed = path.read_text(encoding="utf-8")
            profile = store.load(path)
            regenerated = api.tune(
                profile.workload,
                budget=profile.budget,
                seed=profile.seed,
                space=profile.space,
                trace=trace_path(profile.workload),
                metrics=metrics,
            )
            ok = regenerated.canonical_json() == committed
            print(f"  {path.name}: {'ok' if ok else 'MISMATCH'}"
                  f"   (speedup {regenerated.speedup:.3f}x,"
                  f" {regenerated.evaluations} evaluations)")
            if not ok:
                mismatches += 1
        if mismatches:
            print(f"{mismatches} profile(s) did not regenerate identically "
                  "— rerun `repro tune` and commit the result",
                  file=sys.stderr)
            return 1
        print(f"verified {len(paths)} profile(s): bit-identical")
    else:
        if args.workload == "all":
            workloads = [w.name for w in BENCH_WORKLOADS]
        else:
            workloads = [args.workload]
        for name in workloads:
            profile = api.tune(
                name,
                budget=args.budget,
                seed=seed,
                out=args.out,
                trace=trace_path(name),
                metrics=metrics,
            )
            point = profile.point
            print(f"tuned {name} ({profile.category}): "
                  f"speedup {profile.speedup:.3f}x over defaults "
                  f"({profile.evaluations} evaluations)")
            print(f"  batch_window={point.batch_window}"
                  f" max_batch_size={point.max_batch_size}"
                  f" routing={point.routing}")
            print(f"  alpha={point.alpha} beta={point.beta}"
                  f" min_tile={point.min_tile}"
                  f" max_concurrency={point.max_concurrency}")
            print(f"  in_flight={point.in_flight}"
                  f" num_streams={point.num_streams}"
                  f" prefetch_depth={point.prefetch_depth}")
            if args.out is not None:
                print(f"  profile written to "
                      f"{ProfileStore(args.out).path_for(name)}")
    if args.emit_metrics:
        assert metrics is not None
        out = write_json(metrics, args.emit_metrics)
        print(f"  metrics exported to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAGE reproduction toolkit (SIGMOD 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_flags()

    p = sub.add_parser("info", help="graph statistics")
    _add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("generate", help="write a dataset as an edge list")
    p.add_argument("--dataset", choices=DATASETS, default="twitter")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("run", help="run an application", parents=[common])
    _add_graph_args(p)
    p.add_argument("--app", choices=sorted(APPS), default="bfs")
    p.add_argument("--scheduler",
                   choices=sorted(SCHEDULERS) + ["ligra"], default="sage")
    p.add_argument("--source", type=int, default=None,
                   help="traversal source (default: highest-degree node, "
                        "or a seeded random node with --seed)")
    p.add_argument("--profile", action="store_true",
                   help="print simulator counters after the run")
    p.add_argument("--validate", action="store_true",
                   help="check results against the reference oracle")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "report", help="pretty-print an --emit-metrics JSON file"
    )
    p.add_argument("path", help="metrics JSON written by --emit-metrics")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("reorder", help="apply a reordering method")
    _add_graph_args(p)
    p.add_argument("--method",
                   choices=sorted(REORDER_METHODS) + ["sage", "random"],
                   default="sage")
    p.add_argument("--rounds", type=int, default=5,
                   help="rounds for --method sage")
    p.set_defaults(fn=cmd_reorder)

    p = sub.add_parser("scc", help="strongly connected components")
    _add_graph_args(p)
    p.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="sage")
    p.set_defaults(fn=cmd_scc)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", type=float, default=0.3)
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser(
        "serve-bench",
        help="load-test the batched query service (seeded)",
        parents=[common],
    )
    _add_graph_args(p)
    p.add_argument("--mode", choices=("open", "closed"), default="open",
                   help="open: deterministic virtual-time simulator; "
                        "closed: threaded broker, wall-clock")
    p.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="sage")
    p.add_argument("--queries", type=int, default=64)
    p.add_argument("--rate", type=float, default=200.0,
                   help="open-loop Poisson arrival rate (qps)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="closed-loop client threads")
    p.add_argument("--batch-window", type=float, default=0.05,
                   help="micro-batching window (seconds)")
    p.add_argument("--max-batch-size", type=int, default=64)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--mix", default=None,
                   help="app mix, e.g. bfs=0.8,pr=0.1,sssp=0.1")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-query latency budget (seconds)")
    p.set_defaults(fn=cmd_serve_bench)

    p = sub.add_parser(
        "cluster-bench",
        help="benchmark the sharded replica pool vs the single broker",
        parents=[common],
    )
    _add_graph_args(p)
    p.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="sage")
    p.add_argument("--queries", type=int, default=64)
    p.add_argument("--rate", type=float, default=100.0,
                   help="open-loop Poisson arrival rate (qps)")
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--routing", choices=("round_robin", "least_outstanding",
                                         "affinity"),
                   default="affinity")
    p.add_argument("--cache-capacity", type=int, default=1024,
                   help="result-cache entries (0 disables caching)")
    p.add_argument("--rate-limit", type=float, default=None,
                   help="per-client token-bucket rate (qps; default: off)")
    p.add_argument("--burst", type=float, default=16.0,
                   help="token-bucket burst capacity")
    p.add_argument("--max-concurrency", type=int, default=64,
                   help="AIMD concurrency limiter ceiling")
    p.add_argument("--batch-window", type=float, default=0.05,
                   help="micro-batching window (seconds)")
    p.add_argument("--max-batch-size", type=int, default=64)
    p.add_argument("--hot-fraction", type=float, default=0.8,
                   help="fraction of source-bearing queries redrawn from "
                        "the hot set (0 disables skew)")
    p.add_argument("--hot-set", type=int, default=8,
                   help="hot-set size for the skewed workload")
    p.add_argument("--mix", default=None,
                   help="app mix, e.g. bfs=0.5,sssp=0.4,pr=0.1")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-query latency budget (seconds)")
    p.add_argument("--in-flight", type=int, default=1,
                   help="pipelined batches concurrently resident per "
                        "replica device (1 = batch-at-a-time)")
    p.add_argument("--streams", type=int, default=1,
                   help="compute streams per replica device")
    p.add_argument("--prefetch-depth", type=int, default=0,
                   help="iterations of out-of-core prefetch lookahead")
    p.set_defaults(fn=cmd_cluster_bench)

    p = sub.add_parser(
        "tune",
        help="search the tuning space against the deterministic cost "
             "model; save or verify tuned profiles",
        parents=[common],
    )
    p.add_argument("--workload", default="all",
                   help="tuning workload name, or 'all' (default)")
    p.add_argument("--budget", type=int, default=32,
                   help="UCB search rollouts per workload")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write tuned profiles into this directory "
                        "(canonical JSON, one file per workload)")
    p.add_argument("--trace", default=None, metavar="DIR",
                   help="write per-workload search traces (JSON) here")
    p.add_argument("--verify", default=None, metavar="DIR",
                   help="regenerate every profile in DIR from its "
                        "embedded seed/budget/space and fail unless "
                        "byte-identical (exit 1 on mismatch)")
    p.set_defaults(fn=cmd_tune)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    race_check = bool(
        getattr(args, "race_check", False)
        or getattr(args, "race_report", None) is not None
    )
    if not race_check:
        return args.fn(args)
    # One detector spans the whole command: every lock, queue and
    # thread the serving stack creates underneath is tracked, and the
    # happens-before report prints after the command's own output.
    from repro.analysis.races import RaceDetector
    from repro.analysis.races import instrument as races_instrument

    detector = RaceDetector()
    races_instrument.activate(detector)
    try:
        code = int(args.fn(args))
    finally:
        races_instrument.deactivate()
        detector.finalize()
    for line in detector.format_summary().splitlines():
        print(line)
    if args.race_report is not None:
        detector.write_json(args.race_report)
        print(f"  race report written to {args.race_report}")
    if code == 0 and not detector.clean:
        return 3
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
