"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``info``      — Table-1 style statistics for a dataset or edge-list file
* ``generate``  — write a synthetic dataset as a SNAP edge list
* ``run``       — run an application with a chosen scheduler, print timing
  (``--emit-metrics PATH`` exports the hierarchical span/metrics JSON)
* ``report``    — pretty-print a metrics JSON written by ``--emit-metrics``
* ``reorder``   — apply a reordering method, report locality + cost
* ``scc``       — strongly-connected-component decomposition
* ``experiment``— regenerate one paper table/figure from the harness
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.apps import (
    BCApp,
    BFSApp,
    ConnectedComponentsApp,
    LabelPropagationApp,
    PageRankApp,
    SSSPApp,
)
from repro.apps.scc import strongly_connected_components
from repro.baselines import (
    B40CScheduler,
    GunrockScheduler,
    LigraRunner,
    ThreadPerNodeScheduler,
    TigrScheduler,
)
from repro.bench import (
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    format_table,
    sage_reorder_rounds,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.core import SageScheduler, run_app
from repro.graph import datasets, degree_stats, id_locality, io, sector_span
from repro.obs import (
    MetricsRegistry,
    format_report,
    report_from_json,
    write_json,
)
from repro.graph.csr import CSRGraph
from repro.reorder import (
    bfs_order,
    degree_order,
    gorder_order,
    llp_order,
    random_perm,
    rcm_order,
    timed_ordering,
)

DATASETS = ("uk-2002", "brain", "ljournal", "twitter", "friendster")

APPS = {
    "bfs": BFSApp,
    "bc": BCApp,
    "pr": lambda: PageRankApp(max_iterations=20),
    "cc": ConnectedComponentsApp,
    "sssp": SSSPApp,
    "lp": LabelPropagationApp,
}

SCHEDULERS = {
    "sage": SageScheduler,
    "sage-sr": lambda: SageScheduler(sampling_reorder=True),
    "tpn": ThreadPerNodeScheduler,
    "b40c": B40CScheduler,
    "tigr": TigrScheduler,
    "gunrock": GunrockScheduler,
}

EXPERIMENTS = {
    "table1": lambda scale: table1_rows(scale),
    "table2": lambda scale: table2_rows(scale),
    "table3": lambda scale: table3_rows(scale),
    "fig6": lambda scale: fig6_rows(scale, num_sources=2),
    "fig7": lambda scale: fig7_rows(scale, num_sources=2),
    "fig8": lambda scale: fig8_rows(scale),
    "fig9": lambda scale: fig9_rows(scale),
    "fig10": lambda scale: fig10_rows(scale, num_sources=2),
}

REORDER_METHODS = {
    "rcm": rcm_order,
    "llp": llp_order,
    "gorder": gorder_order,
    "degree": degree_order,
    "bfs": bfs_order,
}


def _load_graph(args: argparse.Namespace) -> CSRGraph:
    if args.file:
        return io.read_edge_list(args.file)
    return datasets.by_name(args.dataset, args.scale).graph


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASETS, default="twitter",
                        help="built-in synthetic dataset stand-in")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor")
    parser.add_argument("--file", default=None,
                        help="read a SNAP edge list instead")


def cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = degree_stats(graph)
    print(graph)
    print(f"  avg degree     {stats.mean:10.2f}")
    print(f"  median degree  {stats.median:10.2f}")
    print(f"  max degree     {stats.maximum:10d}")
    print(f"  degree gini    {stats.gini:10.3f}")
    print(f"  p99 degree     {stats.p99:10.1f}")
    print(f"  id locality    {id_locality(graph, 64):10.3f}")
    print(f"  sector span    {sector_span(graph):10.2f}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    graph = datasets.by_name(args.dataset, args.scale).graph
    io.write_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    make_app = APPS[args.app]
    source = args.source
    if source is None and args.app in ("bfs", "bc", "sssp"):
        source = int(np.argmax(graph.out_degrees()))
    app = make_app()
    sanitize = args.sanitize or args.sanitize_report is not None
    sanitizer = None
    if sanitize:
        if args.scheduler == "ligra":
            print("error: --sanitize does not support the ligra runner "
                  "(it bypasses the traversal pipeline)", file=sys.stderr)
            return 2
        from repro.analysis import Sanitizer
        sanitizer = Sanitizer()
    metrics = MetricsRegistry() if args.emit_metrics else None
    if args.scheduler == "ligra":
        result = LigraRunner().run(graph, app, source)
    else:
        result = run_app(graph, app, SCHEDULERS[args.scheduler](),
                         source=source, metrics=metrics,
                         sanitizer=sanitizer)
    print(f"{args.app} on {graph} with {result.scheduler_name}"
          + (f" from source {source}" if source is not None else ""))
    print(f"  simulated time   {result.seconds * 1e3:10.4f} ms")
    print(f"  iterations       {result.iterations:10d}")
    print(f"  edges traversed  {result.edges_traversed:10d}")
    print(f"  traversal speed  {result.gteps:10.3f} GTEPS")
    if result.reorder_commits:
        print(f"  reorder commits  {result.reorder_commits:10d}")
    if args.profile:
        print("profile:")
        for line in result.profiler.format_summary().splitlines():
            print(f"  {line}")
    if args.validate:
        from repro.validate import validate_run
        validate_run(graph, args.app, result.result, source,
                     weights=getattr(app, "weights", None))
        print("  validation: results match the reference implementation")
    if args.emit_metrics:
        assert metrics is not None
        # The registry mirrors the run's profiler exactly (the ligra
        # path has no pipeline instrumentation, so fold it here; the
        # snapshot semantics make this a no-op for instrumented paths).
        metrics.fold_profiler(result.profiler)
        metrics.set_gauge("run.simulated_seconds", result.seconds)
        metrics.set_gauge("run.gteps", result.gteps)
        out = write_json(metrics, args.emit_metrics)
        print(f"  metrics exported to {out}")
    if sanitizer is not None:
        print("sanitizer:")
        for line in sanitizer.format_summary().splitlines():
            print(f"  {line}")
        if args.sanitize_report is not None:
            sanitizer.write_json(args.sanitize_report)
            print(f"  report written to {args.sanitize_report}")
        if not sanitizer.clean:
            return 3
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    with open(args.path, encoding="utf-8") as handle:
        report = report_from_json(handle.read())
    try:
        print(format_report(report))
    except BrokenPipeError:
        # Downstream pager/head closed early — not an error.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_reorder(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    before = sector_span(graph)
    if args.method == "sage":
        rounds = sage_reorder_rounds(graph, args.rounds,
                                     checkpoints=(args.rounds,))
        after_graph = rounds.snapshots[args.rounds]
        seconds = sum(rounds.per_round_seconds)
        label = f"sage x{args.rounds} rounds"
    elif args.method == "random":
        after_graph = graph.permute(random_perm(graph.num_nodes))
        seconds = 0.0
        label = "random"
    else:
        timed = timed_ordering(args.method, REORDER_METHODS[args.method],
                               graph)
        after_graph = graph.permute(timed.perm)
        seconds = timed.seconds
        label = args.method
    after = sector_span(after_graph)
    print(f"{label} on {graph}")
    print(f"  wall-clock cost   {seconds:10.3f} s")
    print(f"  sector span       {before:10.2f} -> {after:.2f} "
          f"({100 * (after - before) / before:+.1f} %)")
    return 0


def cmd_scc(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = strongly_connected_components(graph, SCHEDULERS[args.scheduler])
    sizes = np.bincount(result.labels)
    sizes = np.sort(sizes[sizes > 0])[::-1]
    print(f"SCC decomposition of {graph}")
    print(f"  components       {result.num_components:10d}")
    print(f"  largest SCC      {int(sizes[0]):10d} nodes")
    print(f"  reachability sweeps {result.sweeps:7d} "
          f"(trimmed {result.trimmed} trivial nodes)")
    print(f"  simulated time   {result.seconds * 1e3:10.4f} ms")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name](args.scale)
    print(format_table(rows, f"{args.name} (scale {args.scale})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAGE reproduction toolkit (SIGMOD 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="graph statistics")
    _add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("generate", help="write a dataset as an edge list")
    p.add_argument("--dataset", choices=DATASETS, default="twitter")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("run", help="run an application")
    _add_graph_args(p)
    p.add_argument("--app", choices=sorted(APPS), default="bfs")
    p.add_argument("--scheduler",
                   choices=sorted(SCHEDULERS) + ["ligra"], default="sage")
    p.add_argument("--source", type=int, default=None)
    p.add_argument("--profile", action="store_true",
                   help="print simulator counters after the run")
    p.add_argument("--validate", action="store_true",
                   help="check results against the reference oracle")
    p.add_argument("--emit-metrics", metavar="PATH", default=None,
                   help="write the hierarchical span/metrics JSON here")
    p.add_argument("--sanitize", action="store_true",
                   help="audit the run with the kernel hazard sanitizer "
                        "(exit code 3 if it finds hazards)")
    p.add_argument("--sanitize-report", metavar="PATH", default=None,
                   help="write the sanitizer findings JSON here "
                        "(implies --sanitize)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "report", help="pretty-print an --emit-metrics JSON file"
    )
    p.add_argument("path", help="metrics JSON written by --emit-metrics")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("reorder", help="apply a reordering method")
    _add_graph_args(p)
    p.add_argument("--method",
                   choices=sorted(REORDER_METHODS) + ["sage", "random"],
                   default="sage")
    p.add_argument("--rounds", type=int, default=5,
                   help="rounds for --method sage")
    p.set_defaults(fn=cmd_reorder)

    p = sub.add_parser("scc", help="strongly connected components")
    _add_graph_args(p)
    p.add_argument("--scheduler", choices=sorted(SCHEDULERS), default="sage")
    p.set_defaults(fn=cmd_scc)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", type=float, default=0.3)
    p.set_defaults(fn=cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
