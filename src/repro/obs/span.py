"""Nestable span timers — the tracing half of :mod:`repro.obs`.

A :class:`Span` measures one named region of a run (a pipeline run, an
iteration, a kernel) and carries two kinds of data:

* **attributes** — identifying tags fixed at creation (app name, GPU id,
  iteration index),
* **values** — measurements attached while the span is open (simulated
  cycles, transferred bytes), via :meth:`Span.set` / :meth:`Span.add`.

Spans nest through the context-manager protocol: entering a span pushes
it on the owning registry's *per-thread* stack, so concurrently running
threads each build their own tree and never contend except when a
finished root is published.  Wall time comes from ``perf_counter``;
simulated time is attached explicitly as a value, keeping the two clocks
(host vs modeled GPU) separate in reports.

Exception safety: a span that exits through an exception still closes,
records ``error`` in its attributes and re-raises — an aborted traversal
leaves a readable partial trace instead of a corrupted stack.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry


class Span:
    """One timed, attributed region of a run."""

    __slots__ = (
        "name", "attributes", "values", "children",
        "duration_s", "_registry", "_start",
    )

    def __init__(
        self, registry: "MetricsRegistry", name: str,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.values: dict[str, float] = {}
        self.children: list[Span] = []
        self.duration_s = 0.0
        self._registry = registry
        self._start = 0.0

    # -- measurement ---------------------------------------------------

    def set(self, key: str, value: float) -> None:
        """Attach (or overwrite) one measurement on this span."""
        self.values[key] = float(value)

    def add(self, key: str, amount: float = 1.0) -> None:
        """Accumulate into one measurement on this span."""
        self.values[key] = self.values.get(key, 0.0) + float(amount)

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "Span":
        self._registry._open_span(self)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.duration_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.attributes["error"] = f"{exc_type.__name__}: {exc}"
        self._registry._close_span(self)
        return False  # never swallow

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view (JSON-ready), recursing into children."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "values": dict(self.values),
            "duration_s": self.duration_s,
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self, _path: str = "") -> "list[tuple[str, Span]]":
        """Depth-first ``(path, span)`` pairs; paths are ``/``-joined."""
        path = f"{_path}/{self.name}" if _path else self.name
        out: list[tuple[str, Span]] = [(path, self)]
        for child in self.children:
            out.extend(child.walk(path))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class NullSpan:
    """Shared no-op span handed out by disabled registries.

    A single module-level instance (:data:`NULL_SPAN`) serves every
    call site, so the disabled path allocates nothing and costs one
    attribute lookup plus a method call — the "zero-cost when disabled"
    contract instrumented code relies on.
    """

    __slots__ = ()

    def set(self, key: str, value: float) -> None:
        pass

    def add(self, key: str, amount: float = 1.0) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


NULL_SPAN = NullSpan()
