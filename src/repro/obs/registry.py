"""The metrics registry — counters, gauges and span trees for one run.

This is the cross-layer observability spine (the stand-in for the Nsight
profiling the paper's Section 7 evaluation is built on): every layer of
the stack — the traversal pipeline, the SAGE scheduler, the out-of-core
and multi-GPU runners, and the simulated device's :class:`Profiler` —
reports into one :class:`MetricsRegistry`, so a single run yields a
single hierarchical report (run → iteration → kernel → cost-model
breakdown, plus transfer volumes and steal counts).

Three metric kinds:

* **counters** — monotone accumulations (``count``) or snapshots
  (``set_counter``); summed by :meth:`merge`.
* **gauges** — last-written point-in-time values; overwritten by merge.
* **spans** — nested timed regions (see :mod:`repro.obs.span`).

Thread safety: counters/gauges/published roots are lock-protected; open
span stacks are per-thread.  Disabled registries hand out a shared no-op
span and return before touching any dict, so instrumentation left in hot
loops is effectively free when observability is off.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any

from repro.obs.span import NULL_SPAN, NullSpan, Span

#: Raw accumulator fields of :class:`repro.gpusim.profiler.Profiler`
#: mirrored into the registry by :meth:`MetricsRegistry.fold_profiler`.
#: Kept as an explicit tuple so drift against the dataclass is caught by
#: the fold itself (``getattr`` raises) and by the obs test suite.
PROFILER_COUNTER_FIELDS = (
    "kernels", "total_cycles", "compute_cycles", "memory_cycles",
    "overhead_cycles", "launch_cycles", "active_edges",
    "issued_lane_cycles", "value_sector_touches", "csr_sector_touches",
    "dram_bytes", "atomic_conflicts", "memory_bound_kernels",
)


class MetricsRegistry:
    """Counters, gauges and span trees for one observed run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Scalar metrics
    # ------------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Accumulate into a named counter."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + float(amount)

    def set_counter(self, name: str, value: float) -> None:
        """Snapshot-assign a counter (idempotent; merge still sums)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = float(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span | NullSpan:
        """Create a span; use as ``with registry.span("iteration") as sp``.

        Returns the shared :data:`NULL_SPAN` when disabled, so callers
        never branch on :attr:`enabled` themselves.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, dict(attributes))

    def _stack(self) -> list[Span]:
        stack: list[Span] | None = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open_span(self, span: Span) -> None:
        self._stack().append(span)

    def _close_span(self, span: Span) -> None:
        stack = self._stack()
        # Closing out of order (a caller kept a span open across a
        # sibling's lifetime) unwinds to the matching entry so the tree
        # stays consistent instead of corrupting the stack.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    @property
    def roots(self) -> list[Span]:
        """Completed top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    # ------------------------------------------------------------------
    # Profiler integration (the gpusim leaf level)
    # ------------------------------------------------------------------

    def fold_profiler(self, profiler: Any, prefix: str = "gpusim") -> None:
        """Mirror a :class:`~repro.gpusim.profiler.Profiler` into counters.

        Snapshot semantics (``set_counter``): the profiler is itself the
        accumulator, so folding the same device twice is idempotent and
        the registry's ``{prefix}.*`` counters always equal the profiler
        field-for-field — the exactness contract the golden tests pin.
        Free-form profiler events land under ``{prefix}.event.*``.
        """
        if not self.enabled:
            return
        for name in PROFILER_COUNTER_FIELDS:
            self.set_counter(f"{prefix}.{name}", float(getattr(profiler, name)))
        for event, value in getattr(profiler, "events", {}).items():
            self.set_counter(f"{prefix}.event.{event}", float(value))
        for derived in ("lane_efficiency", "overhead_fraction"):
            value = getattr(profiler, derived, None)
            if value is not None:
                self.set_gauge(f"{prefix}.{derived}", float(value))

    # ------------------------------------------------------------------
    # Merge / report
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry in: counters sum, gauges last-write-win,
        span roots append.  ``prefix`` namespaces the incoming scalar
        names (``gpu0.`` for per-device registries in multi-GPU runs).
        """
        if not self.enabled:
            return
        with other._lock:
            counters = dict(other.counters)
            gauges = dict(other.gauges)
            roots = list(other._roots)
        with self._lock:
            for name, value in counters.items():
                key = prefix + name
                self.counters[key] = self.counters.get(key, 0.0) + value
            for name, value in gauges.items():
                self.gauges[prefix + name] = value
            self._roots.extend(roots)

    def report(self) -> dict[str, Any]:
        """The full hierarchical report as a JSON-ready dict."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "spans": [root.to_dict() for root in self._roots],
            }

    def reset(self) -> None:
        """Drop all collected metrics (the enabled flag is kept)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self._roots.clear()
        self._local = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (
            f"MetricsRegistry({state}, {len(self.counters)} counters, "
            f"{len(self._roots)} root spans)"
        )


#: Shared disabled registry: the default sink for instrumented code paths
#: when no registry is supplied, keeping call sites unconditional.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def profiler_field_names() -> tuple[str, ...]:
    """Dataclass fields of the simulator profiler (used by tests to keep
    :data:`PROFILER_COUNTER_FIELDS` from drifting)."""
    from repro.gpusim.profiler import Profiler

    return tuple(
        f.name for f in dataclasses.fields(Profiler) if f.name != "events"
    )
