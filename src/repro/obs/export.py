"""Exporters: machine-readable views of a :class:`MetricsRegistry`.

Two formats:

* **JSON** — the full hierarchical report (counters, gauges, span tree),
  the format ``repro run --emit-metrics`` writes and CI diffs across
  PRs.  Round-trips through :func:`report_from_json`.
* **line protocol** — influx-style flat lines, one metric per line, for
  piping into time-series tooling.  Spans are flattened to their
  ``/``-joined path with wall duration and attached values as fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, cast

from repro.obs.registry import MetricsRegistry

SCHEMA_VERSION = 1


def report_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """The registry's report plus schema metadata."""
    report = registry.report()
    report["schema_version"] = SCHEMA_VERSION
    return report


def to_json(registry: MetricsRegistry, *, indent: int | None = 2) -> str:
    """Serialize the full report to a JSON string."""
    return json.dumps(report_to_dict(registry), indent=indent, sort_keys=True)


def write_json(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the JSON report to ``path`` and return it."""
    out = Path(path)
    out.write_text(to_json(registry) + "\n", encoding="utf-8")
    return out


def report_from_json(text: str) -> dict[str, Any]:
    """Parse a report produced by :func:`to_json` back to a dict."""
    return cast("dict[str, Any]", json.loads(text))


def _escape(tag: str) -> str:
    """Escape line-protocol tag values (spaces, commas, equals)."""
    return tag.replace(" ", r"\ ").replace(",", r"\,").replace("=", r"\=")


def to_line_protocol(registry: MetricsRegistry) -> list[str]:
    """Flatten the registry to influx-style lines.

    ``repro_counter,name=<n> value=<v>`` for scalars and
    ``repro_span,path=<run/iteration/kernel> duration_s=<v>,...`` for
    spans (attached span values become extra fields).
    """
    lines: list[str] = []
    report = registry.report()
    for kind in ("counters", "gauges"):
        measurement = f"repro_{kind[:-1]}"
        for name, value in report[kind].items():
            lines.append(f"{measurement},name={_escape(name)} value={value}")
    for root in registry.roots:
        for path, span in root.walk():
            fields = {"duration_s": span.duration_s, **span.values}
            body = ",".join(f"{key}={value}" for key, value in fields.items())
            lines.append(f"repro_span,path={_escape(path)} {body}")
    return lines


def format_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of a report dict (``repro report``)."""
    out: list[str] = []
    counters = report.get("counters", {})
    gauges = report.get("gauges", {})
    if counters:
        out.append("counters:")
        out.extend(f"  {name:40s} {value:>16.3f}"
                   for name, value in counters.items())
    if gauges:
        out.append("gauges:")
        out.extend(f"  {name:40s} {value:>16.6f}"
                   for name, value in gauges.items())
    spans = report.get("spans", [])
    if spans:
        out.append("spans:")
        for root in spans:
            out.extend(_format_span(root, depth=1))
    return "\n".join(out)


def _format_span(span: dict[str, Any], depth: int) -> list[str]:
    attrs = ", ".join(
        f"{key}={value}" for key, value in span.get("attributes", {}).items()
    )
    values = ", ".join(
        f"{key}={value:.3f}" for key, value in span.get("values", {}).items()
    )
    line = f"{'  ' * depth}{span['name']}"
    if attrs:
        line += f" [{attrs}]"
    line += f"  wall={span.get('duration_s', 0.0) * 1e3:.3f} ms"
    if values:
        line += f"  ({values})"
    lines = [line]
    children = span.get("children", [])
    # Collapse long runs of sibling iterations: show first/last few.
    if len(children) > 8 and all(
        child.get("name") == children[0].get("name") for child in children
    ):
        shown = children[:3] + children[-2:]
        for child in children[:3]:
            lines.extend(_format_span(child, depth + 1))
        lines.append(f"{'  ' * (depth + 1)}... "
                     f"({len(children) - len(shown)} more "
                     f"{children[0]['name']} spans)")
        for child in children[-2:]:
            lines.extend(_format_span(child, depth + 1))
    else:
        for child in children:
            lines.extend(_format_span(child, depth + 1))
    return lines
