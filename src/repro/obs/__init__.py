"""Cross-layer observability: metrics registry, span tracing, exporters.

One :class:`MetricsRegistry` travels with a run through every layer —
pipeline, scheduler, out-of-core and multi-GPU runners — with the
simulated device's profiler folded in as the leaf level, and exports the
whole hierarchy as JSON (``repro run --emit-metrics``) or line protocol.
"""

from repro.obs.export import (
    format_report,
    report_from_json,
    report_to_dict,
    to_json,
    to_line_protocol,
    write_json,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    PROFILER_COUNTER_FIELDS,
    MetricsRegistry,
    profiler_field_names,
)
from repro.obs.span import NULL_SPAN, NullSpan, Span

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullSpan",
    "PROFILER_COUNTER_FIELDS",
    "Span",
    "format_report",
    "profiler_field_names",
    "report_from_json",
    "report_to_dict",
    "to_json",
    "to_line_protocol",
    "write_json",
]
