"""Canonical registry of every metric and span name the library emits.

Every ``metrics.count`` / ``set_counter`` / ``set_gauge`` / ``span`` call
site in ``src/repro`` must use a name that resolves here; the SAGE002
lint rule (:mod:`repro.analysis.lint`) enforces it at lint time and
``tests/test_obs_names.py`` cross-checks the registry against the actual
emit sites and the documentation, so a typo'd ``sage.*`` counter fails CI
instead of silently starting a second, never-read time series.

Two kinds of entries:

* **static names** — the exact literals below (:data:`COUNTERS`,
  :data:`GAUGES`, :data:`SPANS`), grouped per emitting subsystem so
  drift reports point at the owner.
* **dynamic families** — names constructed at runtime
  (:data:`DYNAMIC_COUNTER_PREFIXES` etc.): the ``gpusim.*`` mirror of
  the simulator profiler (field names are pinned separately by
  :data:`~repro.obs.registry.PROFILER_COUNTER_FIELDS`), free-form
  profiler events under ``gpusim.event.*``, and the ``gpu<N>.``
  namespaces that :meth:`~repro.obs.registry.MetricsRegistry.merge`
  prepends for per-device registries in multi-GPU runs.
"""

from __future__ import annotations

import re

#: ``sage.*`` counters emitted by the SAGE scheduler (``repro.core.engine``).
#: This is the single canonical list; the engine's emit sites and the
#: trajectory-benchmark carry-list are asserted against it.
SAGE_COUNTERS: frozenset[str] = frozenset(
    {
        "sage.tiles",
        "sage.tiles_expanded",
        "sage.tiles_stolen_resident",
        "sage.elections",
        "sage.decomp_cache_hits",
        "sage.edge_accounting_cache_hits",
    }
)

#: Counters emitted by the traversal pipeline (``repro.core.pipeline``).
PIPELINE_COUNTERS: frozenset[str] = frozenset(
    {
        "pipeline.runs",
        "pipeline.iterations",
        "pipeline.edges_traversed",
        "pipeline.reorder_commits",
    }
)

#: Counters emitted by the pipelined executor (``repro.serve.pipelined``):
#: per-batch DAG compilation and in-flight window bookkeeping.
PIPELINE_EXEC_COUNTERS: frozenset[str] = frozenset(
    {
        "pipeline.batches",
        "pipeline.queued_batches",
    }
)

#: Counters emitted by the stream/event scheduler layer
#: (``repro.serve.pipelined`` admitting ``repro.gpusim.streams`` DAGs):
#: node population of every compiled batch DAG.
STREAM_COUNTERS: frozenset[str] = frozenset(
    {
        "stream.kernel_nodes",
        "stream.transfer_nodes",
        "stream.host_nodes",
    }
)

#: Counters emitted by sampling-based reordering (``repro.core.reorder``).
REORDER_COUNTERS: frozenset[str] = frozenset(
    {
        "reorder.rounds",
        "reorder.moved_nodes",
        "reorder.sampled_pairs",
        "reorder.sampled_tiles",
    }
)

#: Counters emitted by the out-of-core runners (``repro.outofcore``).
OOC_COUNTERS: frozenset[str] = frozenset(
    {
        "ooc.bytes_transferred",
        "ooc.requests",
        "ooc.transfer_seconds",
    }
)

#: Counters emitted by the multi-GPU runner (``repro.multigpu``).
MULTIGPU_COUNTERS: frozenset[str] = frozenset(
    {
        "multigpu.messages",
        "multigpu.comm_seconds",
        "multigpu.iterations",
    }
)

#: Counters emitted by the kernel hazard sanitizer
#: (``repro.analysis.sanitizer``): one per finding code plus bookkeeping.
SANITIZER_COUNTERS: frozenset[str] = frozenset(
    {
        "sanitizer.findings",
        "sanitizer.levels_checked",
        "sanitizer.edges_checked",
        "sanitizer.kernels_checked",
        "sanitizer.write_write_hazard",
        "sanitizer.oob_vertex_index",
        "sanitizer.oob_edge_index",
        "sanitizer.dtype_overflow",
        "sanitizer.frontier_duplicates",
        "sanitizer.nonmonotone_level",
        "sanitizer.invalid_permutation",
        "sanitizer.work_unit_gap",
        "sanitizer.kernel_stats_inconsistent",
    }
)

#: Counters emitted by the concurrency sanitizer
#: (``repro.analysis.races``): one per finding kind plus bookkeeping.
RACES_COUNTERS: frozenset[str] = frozenset(
    {
        "races.findings",
        "races.threads_tracked",
        "races.locks_tracked",
        "races.acquires",
        "races.accesses_checked",
        "races.write_write_race",
        "races.read_write_race",
        "races.lock_order_inversion",
        "races.blocking_while_holding",
        "races.unjoined_thread",
    }
)

#: Counters emitted by the batched query service (``repro.serve``).
SERVE_COUNTERS: frozenset[str] = frozenset(
    {
        "serve.requests",
        "serve.accepted",
        "serve.shed",
        "serve.batches",
        "serve.batched_queries",
        "serve.responses",
        "serve.timeouts",
        "serve.errors",
        "serve.retries",
    }
)

#: Counters emitted by the cluster tier (``repro.serve.cluster`` plus
#: its admission/cache collaborators in ``repro.serve``).
CLUSTER_COUNTERS: frozenset[str] = frozenset(
    {
        "cluster.requests",
        "cluster.admitted",
        "cluster.throttled",
        "cluster.shed",
        "cluster.routed",
        "cluster.cache_hits",
        "cluster.cache_misses",
        "cluster.cache_evictions",
        "cluster.cache_invalidations",
        "cluster.graph_updates",
    }
)

#: Counters emitted by the sampling workload family as batches of
#: walk/node2vec/khop/sppr queries coalesce into combined-app runs
#: (``repro.serve.executor``).
SAMPLING_COUNTERS: frozenset[str] = frozenset(
    {
        "sampling.queries",
        "sampling.coalesced_batches",
        "sampling.batched_sources",
        "sampling.walks",
        "sampling.khop_nodes",
    }
)

#: Counters emitted as structured graph deltas flow from
#: ``DynamicGraph.flush`` through the ``GraphStore`` fan-out to the
#: selective result cache and replica CSR patching
#: (``repro.serve.cache`` / ``repro.serve.broker``).
DELTA_COUNTERS: frozenset[str] = frozenset(
    {
        "delta.flushes",
        "delta.edges_inserted",
        "delta.edges_deleted",
        "delta.cache_entries_kept",
        "delta.cache_entries_purged",
        "delta.replica_patches",
    }
)

#: Counters emitted by the delta-aware incremental engines
#: (``repro.apps.incremental``).
INCREMENTAL_COUNTERS: frozenset[str] = frozenset(
    {
        "incremental.updates",
        "incremental.repairs",
        "incremental.full_recomputes",
        "incremental.noops",
        "incremental.affected_vertices",
        "incremental.residual_pushes",
    }
)

#: Counters emitted by the unified facade (``repro.api``).
API_COUNTERS: frozenset[str] = frozenset(
    {
        "api.runs",
        "api.serve_sessions",
        "api.cluster_sessions",
        "api.bench_runs",
        "api.tune_runs",
        "api.profiles_applied",
        "api.updates",
    }
)

#: Counters emitted by the self-tuning subsystem (``repro.tune``).
TUNE_COUNTERS: frozenset[str] = frozenset(
    {
        "tune.searches",
        "tune.rollouts",
        "tune.evaluations",
        "tune.eval_cache_hits",
        "tune.profiles_saved",
        "tune.profiles_loaded",
        "tune.profiles_skipped",
        "tune.profile_matches",
    }
)

#: All statically-known counter names.
COUNTERS: frozenset[str] = (
    SAGE_COUNTERS
    | PIPELINE_COUNTERS
    | PIPELINE_EXEC_COUNTERS
    | STREAM_COUNTERS
    | REORDER_COUNTERS
    | OOC_COUNTERS
    | MULTIGPU_COUNTERS
    | SANITIZER_COUNTERS
    | RACES_COUNTERS
    | SERVE_COUNTERS
    | CLUSTER_COUNTERS
    | SAMPLING_COUNTERS
    | DELTA_COUNTERS
    | INCREMENTAL_COUNTERS
    | API_COUNTERS
    | TUNE_COUNTERS
)

#: Gauges emitted by single-run entry points (CLI / benchmarks).
RUN_GAUGES: frozenset[str] = frozenset(
    {
        "run.simulated_seconds",
        "run.gteps",
    }
)

#: Gauges emitted by the batched query service (``repro.serve``).
SERVE_GAUGES: frozenset[str] = frozenset(
    {
        "serve.queue_depth_peak",
        "serve.batch_occupancy_mean",
        "serve.latency_p50",
        "serve.latency_p95",
        "serve.latency_p99",
        "serve.throughput_qps",
        "serve.speedup_vs_sequential",
    }
)

#: Gauges emitted by the cluster tier (``repro.serve.cluster``).
CLUSTER_GAUGES: frozenset[str] = frozenset(
    {
        "cluster.cache_hit_ratio",
        "cluster.throttle_level",
        "cluster.concurrency_limit",
        "cluster.replica_occupancy_mean",
        "cluster.latency_p50",
        "cluster.latency_p95",
        "cluster.latency_p99",
        "cluster.throughput_qps",
        "cluster.speedup_vs_single_broker",
    }
)

#: Gauges emitted by the self-tuning subsystem (``repro.tune``).
TUNE_GAUGES: frozenset[str] = frozenset(
    {
        "tune.best_speedup",
    }
)

#: Gauges mirroring a pipelined cluster run's stream-device outcome
#: (``repro.serve.cluster.publish_cluster_gauges``).
PIPELINE_GAUGES: frozenset[str] = frozenset(
    {
        "pipeline.busy_seconds",
        "pipeline.overlap_saved_seconds",
        "pipeline.inflight_peak",
        "pipeline.speedup_vs_serial",
    }
)

#: All statically-known gauge names.
GAUGES: frozenset[str] = (
    RUN_GAUGES | SERVE_GAUGES | CLUSTER_GAUGES | TUNE_GAUGES | PIPELINE_GAUGES
)

#: All statically-known span names.
SPANS: frozenset[str] = frozenset(
    {
        "run",
        "iteration",
        "kernel",
        "ooc.run",
        "multigpu.run",
        "serve.run",
        "serve.batch",
        "serve.request",
        "cluster.run",
        "tune.search",
        "pipeline.batch",
        "incremental.update",
    }
)

#: Dynamic counter families: ``fold_profiler`` mirrors
#: (``gpusim.<field>``, ``gpusim.event.<name>``) and per-device merge
#: namespaces (``gpu<N>.<any registered name>``).
DYNAMIC_COUNTER_PREFIXES: tuple[str, ...] = ("gpusim.",)

#: Dynamic gauge families: ``fold_profiler`` derived gauges.
DYNAMIC_GAUGE_PREFIXES: tuple[str, ...] = ("gpusim.",)

_MERGE_NAMESPACE = re.compile(r"^gpu\d+\.")


def _strip_merge_namespace(name: str) -> str:
    """Drop one ``gpu<N>.`` namespace prepended by registry merges."""
    return _MERGE_NAMESPACE.sub("", name, count=1)


def is_counter(name: str) -> bool:
    """Whether ``name`` is a registered counter (static or dynamic)."""
    name = _strip_merge_namespace(name)
    if name in COUNTERS:
        return True
    return name.startswith(DYNAMIC_COUNTER_PREFIXES)


def is_gauge(name: str) -> bool:
    """Whether ``name`` is a registered gauge (static or dynamic)."""
    name = _strip_merge_namespace(name)
    if name in GAUGES:
        return True
    return name.startswith(DYNAMIC_GAUGE_PREFIXES)


def is_span(name: str) -> bool:
    """Whether ``name`` is a registered span name."""
    return name in SPANS


def is_metric(name: str) -> bool:
    """Whether ``name`` is a registered counter or gauge."""
    return is_counter(name) or is_gauge(name)


def registered_names() -> dict[str, frozenset[str]]:
    """The full static registry, keyed by kind (for reports and tests)."""
    return {"counters": COUNTERS, "gauges": GAUGES, "spans": SPANS}
