"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph representation is malformed or inconsistent.

    Raised when CSR/COO invariants are violated: offsets not monotone,
    edge endpoints out of range, array length mismatches, and so on.
    """


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain."""


class SchedulingError(ReproError):
    """A scheduler produced an inconsistent execution plan."""


class SimulationError(ReproError):
    """The hardware simulator was driven into an invalid state."""


class ConvergenceError(ReproError):
    """An iterative computation failed to converge within its budget."""


class ServiceError(ReproError):
    """Base class for errors raised by the query service (`repro.serve`)."""


class AdmissionError(ServiceError):
    """A request was refused at admission (bounded queue full / shedding)."""


class ThrottledError(AdmissionError):
    """A request exceeded its client class's token-bucket rate limit.

    Distinct from generic shedding: throttling is per-client back-pressure
    (the client is over its budget), not a statement about service load.
    """


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before a result could be delivered."""


class WorkerFailureError(ServiceError):
    """A service worker failed while executing a batch.

    Wraps the underlying cause so callers see a structured service error
    while the original exception type/message stay inspectable.
    """
