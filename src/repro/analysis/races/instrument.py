"""Instrumentation shim: tracked locks/threads behind a null default.

The serving stack constructs its synchronization objects through the
factories here (:func:`make_lock`, :func:`make_rlock`,
:func:`make_condition`, :func:`make_event`, :func:`make_queue`,
:func:`spawn_thread`) and marks its shared-attribute accesses with
:func:`note_read` / :func:`note_write`.  When no detector is active
(the default) every factory returns the plain :mod:`threading` object
and every note is a single global-load-and-``None``-check — the same
zero-cost null-object discipline as :data:`repro.obs.NULL_REGISTRY`.

Activating a :class:`~repro.analysis.races.detector.RaceDetector`
(:func:`activate` / the :func:`instrumented` context manager) makes the
factories return tracked wrappers that feed every acquire/release,
spawn/join, set/wait and put/get into the happens-before engine.
Tracked objects bind to the detector active *at creation time*, so a
broker built under ``api.serve(..., race_check=True)`` stays
instrumented for its whole life even across detector hand-offs.

A schedule hook (:func:`set_scheduler`) lets
:mod:`repro.analysis.races.schedule` interpose on the same operations
to serialize threads onto one runnable-at-a-time token or to inject
seeded yields; the shim stays agnostic of which policy runs.
"""

from __future__ import annotations

import queue
import sys
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import PurePath
from typing import TYPE_CHECKING, Any, Protocol

from repro.analysis.races.detector import RaceDetector

if TYPE_CHECKING:
    from _thread import LockType, RLock as RLockType

    RawLock = LockType | RLockType

__all__ = [
    "ScheduleAbort",
    "TrackedCondition",
    "TrackedEvent",
    "TrackedLock",
    "TrackedQueue",
    "TrackedThread",
    "activate",
    "active_detector",
    "active_scheduler",
    "deactivate",
    "instrumented",
    "make_condition",
    "make_event",
    "make_lock",
    "make_queue",
    "make_rlock",
    "note_blocking",
    "note_read",
    "note_write",
    "schedule_point",
    "set_scheduler",
    "spawn_thread",
]


class ScheduleAbort(BaseException):
    """Tears managed threads down after a schedule deadlock.

    A ``BaseException`` so user ``except Exception`` handlers cannot
    swallow it; raised by the cooperative scheduler's blocking hooks
    and absorbed by :meth:`TrackedThread.run`.
    """


class Scheduler(Protocol):
    """What a schedule policy must implement to interpose on the shim.

    Implementations: the CHESS-style cooperative explorer and the
    seeded yield fuzzer in :mod:`repro.analysis.races.schedule`.
    """

    def manages_current(self) -> bool:
        """Whether the calling thread is under this policy's control."""
        ...

    def schedule_point(self, kind: str, detail: str) -> None:
        """A potential context-switch point was reached."""
        ...

    def thread_spawned(
        self, thread: threading.Thread, key: int, name: str
    ) -> None: ...

    def thread_body_begin(self, key: int) -> None: ...

    def thread_body_end(self, key: int) -> None: ...

    def thread_join(
        self, thread: threading.Thread, key: int, timeout: float | None
    ) -> None: ...

    def acquire_lock(
        self, raw: RawLock, key: int, blocking: bool, timeout: float
    ) -> bool: ...

    def lock_released(self, key: int) -> None: ...

    def event_wait(
        self, raw: threading.Event, key: int, timeout: float | None
    ) -> bool: ...

    def event_set(self, key: int) -> None: ...

    def condition_wait(
        self, raw: threading.Condition, key: int, timeout: float | None
    ) -> bool: ...

    def queue_put(
        self,
        raw: queue.Queue[Any],
        key: int,
        item: Any,
        block: bool,
        timeout: float | None,
    ) -> None: ...

    def queue_get(
        self,
        raw: queue.Queue[Any],
        key: int,
        block: bool,
        timeout: float | None,
    ) -> Any: ...


_detector: RaceDetector | None = None
_scheduler: Scheduler | None = None


def active_detector() -> RaceDetector | None:
    """The detector new tracked objects will bind to, if any."""
    return _detector


def active_scheduler() -> Scheduler | None:
    """The schedule policy currently interposed, if any."""
    return _scheduler


def activate(detector: RaceDetector) -> None:
    """Route subsequently-created synchronization objects to ``detector``."""
    global _detector
    if _detector is not None:
        raise RuntimeError("a race detector is already active")
    _detector = detector


def deactivate() -> None:
    """Stop instrumenting newly-created objects (existing ones keep
    their bound detector)."""
    global _detector
    _detector = None


def set_scheduler(scheduler: Scheduler | None) -> None:
    """Install (or clear) the schedule policy the shim consults."""
    global _scheduler
    _scheduler = scheduler


@contextmanager
def instrumented(
    detector: RaceDetector | None = None,
) -> Iterator[RaceDetector]:
    """Activate a detector for the block and finalize it on exit."""
    det = detector if detector is not None else RaceDetector()
    activate(det)
    try:
        yield det
    finally:
        deactivate()
        det.finalize()


def _site() -> str:
    """``file.py:line`` of the nearest caller outside this package."""
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not str(module).startswith("repro.analysis.races"):
            return f"{PurePath(frame.f_code.co_filename).name}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover - always has a caller


# ---------------------------------------------------------------------
# Access notes (the per-variable hooks the serve modules call)
# ---------------------------------------------------------------------


def note_read(owner: object, attr: str) -> None:
    """Record a read of ``owner.<attr>`` (no-op when not instrumented)."""
    det = _detector
    if det is None:
        return
    det.on_read(
        id(owner), type(owner).__name__, attr, threading.get_ident(), _site()
    )


def note_write(owner: object, attr: str) -> None:
    """Record a write of ``owner.<attr>`` (no-op when not instrumented)."""
    det = _detector
    if det is None:
        return
    det.on_write(
        id(owner), type(owner).__name__, attr, threading.get_ident(), _site()
    )


def note_blocking(desc: str) -> None:
    """Record an imminent blocking call (no-op when not instrumented)."""
    det = _detector
    if det is None:
        return
    det.on_blocking(desc, threading.get_ident(), _site())


def schedule_point(detail: str = "") -> None:
    """Mark an interesting interleaving point for the explorer."""
    sched = _scheduler
    if sched is not None and sched.manages_current():
        sched.schedule_point("point", detail)


# ---------------------------------------------------------------------
# Tracked wrappers
# ---------------------------------------------------------------------


class TrackedLock:
    """A (possibly reentrant) lock feeding acquire/release events."""

    def __init__(
        self,
        name: str,
        detector: RaceDetector | None,
        *,
        reentrant: bool = False,
    ) -> None:
        self._raw: RawLock = (
            threading.RLock() if reentrant else threading.Lock()
        )
        self._name = name
        self._det = detector
        self._key = id(self)
        self._reentrant = reentrant
        self._depth: dict[int, int] = {}
        if detector is not None:
            detector.register_lock(self._key, name)

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tid = threading.get_ident()
        if self._reentrant and self._depth.get(tid, 0) > 0:
            got = self._raw.acquire(blocking, timeout)
            if got:
                self._depth[tid] += 1
            return got
        sched = _scheduler
        if sched is not None and sched.manages_current():
            got = sched.acquire_lock(self._raw, self._key, blocking, timeout)
        else:
            got = self._raw.acquire(blocking, timeout)
        if got:
            self._depth[tid] = 1
            if self._det is not None:
                self._det.on_acquire(self._key, self._name, tid, _site())
        return got

    def release(self) -> None:
        tid = threading.get_ident()
        depth = self._depth.get(tid, 0)
        if self._reentrant and depth > 1:
            self._depth[tid] = depth - 1
            self._raw.release()
            return
        self._depth.pop(tid, None)
        # Publish the release clock *before* the raw release so a
        # racing acquirer can only merge a fully-stored clock.
        if self._det is not None:
            self._det.on_release(self._key, self._name, tid)
        self._raw.release()
        sched = _scheduler
        if sched is not None and sched.manages_current():
            sched.lock_released(self._key)

    def __enter__(self) -> TrackedLock:
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class TrackedCondition:
    """Condition variable over a :class:`TrackedLock`.

    Wraps a real :class:`threading.Condition` bound to the tracked
    lock's raw lock; :meth:`wait` books a full release/reacquire of the
    tracked lock around the real wait so the happens-before edges match
    what the OS actually does, and checks ``RACE004`` for any *other*
    tracked lock held across the wait.
    """

    def __init__(
        self,
        lock: TrackedLock,
        name: str,
        detector: RaceDetector | None,
    ) -> None:
        self._lock = lock
        self._name = name
        self._det = detector
        self._key = id(self)
        self._raw = threading.Condition(lock._raw)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> TrackedCondition:
        self._lock.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self._lock.release()

    def wait(self, timeout: float | None = None) -> bool:
        tid = threading.get_ident()
        det = self._det
        if det is not None:
            det.on_blocking(
                f"Condition({self._name}).wait",
                tid,
                _site(),
                exclude=frozenset({self._lock._key}),
            )
            det.on_release(self._lock._key, self._lock._name, tid)
        depth = self._lock._depth.pop(tid, 1)
        sched = _scheduler
        if sched is not None and sched.manages_current():
            ok = sched.condition_wait(self._raw, self._key, timeout)
        else:
            ok = self._raw.wait(timeout)
        self._lock._depth[tid] = depth
        if det is not None:
            det.on_acquire(self._lock._key, self._lock._name, tid, _site())
        return ok

    def notify(self, n: int = 1) -> None:
        self._raw.notify(n)

    def notify_all(self) -> None:
        self._raw.notify_all()


class TrackedEvent:
    """Event feeding set -> wait happens-before edges."""

    def __init__(self, name: str, detector: RaceDetector | None) -> None:
        self._raw = threading.Event()
        self._name = name
        self._det = detector
        self._key = id(self)

    def is_set(self) -> bool:
        return self._raw.is_set()

    def set(self) -> None:
        if self._det is not None:
            self._det.on_event_set(self._key, threading.get_ident())
        self._raw.set()
        sched = _scheduler
        if sched is not None and sched.manages_current():
            sched.event_set(self._key)

    def clear(self) -> None:
        self._raw.clear()

    def wait(self, timeout: float | None = None) -> bool:
        tid = threading.get_ident()
        det = self._det
        if det is not None and not self._raw.is_set():
            det.on_blocking(f"Event({self._name}).wait", tid, _site())
        sched = _scheduler
        if sched is not None and sched.manages_current():
            ok = sched.event_wait(self._raw, self._key, timeout)
        else:
            ok = self._raw.wait(timeout)
        if ok and det is not None:
            det.on_event_wait_done(self._key, tid)
        return ok


class TrackedQueue:
    """FIFO queue feeding put -> get happens-before edges."""

    def __init__(
        self,
        name: str,
        detector: RaceDetector | None,
        maxsize: int = 0,
    ) -> None:
        self._raw: queue.Queue[Any] = queue.Queue(maxsize)
        self._name = name
        self._det = detector
        self._key = id(self)

    def put(
        self, item: Any, block: bool = True, timeout: float | None = None
    ) -> None:
        tid = threading.get_ident()
        det = self._det
        if det is not None:
            if block and self._raw.full():
                det.on_blocking(f"Queue({self._name}).put", tid, _site())
            # Publish the producer clock before the item is visible.
            det.on_queue_put(self._key, tid)
        sched = _scheduler
        if sched is not None and sched.manages_current():
            sched.queue_put(self._raw, self._key, item, block, timeout)
        else:
            self._raw.put(item, block, timeout)

    def get(self, block: bool = True, timeout: float | None = None) -> Any:
        tid = threading.get_ident()
        det = self._det
        if det is not None and block and self._raw.empty():
            det.on_blocking(f"Queue({self._name}).get", tid, _site())
        sched = _scheduler
        if sched is not None and sched.manages_current():
            item = sched.queue_get(self._raw, self._key, block, timeout)
        else:
            item = self._raw.get(block, timeout)
        if det is not None:
            det.on_queue_get_done(self._key, tid)
        return item

    def qsize(self) -> int:
        return self._raw.qsize()

    def empty(self) -> bool:
        return self._raw.empty()

    def full(self) -> bool:
        return self._raw.full()


class TrackedThread(threading.Thread):
    """Thread wrapper feeding spawn/body/join events and the scheduler."""

    def __init__(
        self,
        target: Callable[..., object],
        *,
        name: str,
        daemon: bool = False,
        args: tuple[Any, ...] = (),
        detector: RaceDetector | None,
        scheduler: Scheduler | None,
    ) -> None:
        super().__init__(name=name, daemon=daemon)
        self._races_target = target
        self._races_args = args
        self._det = detector
        self._sched = scheduler
        self._key = id(self)

    def start(self) -> None:
        if self._det is not None:
            self._det.on_spawn(
                self._key, self.name, threading.get_ident(), _site()
            )
        if self._sched is not None:
            self._sched.thread_spawned(self, self._key, self.name)
        super().start()

    def run(self) -> None:
        tid = threading.get_ident()
        try:
            if self._sched is not None:
                self._sched.thread_body_begin(self._key)
            if self._det is not None:
                self._det.on_thread_body_start(self._key, tid)
            self._races_target(*self._races_args)
        except ScheduleAbort:
            pass  # deadlocked schedule: exit quietly, run() cleans up
        finally:
            if self._det is not None:
                self._det.on_thread_body_end(self._key, tid)
            if self._sched is not None:
                self._sched.thread_body_end(self._key)

    def join(self, timeout: float | None = None) -> None:
        sched = self._sched
        if sched is not None and sched.manages_current():
            sched.thread_join(self, self._key, timeout)
        else:
            super().join(timeout)
        if self._det is not None and not self.is_alive():
            self._det.on_join(self._key, threading.get_ident())


# ---------------------------------------------------------------------
# Factories (the only names the serve modules import)
# ---------------------------------------------------------------------


def _tracking() -> bool:
    return _detector is not None or _scheduler is not None


def make_lock(name: str) -> LockType | TrackedLock:
    """A mutex: plain when not instrumented, tracked otherwise."""
    if not _tracking():
        return threading.Lock()
    return TrackedLock(name, _detector, reentrant=False)


def make_rlock(name: str) -> RLockType | TrackedLock:
    """A reentrant mutex: plain when not instrumented, tracked otherwise."""
    if not _tracking():
        return threading.RLock()
    return TrackedLock(name, _detector, reentrant=True)


def make_condition(
    lock: RawLock | TrackedLock, name: str
) -> threading.Condition | TrackedCondition:
    """A condition over ``lock`` (which :func:`make_lock` produced)."""
    if isinstance(lock, TrackedLock):
        return TrackedCondition(lock, name, lock._det)
    return threading.Condition(lock)


def make_event(name: str) -> threading.Event | TrackedEvent:
    """An event: plain when not instrumented, tracked otherwise."""
    if not _tracking():
        return threading.Event()
    return TrackedEvent(name, _detector)


def make_queue(
    name: str, maxsize: int = 0
) -> queue.Queue[Any] | TrackedQueue:
    """A FIFO queue: plain when not instrumented, tracked otherwise."""
    if not _tracking():
        return queue.Queue(maxsize)
    return TrackedQueue(name, _detector, maxsize)


def spawn_thread(
    target: Callable[..., object],
    *,
    name: str,
    daemon: bool = False,
    args: tuple[Any, ...] = (),
) -> threading.Thread:
    """An **unstarted** thread; tracked when instrumentation is active.

    Callers ``start()`` (and eventually ``join()``) it themselves; a
    tracked thread that is never joined is a ``RACE005`` finding.
    """
    if not _tracking():
        return threading.Thread(
            target=target, name=name, daemon=daemon, args=args
        )
    return TrackedThread(
        target,
        name=name,
        daemon=daemon,
        args=args,
        detector=_detector,
        scheduler=_scheduler,
    )
