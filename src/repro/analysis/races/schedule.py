"""Deterministic schedule exploration for instrumented thread programs.

Two policies implement the shim's scheduler hook
(:class:`repro.analysis.races.instrument.Scheduler`):

* :class:`CooperativeScheduler` — CHESS-style serialization: every
  managed thread runs only while holding the single runnable token,
  blocking operations (lock acquire, event wait, queue put/get, join)
  hand the token over explicitly, and a seeded RNG both picks the next
  runnable thread and injects a bounded number of preemptions at
  schedule points.  Same seed -> same total order of operations -> same
  detector finding set, which is what lets the seeded-race fixtures
  *provoke* each RACE00x code deterministically.  Timed waits resolve
  virtually: when no thread is plain-runnable the scheduler wakes the
  earliest-registered timed waiter as "timed out", so no schedule ever
  spins against the real clock.  A schedule in which every live thread
  is blocked and nothing is timed is a real deadlock: all threads are
  aborted and :func:`run_schedule` raises :class:`DeadlockError`.
  Condition variables are not supported under this policy (their
  release-wait-reacquire cannot be serialized without cooperating with
  the waiter's predicate); fixtures use locks/events/queues, and full
  components like the broker run under the fuzzer below instead.

* :class:`YieldFuzzer` — adversarial-but-live scheduling for whole
  components: threads run freely on the OS scheduler, and a seeded RNG
  injects short sleeps at synchronization points (lock acquire, event
  wait, queue ops, spawn) to shake out interleavings the quiet path
  never hits.  The differential serve suites assert bit-identical
  responses under several fuzz seeds, turning the determinism contract
  into an explored property.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

from repro.analysis.races import instrument
from repro.errors import ReproError

if TYPE_CHECKING:
    from _thread import LockType, RLock as RLockType

    RawLock = LockType | RLockType

__all__ = [
    "CooperativeScheduler",
    "DeadlockError",
    "UnsupportedScheduleOp",
    "YieldFuzzer",
    "explore",
    "run_schedule",
]

#: name + zero-argument body of one managed thread.
ThreadSpec = tuple[str, Callable[[], None]]


class DeadlockError(ReproError):
    """Every live thread blocked with nothing timed: a real deadlock."""


class UnsupportedScheduleOp(ReproError):
    """The cooperative scheduler cannot serialize this primitive."""


class CooperativeScheduler:
    """One seeded, serialized schedule over managed threads.

    Args:
        seed: drives both next-thread choice and preemption injection.
        max_preemptions: budget of forced context switches at schedule
            points (CHESS-style preemption bounding); switches at
            blocking operations are free.
        preempt_probability: chance a schedule point spends one unit of
            the preemption budget.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        max_preemptions: int = 2,
        preempt_probability: float = 0.5,
    ) -> None:
        self._rng = random.Random(seed)
        self._preemptions_left = max_preemptions
        self._preempt_probability = preempt_probability
        self._cv = threading.Condition(threading.Lock())
        self._idents: dict[int, int] = {}
        self._registration: dict[int, int] = {}
        self._alive: set[int] = set()
        self._runnable: list[int] = []
        self._current: int | None = None
        self._blocked_on: dict[int, object] = {}
        self._timed: set[int] = set()
        self._timeout_fired: set[int] = set()
        self._begun = 0
        self._poisoned = False
        self._blocked_at_poison: list[str] = []
        self._names: dict[int, str] = {}

    # -- protocol: identity --------------------------------------------

    def manages_current(self) -> bool:
        return threading.get_ident() in self._idents

    def thread_spawned(
        self, thread: threading.Thread, key: int, name: str
    ) -> None:
        with self._cv:
            self._registration[key] = len(self._registration)
            self._names[key] = name

    def thread_body_begin(self, key: int) -> None:
        with self._cv:
            self._idents[threading.get_ident()] = key
            self._alive.add(key)
            self._runnable.append(key)
            self._begun += 1
            self._cv.notify_all()
            while self._current != key and not self._poisoned:
                self._cv.wait()
            if self._poisoned:
                raise instrument.ScheduleAbort()

    def thread_body_end(self, key: int) -> None:
        with self._cv:
            self._alive.discard(key)
            self._idents.pop(threading.get_ident(), None)
            self._wake(("join", key))
            if self._current == key:
                self._current = None
                self._next()
            self._cv.notify_all()

    def thread_join(
        self, thread: threading.Thread, key: int, timeout: float | None
    ) -> None:
        with self._cv:
            while key in self._alive:
                if self._block(("join", key), timed=timeout is not None):
                    return
        # The body has ended; the OS thread only has run()'s epilogue
        # left, so a real join converges immediately.
        threading.Thread.join(thread, timeout)

    # -- protocol: schedule points -------------------------------------

    def schedule_point(self, kind: str, detail: str) -> None:
        with self._cv:
            self._maybe_preempt()

    # -- protocol: locks -----------------------------------------------

    def acquire_lock(
        self, raw: RawLock, key: int, blocking: bool, timeout: float
    ) -> bool:
        with self._cv:
            if self._poisoned:
                raise instrument.ScheduleAbort()
            self._maybe_preempt()
            while True:
                if raw.acquire(False):
                    return True
                if not blocking:
                    return False
                if self._block(("lock", key), timed=timeout >= 0):
                    return False

    def lock_released(self, key: int) -> None:
        with self._cv:
            self._wake(("lock", key))

    # -- protocol: events ----------------------------------------------

    def event_wait(
        self, raw: threading.Event, key: int, timeout: float | None
    ) -> bool:
        with self._cv:
            if self._poisoned:
                raise instrument.ScheduleAbort()
            while True:
                if raw.is_set():
                    return True
                if self._block(("event", key), timed=timeout is not None):
                    return raw.is_set()

    def event_set(self, key: int) -> None:
        with self._cv:
            self._wake(("event", key))

    # -- protocol: conditions ------------------------------------------

    def condition_wait(
        self, raw: threading.Condition, key: int, timeout: float | None
    ) -> bool:
        raise UnsupportedScheduleOp(
            "condition variables cannot run under the cooperative "
            "scheduler; use events/queues in fixtures, or the "
            "YieldFuzzer for full components"
        )

    # -- protocol: queues ----------------------------------------------

    def queue_put(
        self,
        raw: queue.Queue[Any],
        key: int,
        item: Any,
        block: bool,
        timeout: float | None,
    ) -> None:
        with self._cv:
            if self._poisoned:
                raise instrument.ScheduleAbort()
            self._maybe_preempt()
            while True:
                try:
                    raw.put_nowait(item)
                except queue.Full:
                    if not block:
                        raise
                    if self._block(("qput", key), timed=timeout is not None):
                        raise queue.Full from None
                    continue
                self._wake(("qget", key))
                return

    def queue_get(
        self,
        raw: queue.Queue[Any],
        key: int,
        block: bool,
        timeout: float | None,
    ) -> Any:
        with self._cv:
            if self._poisoned:
                raise instrument.ScheduleAbort()
            self._maybe_preempt()
            while True:
                try:
                    item = raw.get_nowait()
                except queue.Empty:
                    if not block:
                        raise
                    if self._block(("qget", key), timed=timeout is not None):
                        raise queue.Empty from None
                    continue
                self._wake(("qput", key))
                return item

    # -- driver API ----------------------------------------------------

    def begin(self, expected: int) -> None:
        """Wait for ``expected`` bodies to register, grant the token."""
        with self._cv:
            while self._begun < expected:
                self._cv.wait()
            self._next()

    def finish(self) -> None:
        """Raise :class:`DeadlockError` if the schedule deadlocked."""
        with self._cv:
            if self._poisoned:
                blocked = ", ".join(self._blocked_at_poison)
                raise DeadlockError(
                    f"cooperative schedule deadlocked: every live thread "
                    f"blocked ({blocked}) with no timed waiter"
                )

    # -- internals (self._cv held) -------------------------------------

    def _require_current(self) -> int:
        return self._idents[threading.get_ident()]

    def _order_key(self, key: int) -> int:
        return self._registration.get(key, len(self._registration))

    def _next(self) -> None:
        """Grant the token: runnable first, then virtual timeouts."""
        if self._runnable:
            self._runnable.sort(key=self._order_key)
            pick = self._runnable.pop(
                self._rng.randrange(len(self._runnable))
            )
            self._current = pick
            self._cv.notify_all()
            return
        if self._timed:
            pick = min(self._timed, key=self._order_key)
            self._timed.discard(pick)
            self._timeout_fired.add(pick)
            self._blocked_on.pop(pick, None)
            self._current = pick
            self._cv.notify_all()
            return
        if self._alive:
            self._blocked_at_poison = [
                f"{self._names.get(key, key)} on {resource!r}"
                for key, resource in sorted(
                    self._blocked_on.items(),
                    key=lambda kv: self._order_key(kv[0]),
                )
            ]
            self._poisoned = True
            self._cv.notify_all()
            return
        self._current = None

    def _wake(self, resource: object) -> None:
        for key, blocked in list(self._blocked_on.items()):
            if blocked == resource:
                del self._blocked_on[key]
                self._timed.discard(key)
                self._runnable.append(key)

    def _block(self, resource: object, *, timed: bool) -> bool:
        """Hand the token off until woken; True if woken by timeout."""
        me = self._require_current()
        self._blocked_on[me] = resource
        if timed:
            self._timed.add(me)
        self._current = None
        self._next()
        while self._current != me and not self._poisoned:
            self._cv.wait()
        self._timed.discard(me)
        self._blocked_on.pop(me, None)
        if self._poisoned:
            raise instrument.ScheduleAbort()
        fired = me in self._timeout_fired
        self._timeout_fired.discard(me)
        return fired

    def _maybe_preempt(self) -> None:
        if self._poisoned:
            raise instrument.ScheduleAbort()
        if self._preemptions_left <= 0 or not self._runnable:
            return
        if self._rng.random() >= self._preempt_probability:
            return
        self._preemptions_left -= 1
        me = self._require_current()
        self._runnable.append(me)
        self._current = None
        self._next()
        while self._current != me and not self._poisoned:
            self._cv.wait()
        if self._poisoned:
            raise instrument.ScheduleAbort()


class YieldFuzzer:
    """Seeded sleep injection at synchronization points (live threads).

    Unlike the cooperative scheduler this never takes ownership of the
    schedule — it only perturbs it, so any component (including ones
    using condition variables and timed waits) stays fully functional
    while its interleavings are shaken.

    Args:
        seed: drives which points inject a delay.
        probability: per-point chance of injecting.
        max_injections: total delay budget (bounds added wall time).
        sleep_seconds: injected delay; 0 still forces an OS yield.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        probability: float = 0.25,
        max_injections: int = 200,
        sleep_seconds: float = 0.0005,
    ) -> None:
        self._rng = random.Random(seed)
        self._probability = probability
        self._left = max_injections
        self._sleep_seconds = sleep_seconds
        self._mu = threading.Lock()
        self.injected = 0

    def _jitter(self) -> None:
        with self._mu:
            if self._left <= 0:
                return
            if self._rng.random() >= self._probability:
                return
            self._left -= 1
            self.injected += 1
            delay = self._sleep_seconds
        time.sleep(delay)

    # -- protocol ------------------------------------------------------

    def manages_current(self) -> bool:
        return True

    def schedule_point(self, kind: str, detail: str) -> None:
        self._jitter()

    def thread_spawned(
        self, thread: threading.Thread, key: int, name: str
    ) -> None:
        self._jitter()

    def thread_body_begin(self, key: int) -> None:
        self._jitter()

    def thread_body_end(self, key: int) -> None:
        pass

    def thread_join(
        self, thread: threading.Thread, key: int, timeout: float | None
    ) -> None:
        threading.Thread.join(thread, timeout)

    def acquire_lock(
        self, raw: RawLock, key: int, blocking: bool, timeout: float
    ) -> bool:
        self._jitter()
        return raw.acquire(blocking, timeout)

    def lock_released(self, key: int) -> None:
        pass

    def event_wait(
        self, raw: threading.Event, key: int, timeout: float | None
    ) -> bool:
        self._jitter()
        return raw.wait(timeout)

    def event_set(self, key: int) -> None:
        pass

    def condition_wait(
        self, raw: threading.Condition, key: int, timeout: float | None
    ) -> bool:
        self._jitter()
        return raw.wait(timeout)

    def queue_put(
        self,
        raw: queue.Queue[Any],
        key: int,
        item: Any,
        block: bool,
        timeout: float | None,
    ) -> None:
        self._jitter()
        raw.put(item, block, timeout)

    def queue_get(
        self,
        raw: queue.Queue[Any],
        key: int,
        block: bool,
        timeout: float | None,
    ) -> Any:
        self._jitter()
        return raw.get(block, timeout)


def run_schedule(
    specs: Sequence[ThreadSpec],
    *,
    seed: int = 0,
    max_preemptions: int = 2,
    preempt_probability: float = 0.5,
) -> CooperativeScheduler:
    """Run thread bodies under one seeded cooperative schedule.

    Threads are spawned through the instrumentation shim, so an active
    detector sees every synchronization edge; bodies aborted by a
    deadlock are cleaned up and :class:`DeadlockError` is raised after
    every OS thread has exited.  Returns the scheduler (for inspecting
    preemption spend in tests).
    """
    scheduler = CooperativeScheduler(
        seed=seed,
        max_preemptions=max_preemptions,
        preempt_probability=preempt_probability,
    )
    previous = instrument.active_scheduler()
    instrument.set_scheduler(scheduler)
    try:
        threads = [
            instrument.spawn_thread(body, name=name)
            for name, body in specs
        ]
        for thread in threads:
            thread.start()
        scheduler.begin(len(threads))
        for thread in threads:
            thread.join()
        scheduler.finish()
    finally:
        instrument.set_scheduler(previous)
    return scheduler


def explore(
    build: Callable[[], Sequence[ThreadSpec]],
    *,
    schedules: int = 8,
    seed: int = 0,
    max_preemptions: int = 2,
    skip_deadlocks: bool = False,
) -> list[int]:
    """Replay ``build()``'s threads under ``schedules`` derived seeds.

    ``build`` is called once per schedule so every replay starts from
    fresh state.  Returns the seeds actually run (for replaying one in
    isolation); deadlocked schedules raise unless ``skip_deadlocks``.
    """
    seeds: list[int] = []
    for index in range(schedules):
        schedule_seed = seed * 10_000 + index
        try:
            run_schedule(
                build(),
                seed=schedule_seed,
                max_preemptions=max_preemptions,
            )
        except DeadlockError:
            if not skip_deadlocks:
                raise
        seeds.append(schedule_seed)
    return seeds
