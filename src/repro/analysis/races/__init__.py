"""Concurrency sanitizer: races, schedules, and lock discipline.

Three layers over the serving stack's threads:

* :mod:`repro.analysis.races.detector` — a dynamic detector combining
  vector-clock happens-before with lockset analysis, fed by the
  instrumentation shim (:mod:`repro.analysis.races.instrument`) that
  the serve modules build their locks/threads through.  Zero-cost when
  no detector is active (the :mod:`repro.obs` null-object pattern).
* :mod:`repro.analysis.races.schedule` — deterministic schedule
  exploration: a CHESS-style cooperative scheduler that serializes
  instrumented threads onto one runnable token and replays seeded,
  preemption-bounded interleavings, plus a seeded yield fuzzer for
  whole components.
* ``SAGE006``/``SAGE007`` in :mod:`repro.analysis.lint` — static
  lock-discipline rules over the ``_guarded_by`` declarations the
  serve classes carry.

Finding codes: ``RACE001`` write/write race, ``RACE002`` read/write
race, ``RACE003`` lock-order inversion, ``RACE004`` blocking while
holding a lock, ``RACE005`` unjoined thread.
"""

from repro.analysis.races.detector import RaceDetector, RaceError
from repro.analysis.races.findings import RACE_CODES, RaceFinding
from repro.analysis.races.instrument import (
    activate,
    active_detector,
    deactivate,
    instrumented,
    make_condition,
    make_event,
    make_lock,
    make_queue,
    make_rlock,
    note_blocking,
    note_read,
    note_write,
    schedule_point,
    set_scheduler,
    spawn_thread,
)
from repro.analysis.races.schedule import (
    CooperativeScheduler,
    DeadlockError,
    UnsupportedScheduleOp,
    YieldFuzzer,
    explore,
    run_schedule,
)

__all__ = [
    "RACE_CODES",
    "CooperativeScheduler",
    "DeadlockError",
    "RaceDetector",
    "RaceError",
    "RaceFinding",
    "UnsupportedScheduleOp",
    "YieldFuzzer",
    "activate",
    "active_detector",
    "deactivate",
    "explore",
    "instrumented",
    "make_condition",
    "make_event",
    "make_lock",
    "make_queue",
    "make_rlock",
    "note_blocking",
    "note_read",
    "note_write",
    "run_schedule",
    "schedule_point",
    "set_scheduler",
    "spawn_thread",
]
