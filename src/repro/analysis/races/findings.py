"""Structured findings of the concurrency sanitizer.

Mirrors :mod:`repro.analysis.sanitizer`: a closed code table
(:data:`RACE_CODES`), one frozen dataclass per diagnostic
(:class:`RaceFinding`), and JSON-ready dict views.  Finding identity is
deliberately *site-based* (code, subject, access sites) rather than
thread-id-based, so the same program run under the same explored
schedule produces the same finding set even though OS thread ids differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SCHEMA_VERSION = 1

#: Every finding code the race detector can report, with a one-line
#: meaning.  Keep in sync with DESIGN.md "Concurrency sanitizer".
RACE_CODES: dict[str, str] = {
    "RACE001": "write_write_race",
    "RACE002": "read_write_race",
    "RACE003": "lock_order_inversion",
    "RACE004": "blocking_while_holding",
    "RACE005": "unjoined_thread",
}

#: code -> short kind string (the values of :data:`RACE_CODES`).
RACE_KINDS: dict[str, str] = dict(RACE_CODES)


@dataclass(frozen=True)
class RaceFinding:
    """One structured concurrency diagnostic.

    Attributes:
        code: one of :data:`RACE_CODES`.
        kind: the code's short name (``write_write_race`` ...).
        subject: what the finding is about — a variable display name
            (``QueryBroker.stats``), a lock cycle (``A -> B -> A``), or
            a thread name.
        threads: deterministic thread *names* involved, sorted.
        message: human-readable one-liner.
        details: JSON-ready extras (sites, locksets, epochs).
    """

    code: str
    kind: str
    subject: str
    threads: tuple[str, ...]
    message: str
    details: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view."""
        return {
            "code": self.code,
            "kind": self.kind,
            "subject": self.subject,
            "threads": list(self.threads),
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        who = f" [{', '.join(self.threads)}]" if self.threads else ""
        return f"{self.code} {self.kind}: {self.message}{who}"
