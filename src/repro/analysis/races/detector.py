"""Dynamic race detector: happens-before + lockset over instrumented ops.

:class:`RaceDetector` receives synchronization and memory-access events
from :mod:`repro.analysis.races.instrument` and maintains:

* one :class:`~repro.analysis.races.clocks.VectorClock` per thread,
  with edges transferred on lock release->acquire, thread spawn->body,
  body-end->join, event set->wait and queue put->get;
* per-variable access histories stamped with FastTrack-style epochs and
  the lockset held at the access;
* a held-lock order graph (edges ``held -> acquired``, keyed by lock
  *name* so the check is schedule-independent once both orders have
  been observed anywhere in the run).

A pair of accesses to the same variable from different threads races
when neither happens-before the other **and** their locksets are
disjoint **and** at least one is a write (``RACE001`` write/write,
``RACE002`` read/write).  Cycles in the lock-order graph are
``RACE003``; blocking primitives invoked while holding a tracked lock
are ``RACE004``; spawned threads never joined by :meth:`finalize` are
``RACE005``.

Findings are deduplicated by (code, subject, thread names) — all
deterministic under the schedule explorer — flow into :mod:`repro.obs`
as ``races.*`` counters, and export as a JSON report shaped like the
kernel hazard sanitizer's.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.races.clocks import VectorClock
from repro.analysis.races.findings import (
    RACE_CODES,
    SCHEMA_VERSION,
    RaceFinding,
)
from repro.obs import NULL_REGISTRY, MetricsRegistry

__all__ = ["RaceDetector", "RaceError"]


class RaceError(RuntimeError):
    """Raised instead of recording when ``fail_fast`` is enabled."""


@dataclass(frozen=True, slots=True)
class _Access:
    """One memory access: epoch time, lockset, and source site."""

    time: int
    lockset: frozenset[int]
    lock_names: tuple[str, ...]
    site: str


@dataclass(slots=True)
class _VarState:
    """Per-variable access history: last read/write per thread."""

    display: str
    reads: dict[int, _Access]
    writes: dict[int, _Access]


@dataclass(slots=True)
class _ThreadRecord:
    """One spawned (tracked) thread's lifecycle bookkeeping."""

    name: str
    spawn_clock: VectorClock
    final_clock: VectorClock | None
    joined: bool
    spawn_site: str


class RaceDetector:
    """Happens-before + lockset race detection over instrumented events.

    Args:
        metrics: observability registry receiving ``races.*`` counters
            (defaults to the null registry: counting costs nothing).
        fail_fast: raise :class:`RaceError` on the first finding
            instead of recording it.
        max_findings: stop recording (but keep counting) beyond this
            many findings so a systematically-racy run stays bounded.
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        fail_fast: bool = False,
        max_findings: int = 1000,
    ) -> None:
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.fail_fast = fail_fast
        self.max_findings = max_findings
        self.findings: list[RaceFinding] = []
        self.total_findings = 0
        self.accesses_checked = 0
        self.acquires = 0
        self.threads_tracked = 0
        self.locks_tracked = 0
        # One plain (untracked) mutex guards every structure below; it
        # is a leaf lock — nothing tracked is ever called under it.
        self._mu = threading.Lock()
        self._clocks: dict[int, VectorClock] = {}
        self._names: dict[int, str] = {}
        self._held: dict[int, list[tuple[int, str]]] = {}
        self._lock_clocks: dict[int, VectorClock] = {}
        self._lock_names: dict[int, str] = {}
        self._vars: dict[tuple[int, str], _VarState] = {}
        self._order_edges: dict[str, set[str]] = {}
        self._threads: dict[int, _ThreadRecord] = {}
        self._event_clocks: dict[int, VectorClock] = {}
        self._queue_clocks: dict[int, VectorClock] = {}
        self._seen: set[tuple[str, str, tuple[str, ...]]] = set()
        self._finalized = False

    # ------------------------------------------------------------------
    # Thread identity
    # ------------------------------------------------------------------

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.tick(tid)
            self._clocks[tid] = clock
        return clock

    def _thread_name(self, tid: int) -> str:
        name = self._names.get(tid)
        if name is None:
            name = threading.current_thread().name
            self._names[tid] = name
        return name

    def name_thread(self, tid: int, name: str) -> None:
        """Bind a deterministic display name to an OS thread id."""
        with self._mu:
            self._names[tid] = name

    # ------------------------------------------------------------------
    # Synchronization events (called by the instrumentation shim)
    # ------------------------------------------------------------------

    def register_lock(self, key: int, name: str) -> None:
        """A tracked lock was created."""
        with self._mu:
            self._lock_names[key] = name
            self.locks_tracked += 1
            self.metrics.count("races.locks_tracked")

    def on_acquire(self, key: int, name: str, tid: int, site: str) -> None:
        """Thread ``tid`` acquired tracked lock ``key`` (outermost)."""
        with self._mu:
            self.acquires += 1
            self.metrics.count("races.acquires")
            clock = self._clock(tid)
            stored = self._lock_clocks.get(key)
            if stored is not None:
                clock.merge(stored)
            held = self._held.setdefault(tid, [])
            for held_key, held_name in held:
                if held_key != key and held_name != name:
                    self._add_order_edge(held_name, name, tid, site)
            held.append((key, name))

    def on_release(self, key: int, name: str, tid: int) -> None:
        """Thread ``tid`` released tracked lock ``key`` (outermost)."""
        with self._mu:
            clock = self._clock(tid)
            clock.tick(tid)
            self._lock_clocks[key] = clock.copy()
            held = self._held.get(tid)
            if held is not None:
                for index in range(len(held) - 1, -1, -1):
                    if held[index][0] == key:
                        del held[index]
                        break

    def on_spawn(self, key: int, name: str, tid: int, site: str) -> None:
        """Thread ``tid`` is starting tracked thread ``key``."""
        with self._mu:
            clock = self._clock(tid)
            clock.tick(tid)
            self._threads[key] = _ThreadRecord(
                name=name,
                spawn_clock=clock.copy(),
                final_clock=None,
                joined=False,
                spawn_site=site,
            )
            self.threads_tracked += 1
            self.metrics.count("races.threads_tracked")

    def on_thread_body_start(self, key: int, tid: int) -> None:
        """Tracked thread ``key`` began running on OS thread ``tid``."""
        with self._mu:
            record = self._threads.get(key)
            if record is None:  # pragma: no cover - defensive
                return
            self._names[tid] = record.name
            self._clock(tid).merge(record.spawn_clock)

    def on_thread_body_end(self, key: int, tid: int) -> None:
        """Tracked thread ``key`` finished; snapshot its final clock."""
        with self._mu:
            record = self._threads.get(key)
            if record is None:  # pragma: no cover - defensive
                return
            clock = self._clock(tid)
            clock.tick(tid)
            record.final_clock = clock.copy()

    def on_join(self, key: int, tid: int) -> None:
        """Thread ``tid`` joined tracked thread ``key``."""
        with self._mu:
            record = self._threads.get(key)
            if record is None:  # pragma: no cover - defensive
                return
            record.joined = True
            if record.final_clock is not None:
                self._clock(tid).merge(record.final_clock)

    def on_event_set(self, key: int, tid: int) -> None:
        """A tracked event was set: publish the setter's clock."""
        with self._mu:
            clock = self._clock(tid)
            clock.tick(tid)
            stored = self._event_clocks.get(key)
            if stored is None:
                self._event_clocks[key] = clock.copy()
            else:
                stored.merge(clock)

    def on_event_wait_done(self, key: int, tid: int) -> None:
        """A tracked event wait returned: receive the setter's clock."""
        with self._mu:
            stored = self._event_clocks.get(key)
            if stored is not None:
                self._clock(tid).merge(stored)

    def on_queue_put(self, key: int, tid: int) -> None:
        """An item entered a tracked queue: publish the producer clock."""
        with self._mu:
            clock = self._clock(tid)
            clock.tick(tid)
            stored = self._queue_clocks.get(key)
            if stored is None:
                self._queue_clocks[key] = clock.copy()
            else:
                stored.merge(clock)

    def on_queue_get_done(self, key: int, tid: int) -> None:
        """An item left a tracked queue: receive the producer clock."""
        with self._mu:
            stored = self._queue_clocks.get(key)
            if stored is not None:
                self._clock(tid).merge(stored)

    # ------------------------------------------------------------------
    # Memory accesses
    # ------------------------------------------------------------------

    def on_read(
        self, owner: int, display: str, attr: str, tid: int, site: str
    ) -> None:
        """Thread ``tid`` read shared variable ``display``.``attr``."""
        self._on_access(owner, display, attr, tid, site, is_write=False)

    def on_write(
        self, owner: int, display: str, attr: str, tid: int, site: str
    ) -> None:
        """Thread ``tid`` wrote shared variable ``display``.``attr``."""
        self._on_access(owner, display, attr, tid, site, is_write=True)

    def _on_access(
        self,
        owner: int,
        display: str,
        attr: str,
        tid: int,
        site: str,
        *,
        is_write: bool,
    ) -> None:
        with self._mu:
            self.accesses_checked += 1
            self.metrics.count("races.accesses_checked")
            clock = self._clock(tid)
            held = self._held.get(tid, [])
            lockset = frozenset(key for key, _ in held)
            lock_names = tuple(name for _, name in held)
            name = f"{display}.{attr}"
            state = self._vars.get((owner, name))
            if state is None:
                state = _VarState(display=name, reads={}, writes={})
                self._vars[(owner, name)] = state
            access = _Access(
                time=clock.time_of(tid),
                lockset=lockset,
                lock_names=lock_names,
                site=site,
            )
            # A write conflicts with prior reads and writes; a read only
            # with prior writes.
            self._check_conflicts(
                state, state.writes, clock, tid, access,
                code="RACE001" if is_write else "RACE002",
                prior_kind="write",
                current_kind="write" if is_write else "read",
            )
            if is_write:
                self._check_conflicts(
                    state, state.reads, clock, tid, access,
                    code="RACE002",
                    prior_kind="read",
                    current_kind="write",
                )
                state.writes[tid] = access
            else:
                state.reads[tid] = access

    def _check_conflicts(
        self,
        state: _VarState,
        prior: dict[int, _Access],
        clock: VectorClock,
        tid: int,
        access: _Access,
        *,
        code: str,
        prior_kind: str,
        current_kind: str,
    ) -> None:
        for other_tid, other in prior.items():
            if other_tid == tid:
                continue
            if clock.at_least(other_tid, other.time):
                continue  # ordered by a synchronization chain
            if access.lockset & other.lockset:
                continue  # a common lock protects the pair
            names = tuple(
                sorted({self._thread_name(tid), self._names.get(
                    other_tid, f"thread-{other_tid}")})
            )
            self._record(
                RaceFinding(
                    code=code,
                    kind=RACE_CODES[code],
                    subject=state.display,
                    threads=names,
                    message=(
                        f"unsynchronized {current_kind} of {state.display} "
                        f"({access.site}) races a {prior_kind} "
                        f"({other.site}); locksets "
                        f"{list(access.lock_names) or '[]'} vs "
                        f"{list(other.lock_names) or '[]'} are disjoint"
                    ),
                    details={
                        "current_site": access.site,
                        "prior_site": other.site,
                        "current_lockset": list(access.lock_names),
                        "prior_lockset": list(other.lock_names),
                    },
                )
            )

    # ------------------------------------------------------------------
    # Lock-order inversion
    # ------------------------------------------------------------------

    def _add_order_edge(
        self, held: str, acquired: str, tid: int, site: str
    ) -> None:
        targets = self._order_edges.setdefault(held, set())
        if acquired in targets:
            return
        targets.add(acquired)
        cycle = self._find_cycle(acquired, held)
        if cycle is not None:
            ordered = _rotate_cycle(cycle)
            subject = " -> ".join(ordered + [ordered[0]])
            self._record(
                RaceFinding(
                    code="RACE003",
                    kind=RACE_CODES["RACE003"],
                    subject=subject,
                    threads=(self._thread_name(tid),),
                    message=(
                        f"lock-order inversion: acquiring {acquired!r} "
                        f"while holding {held!r} ({site}) closes the "
                        f"cycle {subject}"
                    ),
                    details={"cycle": ordered, "site": site},
                )
            )

    def _find_cycle(self, start: str, goal: str) -> list[str] | None:
        """A path ``start -> ... -> goal`` in the order graph, if any."""
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        visited: set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in visited:
                continue
            visited.add(node)
            for nxt in sorted(self._order_edges.get(node, ())):
                stack.append((nxt, path + [nxt]))
        return None

    # ------------------------------------------------------------------
    # Blocking while holding / unjoined threads
    # ------------------------------------------------------------------

    def on_blocking(
        self,
        desc: str,
        tid: int,
        site: str,
        exclude: frozenset[int] = frozenset(),
    ) -> None:
        """Thread ``tid`` is about to block on ``desc``.

        Flags ``RACE004`` when any tracked lock other than ``exclude``
        (a condition's own lock, legitimately released by the wait) is
        held across the blocking call.
        """
        with self._mu:
            held = [
                (key, name)
                for key, name in self._held.get(tid, [])
                if key not in exclude
            ]
            if not held:
                return
            names = tuple(name for _, name in held)
            self._record(
                RaceFinding(
                    code="RACE004",
                    kind=RACE_CODES["RACE004"],
                    subject=desc,
                    threads=(self._thread_name(tid),),
                    message=(
                        f"blocking call {desc} ({site}) while holding "
                        f"{list(names)}; waiters on those locks stall "
                        f"behind an unbounded wait"
                    ),
                    details={"site": site, "held": list(names)},
                )
            )

    def finalize(self) -> None:
        """End-of-run checks: flag spawned threads never joined."""
        with self._mu:
            if self._finalized:
                return
            self._finalized = True
            for record in self._threads.values():
                if record.joined:
                    continue
                self._record(
                    RaceFinding(
                        code="RACE005",
                        kind=RACE_CODES["RACE005"],
                        subject=record.name,
                        threads=(record.name,),
                        message=(
                            f"thread {record.name!r} (spawned at "
                            f"{record.spawn_site}) was never joined; its "
                            f"writes are unordered with the rest of the "
                            f"run"
                        ),
                        details={"spawn_site": record.spawn_site},
                    )
                )

    # ------------------------------------------------------------------
    # Recording / reporting
    # ------------------------------------------------------------------

    def _record(self, finding: RaceFinding) -> None:
        # Callers hold self._mu.
        if finding.code not in RACE_CODES:  # pragma: no cover - dev error
            raise ValueError(f"unknown finding code {finding.code!r}")
        key = (finding.code, finding.subject, finding.threads)
        if key in self._seen:
            return
        self._seen.add(key)
        if self.fail_fast:
            raise RaceError(str(finding))
        self.total_findings += 1
        self.metrics.count("races.findings")
        self.metrics.count(f"races.{finding.kind}")
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)

    @property
    def clean(self) -> bool:
        """Whether no finding has been recorded."""
        return self.total_findings == 0

    def counts_by_code(self) -> dict[str, int]:
        """Recorded findings grouped by code."""
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out

    def report(self) -> dict[str, object]:
        """The JSON-ready structured report."""
        return {
            "schema_version": SCHEMA_VERSION,
            "clean": self.clean,
            "total_findings": self.total_findings,
            "threads_tracked": self.threads_tracked,
            "locks_tracked": self.locks_tracked,
            "acquires": self.acquires,
            "accesses_checked": self.accesses_checked,
            "counts_by_code": self.counts_by_code(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report to ``path`` and return it."""
        out = Path(path)
        out.write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return out

    def format_summary(self) -> str:
        """Human-readable findings summary (the CLI's output)."""
        lines = [
            f"races: {'clean' if self.clean else 'FINDINGS'} — "
            f"{self.total_findings} findings over "
            f"{self.threads_tracked} threads / {self.locks_tracked} "
            f"locks / {self.accesses_checked} accesses"
        ]
        for code, count in sorted(self.counts_by_code().items()):
            lines.append(f"  {code} {RACE_CODES[code]:24s} {count}")
        for finding in self.findings[:20]:
            lines.append(f"  - {finding}")
        if len(self.findings) > 20:
            lines.append(f"  ... {len(self.findings) - 20} more")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RaceDetector({self.total_findings} findings, "
            f"{self.accesses_checked} accesses checked)"
        )


def _rotate_cycle(cycle: list[str]) -> list[str]:
    """Rotate so the lexicographically-smallest lock leads (stable id)."""
    if not cycle:
        return cycle
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]
