"""Typed vector clocks: the happens-before half of the race detector.

A :class:`VectorClock` maps thread id -> logical time.  Each thread
carries one clock; synchronization edges (lock release -> acquire,
thread spawn -> body, body end -> join, event set -> wait, queue put ->
get) transfer clocks between threads via :meth:`merge`.  Memory accesses
are stamped with the accessing thread's *epoch* — the ``(tid, time)``
pair of its own component — and an earlier access happens-before a later
operation iff the later thread's clock has caught up with that epoch
(:meth:`at_least`), the standard FastTrack-style check.
"""

from __future__ import annotations


class VectorClock:
    """A mapping ``thread id -> logical time`` with merge/compare ops."""

    __slots__ = ("_times",)

    def __init__(self, times: dict[int, int] | None = None) -> None:
        self._times: dict[int, int] = dict(times) if times else {}

    def time_of(self, tid: int) -> int:
        """This clock's component for ``tid`` (0 if never seen)."""
        return self._times.get(tid, 0)

    def tick(self, tid: int) -> int:
        """Advance ``tid``'s component; returns the new time."""
        advanced = self._times.get(tid, 0) + 1
        self._times[tid] = advanced
        return advanced

    def merge(self, other: VectorClock) -> None:
        """Pointwise maximum: receive every edge ``other`` has seen."""
        for tid, time in other._times.items():
            if time > self._times.get(tid, 0):
                self._times[tid] = time

    def copy(self) -> VectorClock:
        """An independent snapshot of this clock."""
        return VectorClock(self._times)

    def at_least(self, tid: int, time: int) -> bool:
        """Whether this clock has caught up with epoch ``(tid, time)``.

        True iff an access stamped at that epoch happens-before any
        operation performed under this clock.
        """
        return self._times.get(tid, 0) >= time

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{tid}:{time}" for tid, time in sorted(self._times.items())
        )
        return f"VectorClock({{{inner}}})"
