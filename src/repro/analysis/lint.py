"""SAGE lint: AST checks for this repo's performance/observability rules.

``python -m repro.analysis.lint src`` walks the given paths and reports
violations of repo-specific rules ordinary linters cannot express:

* **SAGE001** — Python-level loop over ndarray work in a hot-path module
  (:data:`HOT_PATH_MODULES`).  The kernel-simulation hot paths are
  vectorized by design; a ``for`` over an array (or ``range(len(arr))``,
  ``arr.tolist()``) reintroduces the interpreter into the per-edge path.
  Reference implementations (functions named ``*_reference``, classes
  named ``Reference*``) are exempt — they exist to stay naive.
* **SAGE002** — metric/span name literal that does not resolve against
  the central registry (:mod:`repro.obs.names`).  Catches drift between
  emit sites and the documented counter set.
* **SAGE003** — unseeded numpy randomness in library code: the legacy
  ``np.random.*`` global-state API, or ``default_rng()`` without a seed.
  Everything simulated must be deterministic across machines.
* **SAGE004** — bare ``except:`` anywhere, and exception handlers that
  swallow diagnostics (``pass``-only bodies catching ``Exception``) in
  the simulator layers (:data:`SIMULATOR_LAYERS`).
* **SAGE005** — use of a deprecated entry point:
  ``run_app(..., sanitizer=...)`` (use ``repro.api.run(..., checks=...)``),
  direct ``QueryBroker(...)`` construction (use ``repro.api.serve``), or
  per-edge ``.apply_update(...)`` (use ``GraphStore.apply_edges`` /
  ``apply_delta``).  The sanctioned internal sites carry an inline allow.
* **SAGE006** — lock discipline: an attribute a class declares in its
  ``_guarded_by`` mapping (attribute name → guard attribute, or a tuple
  of acceptable guards) accessed outside a ``with self.<guard>:`` block.
  ``__init__`` and methods named ``*_locked`` (caller holds the lock by
  convention) are exempt.
* **SAGE007** — a known-blocking call while a lock is held:
  ``time.sleep``, joining a thread-like object, or ``.wait()`` on
  anything other than the held guard itself inside a ``with``-lock
  block.  Blocking under a lock is how the serving stack deadlocks.

A committed baseline (``lint_baseline.json``) ratchets existing
violations: counts may only go down.  ``--update-baseline`` rewrites it
after intentional changes.  An inline escape hatch exists for the rare
justified case: a ``# sage: allow(SAGE001)`` comment on the flagged
line.

Exit status: 0 clean (or within baseline), 1 violations, 2 bad usage.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.obs import names as obs_names

#: rule id -> one-line description (the lint's contract; keep in sync
#: with DESIGN.md "Static analysis & sanitizer").
RULES: dict[str, str] = {
    "SAGE001": "Python-level loop over ndarray work in a hot-path module",
    "SAGE002": "metric/span name literal not in the repro.obs.names registry",
    "SAGE003": "unseeded numpy randomness in library code",
    "SAGE004": "bare except / swallowed diagnostics in simulator layers",
    "SAGE005": "deprecated entry point (run_app sanitizer= / QueryBroker() "
               "/ .apply_update())",
    "SAGE006": "attribute declared in _guarded_by accessed without its lock",
    "SAGE007": "known-blocking call while a lock is held",
}

#: Path suffixes of the vectorized hot paths SAGE001 protects.
HOT_PATH_MODULES = (
    "core/engine.py",
    "core/scheduler.py",
    "core/tiling.py",
    "gpusim/memory.py",
)

#: Path fragments of the simulator layers SAGE004's swallowed-handler
#: check covers (bare ``except:`` is flagged everywhere).
SIMULATOR_LAYERS = (
    "repro/gpusim",
    "repro/core",
    "repro/multigpu",
    "repro/outofcore",
)

#: Method name -> registry predicate for SAGE002.
_METRIC_METHODS = {
    "count": obs_names.is_counter,
    "set_counter": obs_names.is_counter,
    "set_gauge": obs_names.is_gauge,
    "span": obs_names.is_span,
}

#: Receiver names treated as a metrics registry for SAGE002.
_METRIC_RECEIVERS = {"metrics", "registry", "run_metrics"}

_NUMPY_ALIASES = {"np", "numpy"}

#: ndarray methods returning ndarrays — arrayish-ness flows through them
#: (``np.asarray(x).ravel()`` is as arrayish as ``np.asarray(x)``).
_ARRAY_METHODS = {
    "ravel", "copy", "astype", "reshape", "flatten", "cumsum", "clip",
    "repeat", "take", "view", "squeeze", "transpose",
}


@dataclass(frozen=True)
class Violation:
    """One lint finding, sortable into stable output order."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def baseline_key(self) -> str:
        return f"{self.path}::{self.rule}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _is_numpy_rooted(node: ast.AST) -> bool:
    """Whether an expression is ``np.<...>`` / ``numpy.<...>``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in _NUMPY_ALIASES


def _annotation_is_arrayish(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return "ndarray" in text or "NDArray" in text


def _parse_guarded_by(node: ast.ClassDef) -> dict[str, tuple[str, ...]]:
    """The class's literal ``_guarded_by`` declaration, if any.

    Maps attribute name → tuple of acceptable guard attribute names.
    Non-literal declarations are ignored (the dynamic detector still
    covers them at runtime).
    """
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_guarded_by"
            for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return {}
        out: dict[str, tuple[str, ...]] = {}
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            if isinstance(val, ast.Constant) and isinstance(val.value, str):
                out[key.value] = (val.value,)
            elif isinstance(val, ast.Tuple):
                guards = tuple(
                    elt.value for elt in val.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
                if guards:
                    out[key.value] = guards
        return out
    return {}


class _GuardChecker(ast.NodeVisitor):
    """Held-lock tracking over one function body (SAGE006/SAGE007).

    ``held`` mirrors the ``with self.<guard>:`` nesting at the visited
    statement (bare names containing "lock" count too, for module-level
    helpers).  Nested function and lambda bodies run later under
    unknown locks, so they reset ``held``; nested classes are checked
    against their own ``_guarded_by`` when the linter reaches them.
    """

    def __init__(
        self,
        linter: "_FileLinter",
        guarded: dict[str, tuple[str, ...]],
        check_guards: bool,
    ) -> None:
        self.linter = linter
        self.guarded = guarded
        self.check_guards = check_guards and bool(guarded)
        self.held: list[str] = []

    @staticmethod
    def _guard_name(expr: ast.AST) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
            return expr.id
        return None

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        # Context expressions evaluate before the guard is held.
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        added = [
            guard for item in node.items
            if (guard := self._guard_name(item.context_expr)) is not None
        ]
        self.held.extend(added)
        for stmt in node.body:
            self.visit(stmt)
        if added:
            del self.held[-len(added):]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _visit_deferred(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        saved, self.held = self.held, []
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        self.held = saved

    visit_FunctionDef = _visit_deferred
    visit_AsyncFunctionDef = _visit_deferred
    visit_Lambda = _visit_deferred

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # checked against its own _guarded_by declaration

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.check_guards
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            guards = self.guarded.get(node.attr)
            if guards is not None and not any(
                guard in self.held for guard in guards
            ):
                self.linter._flag(
                    "SAGE006",
                    node,
                    f"self.{node.attr} is declared _guarded_by "
                    f"{'/'.join(guards)} but is accessed with no guard "
                    f"held",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            self._check_blocking(node)
        self.generic_visit(node)

    def _check_blocking(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if (
            func.attr == "sleep"
            and isinstance(receiver, ast.Name)
            and receiver.id == "time"
        ):
            self.linter._flag(
                "SAGE007",
                node,
                f"time.sleep() while holding {self.held[-1]}; release "
                f"the lock first",
            )
        elif func.attr == "join":
            text = ast.unparse(receiver).lower()
            if any(w in text for w in ("thread", "worker", "client")):
                self.linter._flag(
                    "SAGE007",
                    node,
                    f"joining {ast.unparse(receiver)} while holding "
                    f"{self.held[-1]} can deadlock; join outside the "
                    f"lock",
                )
        elif func.attr == "wait":
            name = self._guard_name(receiver)
            if name is None or name not in self.held:
                self.linter._flag(
                    "SAGE007",
                    node,
                    f"blocking wait on {ast.unparse(receiver)} while "
                    f"holding {self.held[-1]}; only the held guard's "
                    f"own condition may wait here",
                )


class _FileLinter(ast.NodeVisitor):
    """Single-file visitor producing :class:`Violation` records."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.violations: list[Violation] = []
        self.hot_path = path.replace("\\", "/").endswith(HOT_PATH_MODULES)
        normalized = path.replace("\\", "/")
        self.simulator_layer = any(
            layer in normalized for layer in SIMULATOR_LAYERS
        )
        # Scope stack entries: (arrayish-name set, exempt-from-SAGE001).
        self._scopes: list[tuple[set[str], bool]] = [(set(), False)]
        self._guarded_stack: list[dict[str, tuple[str, ...]]] = []
        self._function_depth = 0

    # -- scope helpers -------------------------------------------------

    def _allowed(self, rule: str, line: int) -> bool:
        if 1 <= line <= len(self.lines):
            return f"sage: allow({rule})" in self.lines[line - 1]
        return False

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._allowed(rule, line):
            return
        self.violations.append(Violation(self.path, line, rule, message))

    @property
    def _arrayish(self) -> set[str]:
        return self._scopes[-1][0]

    @property
    def _exempt(self) -> bool:
        return self._scopes[-1][1]

    def _push_scope(self, exempt: bool) -> None:
        # Nested scopes read enclosing arrayish names (closure-style).
        inherited = set(self._arrayish)
        self._scopes.append((inherited, exempt or self._exempt))

    def _mark_arrayish(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._arrayish.add(target.id)

    def _is_arrayish_expr(self, node: ast.AST) -> bool:
        """Whether an expression evidently evaluates to an ndarray."""
        if isinstance(node, ast.Name):
            return node.id in self._arrayish
        if isinstance(node, ast.Call):
            if _is_numpy_rooted(node.func):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ARRAY_METHODS
            ):
                return self._is_arrayish_expr(node.func.value)
        return False

    # -- definitions ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._push_scope(node.name.startswith("Reference"))
        self._guarded_stack.append(_parse_guarded_by(node))
        self.generic_visit(node)
        self._guarded_stack.pop()
        self._scopes.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._function_depth == 0:
            # Methods and top-level functions each get one guard pass;
            # the checker handles nested defs itself (held resets).
            guarded = (
                self._guarded_stack[-1] if self._guarded_stack else {}
            )
            check = not (
                node.name == "__init__" or node.name.endswith("_locked")
            )
            checker = _GuardChecker(self, guarded, check)
            for stmt in node.body:
                checker.visit(stmt)
        self._push_scope(node.name.endswith("_reference"))
        all_args = (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
        for arg in all_args:
            if _annotation_is_arrayish(arg.annotation):
                self._arrayish.add(arg.arg)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_arrayish_expr(node.value):
            for target in node.targets:
                self._mark_arrayish(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_arrayish(node.annotation) or (
            node.value is not None and self._is_arrayish_expr(node.value)
        ):
            self._mark_arrayish(node.target)
        self.generic_visit(node)

    # -- SAGE001: interpreter loops over array work --------------------

    def _iter_is_array_work(self, node: ast.AST) -> str | None:
        """Why iterating ``node`` is ndarray work, or None."""
        if self._is_arrayish_expr(node):
            return "iterates an ndarray element-wise"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "range":
                for arg in node.args:
                    if self._range_arg_is_array_extent(arg):
                        return "loops over an ndarray extent via range()"
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "tolist"
                and self._is_arrayish_expr(func.value)
            ):
                return "materializes an ndarray with .tolist()"
        return None

    def _range_arg_is_array_extent(self, arg: ast.AST) -> bool:
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
            and arg.args
            and self._is_arrayish_expr(arg.args[0])
        ):
            return True
        node = arg
        if isinstance(node, ast.Subscript):  # x.shape[0]
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in ("size", "shape"):
            return self._is_arrayish_expr(node.value)
        return False

    def visit_For(self, node: ast.For) -> None:
        if self.hot_path and not self._exempt:
            reason = self._iter_is_array_work(node.iter)
            if reason is not None:
                self._flag(
                    "SAGE001",
                    node,
                    f"Python for-loop {reason} in a hot-path module; "
                    f"vectorize or mark the enclosing scope as a "
                    f"reference implementation",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_sage002(node)
        self._check_sage003(node)
        self._check_sage005(node)
        if (
            self.hot_path
            and not self._exempt
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "tolist"
            and self._is_arrayish_expr(node.func.value)
        ):
            self._flag(
                "SAGE001",
                node,
                "ndarray.tolist() in a hot-path module pulls the batch "
                "into the interpreter",
            )
        self.generic_visit(node)

    # -- SAGE002: metric names must resolve against the registry -------

    def _metric_receiver(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _METRIC_RECEIVERS
        if isinstance(node, ast.Attribute):  # self.metrics, run.metrics
            return node.attr in _METRIC_RECEIVERS
        return False

    def _check_sage002(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        predicate = _METRIC_METHODS.get(func.attr)
        if predicate is None or not self._metric_receiver(func.value):
            return
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # dynamic names are the caller's responsibility
        if not predicate(first.value):
            self._flag(
                "SAGE002",
                node,
                f"{func.attr}({first.value!r}) does not resolve against "
                f"repro.obs.names; register the name or fix the typo",
            )

    # -- SAGE003: determinism ------------------------------------------

    def _check_sage003(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr not in ("default_rng", "Generator", "SeedSequence")
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in _NUMPY_ALIASES
            ):
                self._flag(
                    "SAGE003",
                    node,
                    f"legacy np.random.{func.attr}() uses hidden global "
                    f"state; use a seeded np.random.default_rng()",
                )
                return
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name == "default_rng" and not node.args and not node.keywords:
            self._flag(
                "SAGE003",
                node,
                "default_rng() without a seed is nondeterministic; pass "
                "an explicit seed in library code",
            )

    # -- SAGE005: deprecated entry points ------------------------------

    def _check_sage005(self, node: ast.Call) -> None:
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name == "run_app":
            if any(kw.arg == "sanitizer" for kw in node.keywords):
                self._flag(
                    "SAGE005",
                    node,
                    "run_app(..., sanitizer=...) is deprecated; use "
                    "repro.api.run(..., checks=...)",
                )
        elif name == "QueryBroker":
            self._flag(
                "SAGE005",
                node,
                "direct QueryBroker construction is deprecated; use "
                "repro.api.serve(...) (internal sites carry an inline "
                "allow)",
            )
        elif name == "apply_update" and isinstance(func, ast.Attribute):
            self._flag(
                "SAGE005",
                node,
                ".apply_update(handle, src, dst) is deprecated; use "
                "apply_edges(handle, src, dst) or "
                "apply_delta(handle, delta)",
            )

    # -- SAGE004: swallowed diagnostics --------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                "SAGE004",
                node,
                "bare except: catches SystemExit/KeyboardInterrupt too; "
                "name the exceptions",
            )
        elif self.simulator_layer and self._swallows(node):
            caught = ast.unparse(node.type)
            if caught in ("Exception", "BaseException"):
                self._flag(
                    "SAGE004",
                    node,
                    f"except {caught}: pass swallows simulator "
                    f"diagnostics; handle or re-raise",
                )
        self.generic_visit(node)

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        )


def lint_file(path: Path, root: Path) -> list[Violation]:
    """Lint one file; ``root`` anchors the reported relative path."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        rel = _rel(path, root)
        return [
            Violation(rel, exc.lineno or 1, "SAGE000", f"syntax error: {exc.msg}")
        ]
    linter = _FileLinter(_rel(path, root), source)
    linter.visit(tree)
    return linter.violations


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: list[Path], root: Path) -> list[Violation]:
    """Lint every ``.py`` file under the given paths, stably ordered."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    violations: list[Violation] = []
    for file in files:
        violations.extend(lint_file(file, root))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# ---------------------------------------------------------------------
# Baseline ratcheting
# ---------------------------------------------------------------------

BASELINE_VERSION = 1


def counts_by_key(violations: list[Violation]) -> dict[str, int]:
    out: dict[str, int] = {}
    for violation in violations:
        out[violation.baseline_key] = out.get(violation.baseline_key, 0) + 1
    return out


def load_baseline(path: Path) -> dict[str, int]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return {str(k): int(v) for k, v in data.get("rules", {}).items()}


def write_baseline(path: Path, violations: list[Violation]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "rules": dict(sorted(counts_by_key(violations).items())),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    violations: list[Violation], baseline: dict[str, int]
) -> tuple[list[Violation], list[str]]:
    """Split violations into (new beyond baseline, ratchet notes).

    Per ``path::RULE`` key, up to the baselined count is forgiven; any
    excess is returned as live violations.  Keys whose current count
    dropped below the baseline produce advisory notes suggesting a
    ``--update-baseline`` tightening (never a failure).
    """
    remaining = dict(baseline)
    new: list[Violation] = []
    for violation in violations:
        left = remaining.get(violation.baseline_key, 0)
        if left > 0:
            remaining[violation.baseline_key] = left - 1
        else:
            new.append(violation)
    notes = [
        f"{key}: baseline allows {baseline[key]}, now {baseline[key] - left} "
        f"— ratchet down with --update-baseline"
        for key, left in sorted(remaining.items())
        if left > 0
    ]
    return new, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="directory violations paths are relative to "
                             "(default: cwd; must match the baseline's root)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed baseline JSON to ratchet against")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the current counts")
    args = parser.parse_args(argv)

    root = Path(args.root)
    violations = lint_paths([Path(p) for p in args.paths], root)

    if args.update_baseline:
        if not args.baseline:
            print("--update-baseline requires --baseline", file=sys.stderr)
            return 2
        write_baseline(Path(args.baseline), violations)
        print(f"wrote {args.baseline} ({len(violations)} baselined findings)")
        return 0

    notes: list[str] = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"baseline {baseline_path} missing", file=sys.stderr)
            return 2
        violations, notes = apply_baseline(
            violations, load_baseline(baseline_path)
        )

    for violation in violations:
        print(violation)
    for note in notes:
        print(f"note: {note}")
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
