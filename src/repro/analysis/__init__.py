"""Static analysis and runtime sanitizing for the SAGE reproduction.

Three halves:

* :mod:`repro.analysis.sanitizer` — an opt-in runtime pass
  (``repro run --sanitize``) that inspects every scheduled work unit and
  memory access batch of a traversal and reports structured diagnostics
  for write-write hazards, out-of-bounds indices, dtype overflow in
  address arithmetic and frontier invariant violations.
* :mod:`repro.analysis.races` — the concurrency sanitizer
  (``repro serve-bench --race-check``): a vector-clock happens-before
  race detector over the instrumented serving stack plus a
  deterministic CHESS-style schedule explorer.
* :mod:`repro.analysis.lint` — a repo-specific AST lint
  (``python -m repro.analysis.lint src/``) with ratcheted-baseline
  enforcement of the hot-path, metric-naming, determinism, diagnostics
  and lock-discipline rules (SAGE001-SAGE007).
"""

from repro.analysis.races import RACE_CODES, RaceDetector, RaceFinding
from repro.analysis.sanitizer import (
    FINDING_CODES,
    Finding,
    Sanitizer,
    SanitizerError,
)

__all__ = [
    "FINDING_CODES",
    "RACE_CODES",
    "Finding",
    "RaceDetector",
    "RaceFinding",
    "Sanitizer",
    "SanitizerError",
]
