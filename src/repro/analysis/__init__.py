"""Static analysis and runtime sanitizing for the SAGE reproduction.

Two halves:

* :mod:`repro.analysis.sanitizer` — an opt-in runtime pass
  (``repro run --sanitize``) that inspects every scheduled work unit and
  memory access batch of a traversal and reports structured diagnostics
  for write-write hazards, out-of-bounds indices, dtype overflow in
  address arithmetic and frontier invariant violations.
* :mod:`repro.analysis.lint` — a repo-specific AST lint
  (``python -m repro.analysis.lint src/``) with ratcheted-baseline
  enforcement of the hot-path, metric-naming, determinism and
  diagnostics rules (SAGE001-SAGE004).
"""

from repro.analysis.sanitizer import (
    FINDING_CODES,
    Finding,
    Sanitizer,
    SanitizerError,
)

__all__ = [
    "FINDING_CODES",
    "Finding",
    "Sanitizer",
    "SanitizerError",
]
