"""Kernel hazard sanitizer: racecheck-style invariant checking for runs.

The simulator's correctness story rests on invariants the cost model only
assumes: atomic-aggregation apps (BC/PR) may issue duplicate destination
writes, but non-atomic apps (BFS, pull-style PageRank) must never see two
writes to the same destination inside one scheduled work unit; every
vertex/edge index must stay inside the CSR extents; address arithmetic
must not overflow the batch dtype; frontiers are deduplicated by
contraction and, for monotone-level traversals, never revisit a settled
node.  :class:`Sanitizer` checks all of these on the live batches of a
run — opt-in (``repro run --sanitize``), with zero effect on simulated
timing or gated metrics when disabled.

Work units are the per-frontier-node adjacency segments (the unit every
scheduler decomposes; duplicate destinations *across* segments are
legitimate concurrency, duplicates *inside* one segment are a
write-write hazard for non-atomic filters).  Scheduler- and device-level
hooks additionally validate the tile decomposition's coverage and the
consistency of every :class:`~repro.gpusim.cost.KernelStats` batch.

Findings are structured (:class:`Finding`), flow into :mod:`repro.obs`
as ``sanitizer.*`` counters, and export as a JSON report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ReproError
from repro.gpusim.memory import dtype_address_capacity
from repro.obs import NULL_REGISTRY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.apps.base import App
    from repro.graph.csr import CSRGraph
    from repro.gpusim.cost import KernelStats
    from repro.gpusim.spec import GPUSpec

SCHEMA_VERSION = 1

#: Every finding code the sanitizer can report, with a one-line meaning.
FINDING_CODES: dict[str, str] = {
    "write_write_hazard": (
        "duplicate destination writes inside one work unit of a non-atomic app"
    ),
    "oob_vertex_index": "vertex index outside [0, num_nodes)",
    "oob_edge_index": "edge position outside [0, num_edges)",
    "dtype_overflow": "address arithmetic can overflow the batch dtype",
    "frontier_duplicates": "duplicate node ids in a claimed-unique frontier",
    "nonmonotone_level": "settled node re-entered a later frontier of a monotone-level app",
    "invalid_permutation": "reorder commit is not a bijection over the nodes",
    "work_unit_gap": "scheduled tiles do not cover the edge batch exactly",
    "kernel_stats_inconsistent": "scheduler-reported kernel stats are inconsistent",
}

#: Example indices carried per finding (enough to debug, bounded output).
MAX_EXAMPLES = 5


class SanitizerError(ReproError):
    """Raised instead of recording when ``fail_fast`` is enabled."""


@dataclass(frozen=True)
class Finding:
    """One structured sanitizer diagnostic."""

    code: str
    message: str
    app: str = ""
    iteration: int | None = None
    work_unit: int | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view."""
        return {
            "code": self.code,
            "message": self.message,
            "app": self.app,
            "iteration": self.iteration,
            "work_unit": self.work_unit,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        where = []
        if self.app:
            where.append(f"app={self.app}")
        if self.iteration is not None:
            where.append(f"iteration={self.iteration}")
        if self.work_unit is not None:
            where.append(f"work_unit={self.work_unit}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.code}: {self.message}{suffix}"


def _examples(values: np.ndarray) -> list[int]:
    """Bounded example list for finding details."""
    return [int(v) for v in np.asarray(values).ravel()[:MAX_EXAMPLES]]


class Sanitizer:
    """Checks traversal batches and scheduled work units for hazards.

    Usable standalone in tests (construct, :meth:`begin_run`, feed
    batches to :meth:`check_level`) or threaded through a
    :class:`~repro.core.pipeline.TraversalPipeline` via its ``sanitizer``
    argument, which also hooks the simulated device
    (:meth:`check_kernel_stats`) and the SAGE scheduler's tile
    decomposition (:meth:`check_work_units`).

    Args:
        metrics: observability registry receiving ``sanitizer.*``
            counters (attach later with :meth:`set_metrics`).
        fail_fast: raise :class:`SanitizerError` on the first finding
            instead of recording it (useful under pytest).
        max_findings: stop recording (but keep counting) beyond this
            many findings so a systematically-broken run stays bounded.
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        fail_fast: bool = False,
        max_findings: int = 1000,
    ) -> None:
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.fail_fast = fail_fast
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        self.total_findings = 0
        self.levels_checked = 0
        self.edges_checked = 0
        self.kernels_checked = 0
        self._app_name = ""
        self._uses_atomics = True
        self._frontier_unique = True
        self._monotone_levels = False
        self._num_nodes = 0
        self._num_edges = 0
        self._value_bytes = 4
        self._settled: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def set_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Attach the run's observability registry."""
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    def begin_run(
        self,
        graph: "CSRGraph",
        app: "App",
        *,
        value_bytes: int = 4,
    ) -> None:
        """Capture the run's extents and the app's declared contract."""
        self._app_name = app.name
        self._uses_atomics = bool(app.uses_atomics)
        self._frontier_unique = bool(getattr(app, "frontier_unique", True))
        self._monotone_levels = bool(getattr(app, "monotone_levels", False))
        self._num_nodes = int(graph.num_nodes)
        self._num_edges = int(graph.num_edges)
        self._value_bytes = int(value_bytes)
        self._settled = (
            np.zeros(self._num_nodes, dtype=bool) if self._monotone_levels else None
        )
        # CSR container extents must themselves be representable: an
        # offsets array whose dtype cannot hold num_edges (or a targets
        # array whose dtype cannot hold the last node id) has already
        # overflowed before any kernel runs.
        for label, arr, needed in (
            ("offsets", graph.offsets, self._num_edges),
            ("targets", graph.targets, max(0, self._num_nodes - 1)),
        ):
            capacity = dtype_address_capacity(arr.dtype)
            if capacity is not None and capacity < needed:
                self._record(
                    Finding(
                        code="dtype_overflow",
                        message=(
                            f"CSR {label} dtype {arr.dtype} cannot represent "
                            f"{needed} (max {capacity})"
                        ),
                        app=self._app_name,
                        details={"array": label, "dtype": str(arr.dtype)},
                    )
                )

    def end_run(self) -> None:
        """Finish one run (kept for API symmetry; counters are live)."""
        self._settled = None

    # ------------------------------------------------------------------
    # Level-granular checks (the pipeline's memory access batches)
    # ------------------------------------------------------------------

    def check_level(
        self,
        iteration: int,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray | None = None,
    ) -> list[Finding]:
        """Check one iteration's frontier and expanded edge batch.

        Returns the findings recorded for this level (also accumulated
        on the sanitizer).
        """
        before = len(self.findings)
        self._check_frontier(iteration, frontier)
        self._check_vertex_bounds(iteration, "edge_dst", edge_dst)
        if edge_pos is not None and edge_pos.size:
            bad = (edge_pos < 0) | (edge_pos >= self._num_edges)
            if bad.any():
                self._record(
                    Finding(
                        code="oob_edge_index",
                        message=(
                            f"{int(bad.sum())} edge positions outside "
                            f"[0, {self._num_edges})"
                        ),
                        app=self._app_name,
                        iteration=iteration,
                        details={"examples": _examples(edge_pos[bad])},
                    )
                )
        self._check_address_dtype(iteration, edge_dst)
        if not self._uses_atomics:
            self._check_write_write(iteration, degrees, edge_dst)
        self.levels_checked += 1
        self.edges_checked += int(edge_dst.size)
        self.metrics.count("sanitizer.levels_checked")
        self.metrics.count("sanitizer.edges_checked", int(edge_dst.size))
        return self.findings[before:]

    def _check_frontier(self, iteration: int, frontier: np.ndarray) -> None:
        self._check_vertex_bounds(iteration, "frontier", frontier)
        if frontier.size == 0:
            return
        unique, counts = np.unique(frontier, return_counts=True)
        if self._frontier_unique and unique.size != frontier.size:
            dup = unique[counts > 1]
            self._record(
                Finding(
                    code="frontier_duplicates",
                    message=(
                        f"{int(frontier.size - unique.size)} duplicate ids in a "
                        f"claimed-unique frontier of {int(frontier.size)}"
                    ),
                    app=self._app_name,
                    iteration=iteration,
                    details={"examples": _examples(dup)},
                )
            )
        if self._settled is not None:
            valid = frontier[(frontier >= 0) & (frontier < self._num_nodes)]
            revisits = valid[self._settled[valid]]
            if revisits.size:
                self._record(
                    Finding(
                        code="nonmonotone_level",
                        message=(
                            f"{int(revisits.size)} settled nodes re-entered the "
                            f"frontier (levels must be monotone for "
                            f"{self._app_name})"
                        ),
                        app=self._app_name,
                        iteration=iteration,
                        details={"examples": _examples(revisits)},
                    )
                )
            self._settled[valid] = True

    def _check_vertex_bounds(
        self, iteration: int, label: str, ids: np.ndarray
    ) -> None:
        if ids.size == 0:
            return
        bad = (ids < 0) | (ids >= self._num_nodes)
        if bad.any():
            self._record(
                Finding(
                    code="oob_vertex_index",
                    message=(
                        f"{int(bad.sum())} {label} indices outside "
                        f"[0, {self._num_nodes})"
                    ),
                    app=self._app_name,
                    iteration=iteration,
                    details={"array": label, "examples": _examples(ids[bad])},
                )
            )

    def _check_address_dtype(self, iteration: int, edge_dst: np.ndarray) -> None:
        """Byte-address arithmetic (``id * value_bytes``) must fit the dtype.

        Catches narrowed index arrays (int16/int32 on large graphs) whose
        scaled addresses silently wrap in the simulated gather.
        """
        capacity = dtype_address_capacity(edge_dst.dtype)
        if capacity is None or edge_dst.size == 0:
            return
        max_id = max(int(edge_dst.max()), self._num_nodes - 1)
        max_address = max_id * self._value_bytes
        if max_address > capacity:
            self._record(
                Finding(
                    code="dtype_overflow",
                    message=(
                        f"byte address {max_address} (= {max_id} * "
                        f"{self._value_bytes} B) overflows {edge_dst.dtype} "
                        f"(max {capacity})"
                    ),
                    app=self._app_name,
                    iteration=iteration,
                    details={
                        "dtype": str(edge_dst.dtype),
                        "max_id": max_id,
                        "value_bytes": self._value_bytes,
                    },
                )
            )

    def _check_write_write(
        self, iteration: int, degrees: np.ndarray, edge_dst: np.ndarray
    ) -> None:
        """Duplicate destinations inside one work unit (non-atomic apps).

        Work units are the per-frontier-node segments given by
        ``degrees``; one flat composite-key sort finds all intra-segment
        duplicates without assuming the CSR sorted-slice invariant.
        """
        if edge_dst.size == 0 or degrees.size == 0:
            return
        degrees = np.asarray(degrees, dtype=np.int64)
        if int(degrees.sum()) != int(edge_dst.size):
            # Mismatched segmentation is reported by the coverage check;
            # the hazard scan would mis-attribute duplicates, so skip.
            return
        seg_of = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
        span = max(1, self._num_nodes, int(edge_dst.max()) + 1)
        if degrees.size * span < 2**62:
            key = seg_of * span + np.asarray(edge_dst, dtype=np.int64)
            key = np.sort(key)
            dup_mask = key[1:] == key[:-1]
            if not dup_mask.any():
                return
            dup_keys = np.unique(key[1:][dup_mask])
            units = dup_keys // span
            dests = dup_keys % span
        else:  # pragma: no cover - astronomically sparse id ranges
            order = np.lexsort((edge_dst, seg_of))
            s, d = seg_of[order], edge_dst[order]
            dup_mask = (s[1:] == s[:-1]) & (d[1:] == d[:-1])
            if not dup_mask.any():
                return
            units, dests = s[1:][dup_mask], d[1:][dup_mask]
        self._record(
            Finding(
                code="write_write_hazard",
                message=(
                    f"{int(dup_mask.sum())} duplicate destination writes "
                    f"inside {int(np.unique(units).size)} work units of "
                    f"non-atomic app {self._app_name!r}"
                ),
                app=self._app_name,
                iteration=iteration,
                work_unit=int(units[0]),
                details={
                    "work_units": _examples(units),
                    "destinations": _examples(dests),
                },
            )
        )

    # ------------------------------------------------------------------
    # Scheduler- and device-level hooks
    # ------------------------------------------------------------------

    def check_work_units(
        self,
        tile_sizes: np.ndarray,
        fragment_sizes: np.ndarray,
        total_edges: int,
        iteration: int | None = None,
    ) -> None:
        """Scheduled tiles + fragments must cover the batch exactly."""
        covered = int(tile_sizes.sum()) + int(fragment_sizes.sum())
        if covered != int(total_edges):
            self._record(
                Finding(
                    code="work_unit_gap",
                    message=(
                        f"tile decomposition covers {covered} edges of a "
                        f"{int(total_edges)}-edge batch"
                    ),
                    app=self._app_name,
                    iteration=iteration,
                    details={
                        "covered": covered,
                        "total_edges": int(total_edges),
                    },
                )
            )

    def check_kernel_stats(self, stats: "KernelStats", spec: "GPUSpec") -> None:
        """Consistency of one scheduler-reported kernel description."""
        problems: list[str] = []
        if stats.active_edges < 0:
            problems.append(f"negative active_edges ({stats.active_edges})")
        if stats.issued_lane_cycles + 1e-9 < stats.active_edges:
            problems.append(
                f"issued lanes ({stats.issued_lane_cycles}) < active edges "
                f"({stats.active_edges})"
            )
        if stats.value_sector_unique > stats.value_sector_touches:
            problems.append(
                f"unique sectors ({stats.value_sector_unique}) exceed "
                f"touches ({stats.value_sector_touches})"
            )
        if stats.per_sm_lane_cycles.size not in (0, spec.num_sms):
            problems.append(
                f"per-SM array has {stats.per_sm_lane_cycles.size} entries, "
                f"expected 0 or {spec.num_sms}"
            )
        for label, value in (
            ("overhead_cycles", stats.overhead_cycles),
            ("extra_dram_bytes", stats.extra_dram_bytes),
            ("atomic_conflicts", stats.atomic_conflicts),
            ("concurrency_warps", stats.concurrency_warps),
        ):
            if not np.isfinite(value) or value < 0:
                problems.append(f"non-finite or negative {label} ({value})")
        if stats.active_edges > 0 and stats.concurrency_warps <= 0:
            problems.append("active edges with zero concurrency")
        self.kernels_checked += 1
        self.metrics.count("sanitizer.kernels_checked")
        for problem in problems:
            self._record(
                Finding(
                    code="kernel_stats_inconsistent",
                    message=problem,
                    app=self._app_name,
                )
            )

    def check_commit(self, perm: np.ndarray, num_nodes: int) -> None:
        """A reorder commit must be a bijection over the node ids."""
        perm = np.asarray(perm)
        ok = perm.size == num_nodes
        if ok and num_nodes:
            ok = bool(
                perm.min() >= 0
                and perm.max() < num_nodes
                and np.bincount(perm, minlength=num_nodes).max() == 1
            )
        if not ok:
            self._record(
                Finding(
                    code="invalid_permutation",
                    message=(
                        f"reorder commit of size {perm.size} is not a "
                        f"bijection over {num_nodes} nodes"
                    ),
                    app=self._app_name,
                    details={"size": int(perm.size), "num_nodes": int(num_nodes)},
                )
            )

    def notify_reordered(self, perm: np.ndarray) -> None:
        """Relabel tracked per-node state after a reordering commit."""
        if self._settled is not None and perm.size == self._settled.size:
            remapped = np.zeros_like(self._settled)
            remapped[perm] = self._settled
            self._settled = remapped

    # ------------------------------------------------------------------
    # Recording / reporting
    # ------------------------------------------------------------------

    def _record(self, finding: Finding) -> None:
        if finding.code not in FINDING_CODES:  # pragma: no cover - dev error
            raise ValueError(f"unknown finding code {finding.code!r}")
        if self.fail_fast:
            raise SanitizerError(str(finding))
        self.total_findings += 1
        self.metrics.count("sanitizer.findings")
        self.metrics.count(f"sanitizer.{finding.code}")
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)

    @property
    def clean(self) -> bool:
        """Whether no finding has been recorded."""
        return self.total_findings == 0

    def counts_by_code(self) -> dict[str, int]:
        """Recorded findings grouped by code."""
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out

    def report(self) -> dict[str, Any]:
        """The JSON-ready structured report."""
        return {
            "schema_version": SCHEMA_VERSION,
            "clean": self.clean,
            "total_findings": self.total_findings,
            "levels_checked": self.levels_checked,
            "edges_checked": self.edges_checked,
            "kernels_checked": self.kernels_checked,
            "counts_by_code": self.counts_by_code(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report to ``path`` and return it."""
        out = Path(path)
        out.write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return out

    def format_summary(self) -> str:
        """Human-readable findings summary (the CLI's output)."""
        lines = [
            f"sanitizer: {'clean' if self.clean else 'FINDINGS'} — "
            f"{self.total_findings} findings over {self.levels_checked} "
            f"levels / {self.edges_checked} edges / "
            f"{self.kernels_checked} kernels"
        ]
        for code, count in sorted(self.counts_by_code().items()):
            lines.append(f"  {code:26s} {count}")
        for finding in self.findings[:20]:
            lines.append(f"  - {finding}")
        if len(self.findings) > 20:
            lines.append(f"  ... {len(self.findings) - 20} more")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sanitizer({self.total_findings} findings, "
            f"{self.levels_checked} levels checked)"
        )
