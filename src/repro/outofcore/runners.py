"""Out-of-core traversal runners (paper Figure 8).

Three strategies for running when the graph exceeds device memory, all
executing the same functional pipeline and differing in how bytes cross
the PCIe link:

* :class:`SubwayRunner` — Subway [38]: per iteration, extract the
  *active subgraph* (the frontier's adjacency lists) on the host and
  ship it as one large asynchronous transfer that overlaps with compute.
* :class:`SageOutOfCoreRunner` — SAGE: on-demand sector access through a
  device-resident pool; Tiled Partitioning keeps accesses sector-aligned
  so missing sectors cluster into few large requests, resident data is
  reused across iterations, and Resident Tile Stealing keeps the memory
  pipeline busy (modeled by its scheduler's concurrency).
* :class:`OnDemandUMRunner` — naive unified-memory paging: page-granular
  faults, unmerged and unoverlapped, so the control-segment overhead of
  Section 3.3 crushes the effective bandwidth.

In all three, the node-attribute arrays (|V| * 4 B) stay device-resident
— it is the |E|-sized CSR image that exceeds device memory — so the
external traffic below is adjacency traffic, while attribute access
costs remain inside the kernel model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.apps.base import App
from repro.baselines.gunrock import GunrockScheduler
from repro.core.engine import SageScheduler
from repro.core.frontier import FrontierQueue
from repro.core.pipeline import RunResult
from repro.core.scheduler import Scheduler
from repro.errors import ConvergenceError, InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device
from repro.gpusim.spec import GPUSpec, LinkSpec, PCIE3_X16
from repro.gpusim.streams import H2D, HOST, KERNEL, TraceNode, kernel_occupancy
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.outofcore.layout import GraphLayout, layout_for
from repro.outofcore.pool import SectorPool, contiguous_runs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import Sanitizer

#: Subway's subgraph generation scans the full host-resident edge list
#: to compact the active edges each round (SIMD-assisted).
SUBWAY_SCAN_NS_PER_EDGE = 0.25
#: unified-memory fault granularity.
UM_PAGE_BYTES = 4096
#: deep request pipelining from Resident Tile Stealing: many independent
#: tiles keep this many fetches in flight, amortizing per-request cost.
SAGE_REQUEST_PIPELINE = 8.0


class _OutOfCoreBase:
    """Shared pipeline loop for out-of-core runners."""

    name = "ooc"

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        device_fraction: float = 0.25,
        link: LinkSpec = PCIE3_X16,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < device_fraction <= 1.0:
            raise InvalidParameterError("device_fraction must be in (0, 1]")
        self.scheduler = scheduler
        self.device_fraction = device_fraction
        self.link = link
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.transfer_seconds_total = 0.0
        self.bytes_transferred = 0
        self.requests_issued = 0
        self.sanitizer: "Sanitizer | None" = None

    def set_sanitizer(self, sanitizer: "Sanitizer | None") -> None:
        """Attach (or detach) a hazard sanitizer for subsequent runs."""
        self.sanitizer = sanitizer

    def run(
        self,
        graph: CSRGraph,
        app: App,
        source: int | None = None,
        *,
        max_iterations: int = 100_000,
    ) -> RunResult:
        """Run ``app`` out-of-core and return timing including transfers."""
        metrics = self.metrics
        sanitizer = self.sanitizer
        device = Device(self.scheduler.spec, sanitizer=sanitizer)
        layout = layout_for(graph, self.scheduler.spec)
        with metrics.span(
            "ooc.run", runner=self.name, app=app.name,
            device_fraction=self.device_fraction,
        ) as run_span:
            self._start(graph, layout)
            app.setup(graph, source)
            self.scheduler.set_metrics(metrics)
            self.scheduler.set_sanitizer(sanitizer)
            self.scheduler.reset(graph)
            if sanitizer is not None:
                sanitizer.set_metrics(metrics)
                sanitizer.begin_run(graph, app)
            queue = FrontierQueue(app.initial_frontier())
            seconds = 0.0
            edges_traversed = 0
            iterations = 0
            node_trace: list[TraceNode] = []
            self.transfer_seconds_total = 0.0
            self.bytes_transferred = 0
            self.requests_issued = 0
            while not queue.empty:
                if iterations >= max_iterations:
                    raise ConvergenceError(
                        f"{app.name} exceeded {max_iterations} iterations"
                    )
                frontier = queue.current
                with metrics.span(
                    "iteration", index=iterations,
                    frontier_size=int(frontier.size),
                ) as it_span:
                    edge_src, edge_dst, edge_pos = graph.expand_frontier(
                        frontier
                    )
                    degrees = (graph.offsets[frontier + 1]
                               - graph.offsets[frontier])
                    if sanitizer is not None:
                        sanitizer.check_level(
                            iterations, frontier, degrees, edge_dst,
                            edge_pos,
                        )
                    stats = self.scheduler.kernel_stats(
                        frontier, degrees, edge_dst, graph, app
                    )
                    if sanitizer is not None:
                        # Kernels here bypass Device.run_kernel (the
                        # timing is merged with transfer overlap), so
                        # audit the batch stats explicitly.
                        sanitizer.check_kernel_stats(stats, device.spec)
                    timing = device.cost_model.time_kernel(stats)
                    kernel_seconds = device.spec.cycles_to_seconds(
                        timing.cycles
                    )
                    bytes_before = self.bytes_transferred
                    transfer_before = self.transfer_seconds_total
                    iter_seconds = self._iteration_seconds(
                        kernel_seconds, frontier, edge_dst, edge_pos, layout
                    )
                    device.profiler.record(stats, timing)
                    self._trace_iteration(
                        node_trace, kernel_seconds,
                        self.transfer_seconds_total - transfer_before,
                        iter_seconds, iterations,
                        kernel_occupancy(timing),
                    )
                    it_span.set("kernel_seconds", kernel_seconds)
                    it_span.set("iteration_seconds", iter_seconds)
                    it_span.set(
                        "transfer_bytes",
                        self.bytes_transferred - bytes_before,
                    )
                    it_span.set(
                        "transfer_seconds",
                        self.transfer_seconds_total - transfer_before,
                    )
                    seconds += iter_seconds
                    edges_traversed += int(edge_dst.size)
                    next_frontier = app.process_level(
                        edge_src, edge_dst,
                        edge_pos if app.needs_edge_positions else None,
                    )
                    queue.publish_next(next_frontier)
                    queue.swap()
                    iterations += 1
            run_span.set("simulated_seconds", seconds)
            run_span.set("transfer_seconds", self.transfer_seconds_total)
            metrics.count("ooc.bytes_transferred", self.bytes_transferred)
            metrics.count("ooc.requests", self.requests_issued)
            metrics.count("ooc.transfer_seconds", self.transfer_seconds_total)
            metrics.fold_profiler(device.profiler)
            if sanitizer is not None:
                sanitizer.end_run()
        result = RunResult(
            app_name=app.name,
            scheduler_name=self.name,
            seconds=seconds,
            iterations=iterations,
            edges_traversed=edges_traversed,
            result=app.result(),
            profiler=device.profiler,
            node_trace=node_trace,
        )
        result.extras["transfer_seconds"] = self.transfer_seconds_total
        result.extras["bytes_transferred"] = float(self.bytes_transferred)
        result.extras["requests"] = float(self.requests_issued)
        return result

    # hooks ------------------------------------------------------------

    def _start(self, graph: CSRGraph, layout: GraphLayout) -> None:
        """Per-run initialization."""

    def _iteration_seconds(
        self,
        kernel_seconds: float,
        frontier: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray,
        layout: GraphLayout,
    ) -> float:
        raise NotImplementedError

    def _trace_iteration(
        self,
        trace: list[TraceNode],
        kernel_seconds: float,
        transfer_seconds: float,
        iter_seconds: float,
        iteration: int,
        occupancy: float,
    ) -> None:
        """Append this iteration's replayable nodes to ``trace``.

        Each runner mirrors its own ``_iteration_seconds`` shape so a
        lone DAG replay reproduces the synchronous timeline exactly;
        group keys are spaced by 2 to leave room for a serial tail
        group (Subway's extraction scan).
        """
        raise NotImplementedError


class SubwayRunner(_OutOfCoreBase):
    """Active-subgraph extraction with asynchronous preloading."""

    name = "subway"

    def __init__(
        self,
        spec: GPUSpec | None = None,
        *,
        device_fraction: float = 0.25,
        link: LinkSpec = PCIE3_X16,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            GunrockScheduler(spec), device_fraction=device_fraction,
            link=link, metrics=metrics,
        )

    def _iteration_seconds(
        self,
        kernel_seconds: float,
        frontier: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray,
        layout: GraphLayout,
    ) -> float:
        # The active subgraph: frontier adjacency lists (4 B targets)
        # plus a compacted offsets array (8 B per frontier node),
        # shipped as one large batched transfer.
        payload = edge_dst.size * 4 + frontier.size * 8
        transfer = self.link.transfer_seconds(payload, requests=1)
        # Subgraph generation compacts the active edges out of the full
        # host edge list every round.
        total_edges = int(layout.targets_sectors * layout.sector_width)
        extract = total_edges * SUBWAY_SCAN_NS_PER_EDGE * 1e-9
        self.transfer_seconds_total += transfer
        self.bytes_transferred += payload
        self.requests_issued += 1
        # Asynchronous preloading overlaps the transfer with compute.
        return max(kernel_seconds, transfer) + extract

    def _trace_iteration(
        self,
        trace: list[TraceNode],
        kernel_seconds: float,
        transfer_seconds: float,
        iter_seconds: float,
        iteration: int,
        occupancy: float,
    ) -> None:
        # max(kernel, transfer) as one barrier group, then the host-side
        # extraction scan as a serial tail group of its own.
        trace.append(TraceNode(
            KERNEL, kernel_seconds, occupancy=occupancy,
            iteration=2 * iteration,
        ))
        trace.append(TraceNode(
            H2D, transfer_seconds, iteration=2 * iteration, overlap=True,
        ))
        extract = iter_seconds - max(kernel_seconds, transfer_seconds)
        trace.append(TraceNode(
            HOST, max(0.0, extract), iteration=2 * iteration + 1,
        ))


class SageOutOfCoreRunner(_OutOfCoreBase):
    """Tile-aligned on-demand access through a resident sector pool."""

    name = "sage-ooc"

    def __init__(
        self,
        spec: GPUSpec | None = None,
        *,
        device_fraction: float = 0.25,
        link: LinkSpec = PCIE3_X16,
        scheduler: Scheduler | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            scheduler or SageScheduler(spec),
            device_fraction=device_fraction,
            link=link,
            metrics=metrics,
        )
        self._pool: SectorPool | None = None

    def _start(self, graph: CSRGraph, layout: GraphLayout) -> None:
        total = self._pool_units(layout)
        capacity = max(1, int(total * self.device_fraction))
        self._pool = SectorPool(capacity, total)

    def _pool_units(self, layout: GraphLayout) -> int:
        """Units the residency pool tracks (sectors by default)."""
        return layout.targets_sectors

    def _iteration_seconds(
        self,
        kernel_seconds: float,
        frontier: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray,
        layout: GraphLayout,
    ) -> float:
        assert self._pool is not None
        needed = layout.target_sectors_of(edge_pos)
        missing = self._pool.access(needed)
        payload = missing.size * layout.sector_bytes
        # Tile alignment merges contiguous missing sectors into single
        # requests (Section 5.3's alignment + Section 7.2's analysis);
        # Resident Tile Stealing keeps many independent fetches in
        # flight, amortizing the per-request controller cost.
        requests = contiguous_runs(missing)
        effective_requests = max(
            1, int(round(requests / SAGE_REQUEST_PIPELINE))
        ) if requests else 0
        transfer = self.link.transfer_seconds(payload,
                                              requests=effective_requests)
        self.transfer_seconds_total += transfer
        self.bytes_transferred += payload
        self.requests_issued += requests
        # ...and overlaps fetches with compute on already-resident tiles.
        return max(kernel_seconds, transfer)

    def _trace_iteration(
        self,
        trace: list[TraceNode],
        kernel_seconds: float,
        transfer_seconds: float,
        iter_seconds: float,
        iteration: int,
        occupancy: float,
    ) -> None:
        # Kernel and fetch overlap inside the iteration barrier:
        # the group's makespan is max(kernel, transfer).
        trace.append(TraceNode(
            KERNEL, kernel_seconds, occupancy=occupancy,
            iteration=2 * iteration,
        ))
        trace.append(TraceNode(
            H2D, transfer_seconds, iteration=2 * iteration, overlap=True,
        ))


class OnDemandUMRunner(SageOutOfCoreRunner):
    """Naive unified-memory paging: page-granular faults, no overlap.

    Every fault moves a whole 4 KiB page (over-fetch for scattered
    accesses) and stalls the faulting warp; faults are not merged.
    """

    name = "um-ondemand"

    def __init__(
        self,
        spec: GPUSpec | None = None,
        *,
        device_fraction: float = 0.25,
        link: LinkSpec = PCIE3_X16,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            spec, device_fraction=device_fraction, link=link,
            scheduler=GunrockScheduler(spec), metrics=metrics,
        )

    def _pool_units(self, layout: GraphLayout) -> int:
        sectors_per_page = UM_PAGE_BYTES // layout.sector_bytes
        return max(1, -(-layout.targets_sectors // sectors_per_page))

    def _iteration_seconds(
        self,
        kernel_seconds: float,
        frontier: np.ndarray,
        edge_dst: np.ndarray,
        edge_pos: np.ndarray,
        layout: GraphLayout,
    ) -> float:
        assert self._pool is not None
        sectors_per_page = UM_PAGE_BYTES // layout.sector_bytes
        needed = layout.target_sectors_of(edge_pos) // sectors_per_page
        missing_pages = self._pool.access(needed)
        payload = missing_pages.size * UM_PAGE_BYTES
        requests = int(missing_pages.size)  # a fault per page, unmerged
        transfer = self.link.transfer_seconds(payload, requests=requests)
        self.transfer_seconds_total += transfer
        self.bytes_transferred += payload
        self.requests_issued += requests
        # Page faults stall the kernel: no overlap.
        return kernel_seconds + transfer

    def _trace_iteration(
        self,
        trace: list[TraceNode],
        kernel_seconds: float,
        transfer_seconds: float,
        iter_seconds: float,
        iteration: int,
        occupancy: float,
    ) -> None:
        # Faults stall the kernel, so the transfer extends the serial
        # chain instead of overlapping it.
        trace.append(TraceNode(
            KERNEL, kernel_seconds, occupancy=occupancy,
            iteration=2 * iteration,
        ))
        trace.append(TraceNode(
            H2D, transfer_seconds, iteration=2 * iteration,
        ))
