"""External-memory layout of an out-of-core graph.

The host-resident graph image is addressed in sectors: first the CSR
``targets`` array, then the node value (attribute) region.  Runners map
their accesses (adjacency gathers, value reads/writes) to sector ids in
this space so the :class:`~repro.outofcore.pool.SectorPool` can track
residency uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.spec import GPUSpec


@dataclass(frozen=True)
class GraphLayout:
    """Sector addressing of one graph's external image."""

    sector_width: int
    sector_bytes: int
    targets_sectors: int
    values_sectors: int

    @property
    def total_sectors(self) -> int:
        return self.targets_sectors + self.values_sectors

    @property
    def total_bytes(self) -> int:
        return self.total_sectors * self.sector_bytes

    def target_sectors_of(self, positions: np.ndarray) -> np.ndarray:
        """Sector ids of CSR ``targets`` positions."""
        return np.asarray(positions, dtype=np.int64) // self.sector_width

    def value_sectors_of(self, nodes: np.ndarray) -> np.ndarray:
        """Sector ids of node value slots."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.targets_sectors + nodes // self.sector_width


def layout_for(graph: CSRGraph, spec: GPUSpec) -> GraphLayout:
    """Compute the external layout of ``graph`` under ``spec``."""
    w = spec.sector_width
    return GraphLayout(
        sector_width=w,
        sector_bytes=spec.sector_bytes,
        targets_sectors=max(1, -(-graph.num_edges // w)),
        values_sectors=max(1, -(-graph.num_nodes // w)),
    )
