"""Device-resident sector pool for out-of-core graphs.

When the graph exceeds device memory (paper Section 3.3), data lives in
host memory and the device keeps a cache-like pool.  The pool tracks
which 32 B sectors of the external graph image are resident, evicting
least-recently-touched sectors when capacity is exceeded — the behaviour
of CUDA unified memory at sector/page granularity, vectorized so whole
access batches are processed at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


class SectorPool:
    """LRU-approximating resident-set of external-memory sectors."""

    def __init__(self, capacity_sectors: int, total_sectors: int) -> None:
        if capacity_sectors < 1 or total_sectors < 1:
            raise InvalidParameterError("pool sizes must be positive")
        self.capacity = int(capacity_sectors)
        self.total_sectors = int(total_sectors)
        self._resident = np.zeros(total_sectors, dtype=bool)
        self._last_touch = np.zeros(total_sectors, dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, sectors: np.ndarray) -> np.ndarray:
        """Touch a batch of sector ids; return the missing (fetched) ones.

        Missing sectors become resident; if the pool overflows, the
        least-recently-touched residents are evicted (batch LRU).
        """
        sectors = np.unique(np.asarray(sectors, dtype=np.int64))
        if sectors.size == 0:
            return sectors
        if sectors.min() < 0 or sectors.max() >= self.total_sectors:
            raise InvalidParameterError("sector id out of range")
        self._clock += 1
        resident = self._resident[sectors]
        missing = sectors[~resident]
        self.hits += int(resident.sum())
        self.misses += int(missing.size)
        self._resident[missing] = True
        self._last_touch[sectors] = self._clock
        self._evict_overflow()
        return missing

    def _evict_overflow(self) -> None:
        count = int(self._resident.sum())
        excess = count - self.capacity
        if excess <= 0:
            return
        resident_ids = np.flatnonzero(self._resident)
        ages = self._last_touch[resident_ids]
        oldest = resident_ids[np.argpartition(ages, excess - 1)[:excess]]
        self._resident[oldest] = False

    @property
    def resident_count(self) -> int:
        return int(self._resident.sum())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def contiguous_runs(sectors: np.ndarray) -> int:
    """Number of maximal contiguous runs in a sorted sector-id array.

    One PCIe request can cover a contiguous range; SAGE's tile alignment
    makes missing sectors cluster into few runs, while page-less
    on-demand access issues one request per hole (Section 3.3 / 7.2).
    """
    sectors = np.asarray(sectors, dtype=np.int64)
    if sectors.size == 0:
        return 0
    return int(1 + np.count_nonzero(np.diff(np.sort(sectors)) != 1))
