"""Out-of-core execution: graphs larger than device memory (Figure 8)."""

from repro.outofcore.layout import GraphLayout, layout_for
from repro.outofcore.pool import SectorPool, contiguous_runs
from repro.outofcore.runners import (
    OnDemandUMRunner,
    SageOutOfCoreRunner,
    SubwayRunner,
)

__all__ = [
    "GraphLayout",
    "OnDemandUMRunner",
    "SageOutOfCoreRunner",
    "SectorPool",
    "SubwayRunner",
    "contiguous_runs",
    "layout_for",
]
