"""repro — reproduction of "Self-adaptive Graph Traversal on GPUs".

SIGMOD 2021, Mo Sha, Yuchen Li, Kian-Lee Tan.  The CUDA system (SAGE) is
rebuilt on a functional + analytic GPU simulator so the paper's entire
evaluation — single-GPU, out-of-core and multi-GPU — runs offline in pure
Python.  See DESIGN.md for the system inventory and the substitutions.

Quick start (see :mod:`repro.api` for the full facade)::

    import repro

    graph = repro.api.load_graph("twitter", scale=0.3)
    result = repro.api.run(graph, "bfs")
    print(result.gteps, result.values["dist"])
"""

from repro import api
from repro.core import RunResult, SageScheduler, TraversalPipeline, run_app
from repro.errors import (
    ConvergenceError,
    GraphFormatError,
    InvalidParameterError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.graph import COOGraph, CSRGraph
from repro.obs import MetricsRegistry

__version__ = "0.1.0"

__all__ = [
    "COOGraph",
    "api",
    "CSRGraph",
    "ConvergenceError",
    "GraphFormatError",
    "InvalidParameterError",
    "MetricsRegistry",
    "ReproError",
    "RunResult",
    "SageScheduler",
    "SchedulingError",
    "SimulationError",
    "TraversalPipeline",
    "run_app",
]
