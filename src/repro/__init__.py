"""repro — reproduction of "Self-adaptive Graph Traversal on GPUs".

SIGMOD 2021, Mo Sha, Yuchen Li, Kian-Lee Tan.  The CUDA system (SAGE) is
rebuilt on a functional + analytic GPU simulator so the paper's entire
evaluation — single-GPU, out-of-core and multi-GPU — runs offline in pure
Python.  See DESIGN.md for the system inventory and the substitutions.

Quick start::

    from repro.graph import datasets
    from repro.apps import BFSApp
    from repro.core import SageScheduler, run_app

    graph = datasets.twitter_like().graph
    result = run_app(graph, BFSApp(), SageScheduler(), source=0)
    print(result.gteps, result.result["dist"])
"""

from repro.core import RunResult, SageScheduler, TraversalPipeline, run_app
from repro.errors import (
    ConvergenceError,
    GraphFormatError,
    InvalidParameterError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.graph import COOGraph, CSRGraph
from repro.obs import MetricsRegistry

__version__ = "0.1.0"

__all__ = [
    "COOGraph",
    "CSRGraph",
    "ConvergenceError",
    "GraphFormatError",
    "InvalidParameterError",
    "MetricsRegistry",
    "ReproError",
    "RunResult",
    "SageScheduler",
    "SchedulingError",
    "SimulationError",
    "TraversalPipeline",
    "run_app",
]
