"""Self-contained reference implementations for result validation.

Slow, obviously-correct sequential algorithms with no dependency on the
traversal machinery (or on networkx): the library's internal oracles.
Tests cross-check the vectorized applications against both these and
networkx; users can call :func:`validate_run` after porting the library
to a new workload to be sure a custom scheduler or app refactoring did
not silently change semantics.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.apps.sssp import INF
from repro.graph.csr import CSRGraph


def reference_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Textbook queue-based BFS levels (-1 = unreachable)."""
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u).tolist():
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def reference_sssp(
    graph: CSRGraph, weights: np.ndarray, source: int
) -> np.ndarray:
    """Bellman-Ford shortest paths (handles duplicate edges)."""
    dist = np.full(graph.num_nodes, INF, dtype=np.int64)
    dist[source] = 0
    coo = graph.to_coo()
    edges = list(zip(coo.src.tolist(), coo.dst.tolist(), weights.tolist()))
    for _ in range(graph.num_nodes):
        changed = False
        for u, v, w in edges:
            if dist[u] < INF and dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    return dist


def reference_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    iterations: int = 100,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Dense power iteration with uniform dangling redistribution."""
    n = graph.num_nodes
    degrees = graph.out_degrees().astype(np.float64)
    pr = np.full(n, 1.0 / n)
    coo = graph.to_coo()
    for _ in range(iterations):
        nxt = np.zeros(n)
        for u, v in zip(coo.src.tolist(), coo.dst.tolist()):
            nxt[v] += damping * pr[u] / degrees[u]
        dangling = pr[degrees == 0].sum()
        nxt += (1.0 - damping) / n + damping * dangling / n
        if np.abs(nxt - pr).sum() < tolerance:
            pr = nxt
            break
        pr = nxt
    return pr


def reference_components(graph: CSRGraph) -> np.ndarray:
    """Weakly connected components by union-find, labeled by minimum."""
    parent = list(range(graph.num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    coo = graph.to_coo()
    for u, v in zip(coo.src.tolist(), coo.dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    labels = np.fromiter((find(i) for i in range(graph.num_nodes)),
                         dtype=np.int64, count=graph.num_nodes)
    return labels


def reference_betweenness_delta(
    graph: CSRGraph, source: int
) -> np.ndarray:
    """Brandes single-source dependencies (the BC app's ``delta``)."""
    n = graph.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n)
    delta = np.zeros(n)
    dist[source] = 0
    sigma[source] = 1.0
    order: list[int] = []
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neighbors(u).tolist():
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
            if dist[v] == dist[u] + 1:
                sigma[v] += sigma[u]
    for u in reversed(order):
        for v in graph.neighbors(u).tolist():
            if dist[v] == dist[u] + 1:
                delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
    return delta


def validate_run(
    graph: CSRGraph,
    app_name: str,
    result: dict[str, np.ndarray],
    source: int | None = None,
    *,
    weights: np.ndarray | None = None,
    atol: float = 1e-8,
) -> None:
    """Assert that a run's outputs match the reference implementation.

    Supported apps: ``bfs``, ``pr``, ``cc``, ``sssp``, ``bc``.  Raises
    ``AssertionError`` with a descriptive message on mismatch.
    """
    if app_name == "bfs":
        expected = reference_bfs(graph, int(source))
        _check_equal("dist", result["dist"], expected)
    elif app_name == "pr":
        expected = reference_pagerank(graph)
        _check_close("pagerank", result["pagerank"], expected, atol=1e-6)
    elif app_name == "cc":
        expected = reference_components(graph)
        _check_equal("component", result["component"], expected)
    elif app_name == "sssp":
        if weights is None:
            raise ValueError("sssp validation needs the weights used")
        expected = reference_sssp(graph, weights, int(source))
        _check_equal("dist", result["dist"], expected)
    elif app_name == "bc":
        expected = reference_betweenness_delta(graph, int(source))
        _check_close("delta", result["delta"], expected, atol=atol)
    else:
        raise ValueError(f"no reference implementation for {app_name!r}")


def _check_equal(name: str, got, expected) -> None:
    if not np.array_equal(np.asarray(got), expected):
        bad = int(np.flatnonzero(np.asarray(got) != expected)[0])
        raise AssertionError(
            f"{name} mismatch at node {bad}: "
            f"got {np.asarray(got)[bad]}, expected {expected[bad]}"
        )


def _check_close(name: str, got, expected, atol: float) -> None:
    got = np.asarray(got, dtype=np.float64)
    if not np.allclose(got, expected, atol=atol):
        diff = np.abs(got - expected)
        bad = int(diff.argmax())
        raise AssertionError(
            f"{name} mismatch at node {bad}: "
            f"got {got[bad]}, expected {expected[bad]} "
            f"(|diff| {diff[bad]:.3e})"
        )
