"""Dynamic graph updates: batched insertion/deletion without full rebuilds.

The paper argues SAGE applies directly to dynamic graphs because only
the CSR must be maintained (Sections 1, 7.2).  ``CSRGraph`` itself is
immutable; this module provides the maintenance layer a streaming
deployment needs:

* :class:`DynamicGraph` — buffers edge insertions/deletions and merges
  them into the CSR with a sorted-merge (O(|E| + |batch| log |batch|)
  per merge, not a from-scratch re-sort), amortized by a configurable
  batch threshold.
* update listeners — every merge fires listeners with ``(new_csr,
  delta)`` where the :class:`~repro.graph.delta.GraphDelta` describes
  exactly which edge instances changed; incremental algorithms repair
  from it and the serving cache invalidates selectively.  Legacy
  single-argument listeners (pre-delta ``Callable[[CSRGraph], None]``)
  are auto-adapted with a one-time deprecation warning.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable

import numpy as np

from repro.errors import GraphFormatError, InvalidParameterError
from repro.graph.coo import EDGE_DTYPE
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta, apply_edge_updates

#: The delta-aware listener contract fired after every merge.
UpdateListener = Callable[[CSRGraph, GraphDelta], None]


def _adapt_listener(callback: Callable[..., None]) -> UpdateListener:
    """Accept both listener generations behind one call signature.

    Delta-aware listeners (two positional parameters) pass through;
    legacy single-argument listeners are wrapped to drop the delta,
    with an exactly-once deprecation warning at registration time.
    """
    try:
        inspect.signature(callback).bind(None, None)
    except TypeError:
        from repro.deprecation import warn_once

        warn_once(
            "dynamic.add_listener.single_arg",
            "single-argument DynamicGraph listeners are deprecated; "
            "accept (graph: CSRGraph, delta: GraphDelta) instead",
        )
        return lambda graph, delta: callback(graph)
    except ValueError:  # pragma: no cover - signature-less builtins
        pass
    return callback  # type: ignore[return-value]


class DynamicGraph:
    """A CSR graph under streaming edge updates.

    Insertions and deletions accumulate in buffers; :attr:`graph` always
    reflects every applied update (pending ones are merged on access via
    :meth:`flush`, or automatically when a buffer passes
    ``auto_flush_threshold``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        auto_flush_threshold: int = 10_000,
    ) -> None:
        if auto_flush_threshold < 1:
            raise InvalidParameterError("auto_flush_threshold must be >= 1")
        self._graph = graph
        self.auto_flush_threshold = auto_flush_threshold
        self._pending_src: list[np.ndarray] = []
        self._pending_dst: list[np.ndarray] = []
        self._pending_del_src: list[np.ndarray] = []
        self._pending_del_dst: list[np.ndarray] = []
        self._pending_count = 0
        self._listeners: list[UpdateListener] = []
        self._last_delta: GraphDelta | None = None
        self.merges = 0
        self.edges_inserted = 0
        self.edges_deleted = 0

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------

    def insert_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Queue a batch of edge insertions."""
        src, dst = self._check(src, dst)
        self._pending_src.append(src)
        self._pending_dst.append(dst)
        self._pending_count += src.size
        self.edges_inserted += int(src.size)
        self._maybe_flush()

    def delete_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Queue a batch of edge deletions (all copies of each pair).

        Within one flush, a deletion wins over an insertion of the same
        pair regardless of call order — buffered updates are a set of
        intents, not a time-ordered log.
        """
        src, dst = self._check(src, dst)
        self._pending_del_src.append(src)
        self._pending_del_dst.append(dst)
        self._pending_count += src.size
        self._maybe_flush()

    def add_listener(self, callback: Callable[..., None]) -> None:
        """Register a callback fired with ``(new_csr, delta)`` per merge.

        The SAGE engine registers its resident-tile invalidation here;
        the serving :class:`~repro.serve.cache.GraphStore` fans the
        delta out to replicas and the cache.  Legacy single-argument
        callbacks still work (adapted with a warn-once deprecation).
        """
        self._listeners.append(_adapt_listener(callback))

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def graph(self) -> CSRGraph:
        """The current CSR (flushes pending updates first)."""
        if self._pending_count:
            self.flush()
        return self._graph

    @property
    def pending_updates(self) -> int:
        return self._pending_count

    @property
    def epoch(self) -> int:
        """The merge counter — the epoch stamped into produced deltas."""
        return self.merges

    @property
    def last_delta(self) -> GraphDelta | None:
        """The delta of the most recent merge (``None`` before any)."""
        return self._last_delta

    def flush(self) -> CSRGraph:
        """Merge all pending updates into the CSR."""
        if not self._pending_count:
            return self._graph
        graph = self._graph
        empty = np.empty(0, dtype=EDGE_DTYPE)
        add_src = (
            np.concatenate(self._pending_src) if self._pending_src else empty
        )
        add_dst = (
            np.concatenate(self._pending_dst) if self._pending_dst else empty
        )
        del_src = (
            np.concatenate(self._pending_del_src)
            if self._pending_del_src else empty
        )
        del_dst = (
            np.concatenate(self._pending_del_dst)
            if self._pending_del_dst else empty
        )
        new_graph, ins_src, ins_dst, rem_src, rem_dst = apply_edge_updates(
            graph, add_src, add_dst, del_src, del_dst
        )
        delta = GraphDelta(
            num_nodes=graph.num_nodes,
            old_epoch=self.merges,
            new_epoch=self.merges + 1,
            inserted_src=ins_src,
            inserted_dst=ins_dst,
            deleted_src=rem_src,
            deleted_dst=rem_dst,
        )
        self._graph = new_graph
        self.edges_deleted += delta.num_deleted

        self._pending_src.clear()
        self._pending_dst.clear()
        self._pending_del_src.clear()
        self._pending_del_dst.clear()
        self._pending_count = 0
        self.merges += 1
        self._last_delta = delta
        for listener in self._listeners:
            listener(self._graph, delta)
        return self._graph

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check(
        self, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        src = np.asarray(src, dtype=EDGE_DTYPE)
        dst = np.asarray(dst, dtype=EDGE_DTYPE)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphFormatError("update arrays must be matching 1-D")
        n = self._graph.num_nodes
        if src.size and not (
            0 <= src.min() and src.max() < n
            and 0 <= dst.min() and dst.max() < n
        ):
            raise GraphFormatError("update endpoint out of range")
        return src, dst

    def _maybe_flush(self) -> None:
        if self._pending_count >= self.auto_flush_threshold:
            self.flush()
