"""Dynamic graph updates: batched insertion/deletion without full rebuilds.

The paper argues SAGE applies directly to dynamic graphs because only
the CSR must be maintained (Sections 1, 7.2).  ``CSRGraph`` itself is
immutable; this module provides the maintenance layer a streaming
deployment needs:

* :class:`DynamicGraph` — buffers edge insertions/deletions and merges
  them into the CSR with a sorted-merge (O(|E| + |batch| log |batch|)
  per merge, not a from-scratch re-sort), amortized by a configurable
  batch threshold.
* update listeners — the SAGE engine's resident tiles and any cached
  structures register for invalidation when a merge lands, mirroring how
  the runtime would drop stale scheduling logs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import GraphFormatError, InvalidParameterError
from repro.graph.coo import EDGE_DTYPE
from repro.graph.csr import CSRGraph


class DynamicGraph:
    """A CSR graph under streaming edge updates.

    Insertions and deletions accumulate in buffers; :attr:`graph` always
    reflects every applied update (pending ones are merged on access via
    :meth:`flush`, or automatically when a buffer passes
    ``auto_flush_threshold``).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        auto_flush_threshold: int = 10_000,
    ) -> None:
        if auto_flush_threshold < 1:
            raise InvalidParameterError("auto_flush_threshold must be >= 1")
        self._graph = graph
        self.auto_flush_threshold = auto_flush_threshold
        self._pending_src: list[np.ndarray] = []
        self._pending_dst: list[np.ndarray] = []
        self._pending_del_src: list[np.ndarray] = []
        self._pending_del_dst: list[np.ndarray] = []
        self._pending_count = 0
        self._listeners: list[Callable[[CSRGraph], None]] = []
        self.merges = 0
        self.edges_inserted = 0
        self.edges_deleted = 0

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------

    def insert_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Queue a batch of edge insertions."""
        src, dst = self._check(src, dst)
        self._pending_src.append(src)
        self._pending_dst.append(dst)
        self._pending_count += src.size
        self.edges_inserted += int(src.size)
        self._maybe_flush()

    def delete_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Queue a batch of edge deletions (all copies of each pair).

        Within one flush, a deletion wins over an insertion of the same
        pair regardless of call order — buffered updates are a set of
        intents, not a time-ordered log.
        """
        src, dst = self._check(src, dst)
        self._pending_del_src.append(src)
        self._pending_del_dst.append(dst)
        self._pending_count += src.size
        self._maybe_flush()

    def add_listener(self, callback: Callable[[CSRGraph], None]) -> None:
        """Register a callback fired with the new CSR after every merge.

        The SAGE engine registers its resident-tile invalidation here; a
        cache of reorderings or transposes would do the same.
        """
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def graph(self) -> CSRGraph:
        """The current CSR (flushes pending updates first)."""
        if self._pending_count:
            self.flush()
        return self._graph

    @property
    def pending_updates(self) -> int:
        return self._pending_count

    def flush(self) -> CSRGraph:
        """Merge all pending updates into the CSR."""
        if not self._pending_count:
            return self._graph
        graph = self._graph
        coo = graph.to_coo()
        src, dst = coo.src, coo.dst

        del_keys = None
        if self._pending_del_src:
            del_src = np.concatenate(self._pending_del_src)
            del_dst = np.concatenate(self._pending_del_dst)
            keys = src * graph.num_nodes + dst
            del_keys = np.unique(del_src * graph.num_nodes + del_dst)
            keep = ~np.isin(keys, del_keys)
            self.edges_deleted += int((~keep).sum())
            src, dst = src[keep], dst[keep]

        if self._pending_src:
            add_src = np.concatenate(self._pending_src)
            add_dst = np.concatenate(self._pending_dst)
            if del_keys is not None:
                # same-batch deletes also cancel pending inserts
                keep_add = ~np.isin(
                    add_src * graph.num_nodes + add_dst, del_keys
                )
                add_src, add_dst = add_src[keep_add], add_dst[keep_add]
            # sort only the batch, then one merge pass over both sorted
            # edge lists (the existing list is already CSR-sorted).
            order = np.lexsort((add_dst, add_src))
            add_src, add_dst = add_src[order], add_dst[order]
            n = graph.num_nodes
            merged_keys = self._merge_sorted(
                src * n + dst, add_src * n + add_dst
            )
            src = merged_keys // n
            dst = merged_keys % n

        counts = np.bincount(src, minlength=graph.num_nodes)
        offsets = np.zeros(graph.num_nodes + 1, dtype=EDGE_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        self._graph = CSRGraph(graph.num_nodes, offsets, dst)

        self._pending_src.clear()
        self._pending_dst.clear()
        self._pending_del_src.clear()
        self._pending_del_dst.clear()
        self._pending_count = 0
        self.merges += 1
        for listener in self._listeners:
            listener(self._graph)
        return self._graph

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check(
        self, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        src = np.asarray(src, dtype=EDGE_DTYPE)
        dst = np.asarray(dst, dtype=EDGE_DTYPE)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphFormatError("update arrays must be matching 1-D")
        n = self._graph.num_nodes
        if src.size and not (
            0 <= src.min() and src.max() < n
            and 0 <= dst.min() and dst.max() < n
        ):
            raise GraphFormatError("update endpoint out of range")
        return src, dst

    def _maybe_flush(self) -> None:
        if self._pending_count >= self.auto_flush_threshold:
            self.flush()

    @staticmethod
    def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge two sorted int arrays (duplicates kept)."""
        out = np.empty(a.size + b.size, dtype=a.dtype)
        positions = np.searchsorted(a, b, side="right") \
            + np.arange(b.size)
        mask = np.zeros(out.size, dtype=bool)
        mask[positions] = True
        out[mask] = b
        out[~mask] = a
        return out
