"""Graph file IO: text edge lists and a compact binary CSR format.

Edge-list text files follow the widespread SNAP convention: one
``src dst`` pair per whitespace-separated line, ``#`` comments allowed.
The binary format is a small ``.npz`` wrapper around the CSR arrays —
enough for examples to persist generated datasets.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

_MAGIC = "repro-csr-v1"


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as a SNAP-style text edge list."""
    coo = graph.to_coo()
    with open(path, "w", encoding="ascii") as f:
        f.write(f"# repro edge list |V|={graph.num_nodes} |E|={graph.num_edges}\n")
        np.savetxt(f, np.column_stack([coo.src, coo.dst]), fmt="%d")


def read_edge_list(
    path: str | os.PathLike,
    num_nodes: int | None = None,
    *,
    dedup: bool = False,
) -> CSRGraph:
    """Read a SNAP-style text edge list into a CSR graph.

    Args:
        path: file to read.
        num_nodes: node count; inferred as ``max id + 1`` when omitted.
        dedup: drop duplicate edges.
    """
    with warnings.catch_warnings():
        # an edge list with only comments is a valid empty graph
        warnings.filterwarnings("ignore", message="loadtxt: input contained")
        data = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if data.size == 0:
        src = dst = np.empty(0, dtype=np.int64)
    elif data.shape[1] < 2:
        raise GraphFormatError(f"{path}: expected two columns per line")
    else:
        src, dst = data[:, 0], data[:, 1]
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    return CSRGraph.from_edges(num_nodes, src, dst, dedup=dedup)


def save_csr(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist a CSR graph to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        magic=np.array(_MAGIC),
        num_nodes=np.array(graph.num_nodes, dtype=np.int64),
        offsets=graph.offsets,
        targets=graph.targets,
    )


def load_csr(path: str | os.PathLike) -> CSRGraph:
    """Load a CSR graph previously written by :func:`save_csr`."""
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise GraphFormatError(f"{path}: not a repro CSR file")
        return CSRGraph(
            int(data["num_nodes"]),
            data["offsets"].copy(),
            data["targets"].copy(),
        )
