"""Structured edge deltas between consecutive graph epochs.

The paper argues SAGE applies directly to dynamic graphs because only
the CSR must be maintained (Sections 1, 7.2) — but *consumers* of a
dynamic graph can do much better than re-reading the whole new CSR if
they are told exactly what changed.  :class:`GraphDelta` is that
contract: a frozen value describing one merge (``old_epoch`` →
``new_epoch``) as the edge instances actually inserted and actually
removed, plus the derived affected-vertex sets that incremental
algorithms seed their repair from.

Two invariants make deltas composable and replayable:

* **applied, not requested** — ``deleted_*`` holds the edge copies that
  existed and were removed (a no-op delete of a missing pair does not
  appear); ``inserted_*`` holds the insertions that survived same-batch
  delete cancellation.  Replaying the delta against a bit-identical
  copy of the old CSR therefore reproduces the new CSR exactly
  (:func:`patch_csr`), which is what replica-local patching relies on.
* **immutability** — all arrays are read-only ``int64``; a delta can be
  fanned out to many listeners without copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import EDGE_DTYPE
from repro.graph.csr import CSRGraph


def _frozen_edges(arr: object) -> np.ndarray:
    out = np.array(arr, dtype=EDGE_DTYPE, copy=True)
    if out.ndim != 1:
        raise GraphFormatError("delta edge arrays must be 1-D")
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class GraphDelta:
    """One graph merge as a value: what changed between two epochs.

    Attributes:
        num_nodes: node count of both endpoint graphs (updates never
            change the vertex set).
        old_epoch: the producing graph's merge counter before the flush.
        new_epoch: the merge counter after the flush (``old_epoch + 1``).
        inserted_src / inserted_dst: edge instances added by the merge,
            lexicographically sorted, *after* same-batch delete
            cancellation.
        deleted_src / deleted_dst: edge instances that existed in the
            old graph and were removed (all copies of each deleted
            pair), in old-CSR order.
    """

    num_nodes: int
    old_epoch: int
    new_epoch: int
    inserted_src: np.ndarray
    inserted_dst: np.ndarray
    deleted_src: np.ndarray
    deleted_dst: np.ndarray
    _affected: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for name in (
            "inserted_src", "inserted_dst", "deleted_src", "deleted_dst"
        ):
            object.__setattr__(self, name, _frozen_edges(getattr(self, name)))
        if self.inserted_src.size != self.inserted_dst.size:
            raise GraphFormatError("inserted src/dst length mismatch")
        if self.deleted_src.size != self.deleted_dst.size:
            raise GraphFormatError("deleted src/dst length mismatch")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_inserted(self) -> int:
        return int(self.inserted_src.size)

    @property
    def num_deleted(self) -> int:
        return int(self.deleted_src.size)

    @property
    def size(self) -> int:
        """Total changed edge instances (inserted + deleted)."""
        return self.num_inserted + self.num_deleted

    @property
    def is_empty(self) -> bool:
        """Whether the merge changed nothing (e.g. only no-op deletes)."""
        return self.size == 0

    # ------------------------------------------------------------------
    # Derived vertex sets
    # ------------------------------------------------------------------

    @property
    def touched_sources(self) -> np.ndarray:
        """Unique source endpoints of every changed edge (sorted).

        These are exactly the vertices whose out-adjacency (and
        out-degree) differ between the epochs — the seed set for
        selective cache survival and PageRank residual adjustment.
        """
        return np.unique(
            np.concatenate([self.inserted_src, self.deleted_src])
        )

    @property
    def affected_vertices(self) -> np.ndarray:
        """Unique endpoints of every changed edge (sorted).

        The over-approximation incremental traversal repair starts
        from: any vertex whose result can change is reachable from this
        set (see DESIGN.md, "Structured deltas & incremental repair").
        """
        cached = self._affected
        if cached is None:
            cached = np.unique(np.concatenate([
                self.inserted_src, self.inserted_dst,
                self.deleted_src, self.deleted_dst,
            ]))
            cached.setflags(write=False)
            object.__setattr__(self, "_affected", cached)
        return cached

    def reversed(self) -> "GraphDelta":
        """The same delta on the transpose graph (src/dst swapped).

        Applying ``patch_csr(graph.reversed(), delta.reversed())``
        yields ``new_graph.reversed()`` — incremental engines use this
        to maintain a reverse CSR without re-transposing per epoch.
        """
        return GraphDelta(
            num_nodes=self.num_nodes,
            old_epoch=self.old_epoch,
            new_epoch=self.new_epoch,
            inserted_src=self.inserted_dst,
            inserted_dst=self.inserted_src,
            deleted_src=self.deleted_dst,
            deleted_dst=self.deleted_src,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDelta(epoch {self.old_epoch}->{self.new_epoch}, "
            f"+{self.num_inserted} -{self.num_deleted})"
        )


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted int arrays (duplicates kept)."""
    out = np.empty(a.size + b.size, dtype=a.dtype)
    positions = np.searchsorted(a, b, side="right") + np.arange(b.size)
    mask = np.zeros(out.size, dtype=bool)
    mask[positions] = True
    out[mask] = b
    out[~mask] = a
    return out


def apply_edge_updates(
    graph: CSRGraph,
    add_src: np.ndarray,
    add_dst: np.ndarray,
    del_src: np.ndarray,
    del_dst: np.ndarray,
) -> tuple[CSRGraph, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One sorted-merge update pass over a CSR.

    Deletions remove *all copies* of each ``(src, dst)`` pair and win
    over insertions of the same pair within the batch; surviving
    insertions are batch-sorted and merged into the (already sorted)
    edge list in one pass — O(|E| + |batch| log |batch|), never a
    from-scratch re-sort.

    Returns ``(new_graph, applied_add_src, applied_add_dst,
    removed_src, removed_dst)``: the applied arrays are exactly what a
    :class:`GraphDelta` records, so :func:`patch_csr` and
    :meth:`~repro.graph.dynamic.DynamicGraph.flush` share this one
    implementation and stay bit-identical.
    """
    coo = graph.to_coo()
    src, dst = coo.src, coo.dst
    n = graph.num_nodes
    empty = np.empty(0, dtype=EDGE_DTYPE)
    removed_src, removed_dst = empty, empty.copy()

    del_keys = None
    if del_src.size:
        keys = src * n + dst
        del_keys = np.unique(del_src * n + del_dst)
        keep = ~np.isin(keys, del_keys)
        removed_src, removed_dst = src[~keep], dst[~keep]
        src, dst = src[keep], dst[keep]

    if add_src.size and del_keys is not None:
        # same-batch deletes also cancel pending inserts
        keep_add = ~np.isin(add_src * n + add_dst, del_keys)
        add_src, add_dst = add_src[keep_add], add_dst[keep_add]
    if add_src.size:
        order = np.lexsort((add_dst, add_src))
        add_src, add_dst = add_src[order], add_dst[order]
        merged_keys = _merge_sorted(src * n + dst, add_src * n + add_dst)
        src = merged_keys // n
        dst = merged_keys % n
    else:
        add_src, add_dst = empty, empty.copy()

    counts = np.bincount(src, minlength=n)
    offsets = np.zeros(n + 1, dtype=EDGE_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    new_graph = CSRGraph(n, offsets, dst)
    return new_graph, add_src, add_dst, removed_src, removed_dst


def patch_csr(graph: CSRGraph, delta: GraphDelta) -> CSRGraph:
    """Apply ``delta`` to a bit-identical copy of its old graph.

    Because a delta records *applied* changes (its deleted pairs exist
    in the old graph; its inserted pairs survived cancellation), the
    patched result equals the producing merge's output exactly — this
    is how cluster replicas update their local CSR without shipping a
    full snapshot.
    """
    if delta.num_nodes != graph.num_nodes:
        raise GraphFormatError(
            f"delta is for {delta.num_nodes} nodes, graph has "
            f"{graph.num_nodes}"
        )
    if delta.is_empty:
        return graph
    patched, _, _, _, _ = apply_edge_updates(
        graph,
        delta.inserted_src, delta.inserted_dst,
        delta.deleted_src, delta.deleted_dst,
    )
    return patched
