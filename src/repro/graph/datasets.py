"""Scaled synthetic stand-ins for the paper's five datasets (Table 1).

The paper evaluates on uk-2002 (web), brain (biology), ljournal, twitter
and friendster (social).  Those graphs (up to 1.8B edges) are neither
available offline nor tractable for a pure-Python simulator, so each is
replaced by a generator configured to reproduce the structural property
the paper's analysis relies on:

========== =============== ============================================
dataset    category        defining property preserved
========== =============== ============================================
uk-2002    web             regular hierarchy, high id locality
brain      biology         near-uniform very large average degree
ljournal   social          moderate power-law skew
twitter    social          extreme skew: super-hubs with huge outdegree
friendster social          large, moderate power-law skew
========== =============== ============================================

Scale factors (|V| a few thousand, |E| tens of thousands to ~1M) keep the
simulator's per-experiment runtime in seconds.  Each stand-in is
deterministic (fixed seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.graph import generators
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class Dataset:
    """A named benchmark graph with its Table-1 metadata."""

    name: str
    category: str
    graph: CSRGraph

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(1, self.num_nodes)


# Default scale used by benchmarks; tests use `small_suite`.
_FULL = 1.0


@lru_cache(maxsize=None)
def uk2002_like(scale: float = _FULL) -> Dataset:
    """Web graph: regular hierarchy, avg degree ~16, high id locality."""
    n = max(64, int(12_000 * scale))
    graph = generators.web_hierarchy(
        n, avg_degree=16.0, seed=2002, locality=0.85, span=48
    )
    return Dataset("uk-2002", "Web", graph)


@lru_cache(maxsize=None)
def brain_like(scale: float = _FULL) -> Dataset:
    """Biology graph: near-uniform degree, very large avg degree (~160)."""
    n = max(64, int(1_600 * scale))
    degree = max(8, min(n - 2, int(160 * min(1.0, scale * 2))))
    graph = generators.random_regular(n, degree, seed=87113878)
    return Dataset("brain", "Biology", graph)


@lru_cache(maxsize=None)
def ljournal_like(scale: float = _FULL) -> Dataset:
    """Social graph: moderate power-law skew, avg degree ~15."""
    n = max(64, int(8_000 * scale))
    graph = generators.power_law_configuration(
        n, exponent=2.3, avg_degree=15.0, seed=2008,
        max_degree=max(8, n // 20),
        community_count=max(2, n // 150), community_bias=0.85,
        scramble_ids=True,
    )
    return Dataset("ljournal", "Social Network", graph)


@lru_cache(maxsize=None)
def twitter_like(scale: float = _FULL) -> Dataset:
    """Social graph with extreme skew: a few super-hubs of degree ~|V|/5."""
    n = max(64, int(10_000 * scale))
    graph = generators.power_law_configuration(
        n, exponent=1.9, avg_degree=30.0, seed=2010,
        max_degree=max(8, n // 12),
        hub_count=max(1, n // 2000), hub_degree=max(16, n // 5),
        community_count=max(2, n // 120), community_bias=0.8,
        scramble_ids=True,
    )
    return Dataset("twitter", "Social Network", graph)


@lru_cache(maxsize=None)
def friendster_like(scale: float = _FULL) -> Dataset:
    """Large social graph: moderate skew, avg degree ~25."""
    n = max(64, int(14_000 * scale))
    graph = generators.power_law_configuration(
        n, exponent=2.1, avg_degree=25.0, seed=2012,
        max_degree=max(8, n // 25),
        community_count=max(2, n // 180), community_bias=0.85,
        scramble_ids=True,
    )
    return Dataset("friendster", "Social Network", graph)


def full_suite(scale: float = _FULL) -> list[Dataset]:
    """All five Table-1 stand-ins at the given scale."""
    return [
        uk2002_like(scale),
        brain_like(scale),
        ljournal_like(scale),
        twitter_like(scale),
        friendster_like(scale),
    ]


def small_suite() -> list[Dataset]:
    """Fast miniature versions for integration tests."""
    return full_suite(scale=0.08)


def by_name(name: str, scale: float = _FULL) -> Dataset:
    """Look a dataset up by its paper name (e.g. ``"twitter"``)."""
    for ds in full_suite(scale):
        if ds.name == name:
            return ds
    raise KeyError(f"unknown dataset {name!r}")
