"""Interoperability builders: networkx, scipy.sparse, induced subgraphs.

Production users rarely start from raw edge arrays; these helpers move
graphs between the CSR representation and the two ecosystems a Python
graph pipeline typically touches, plus structural extraction utilities
(induced subgraphs, largest component) used by the benchmarks to build
connected workloads.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError, InvalidParameterError
from repro.graph.coo import EDGE_DTYPE
from repro.graph.csr import CSRGraph


def from_networkx(nx_graph) -> CSRGraph:
    """Build a CSR graph from a networkx (Di)Graph.

    Node labels must be hashable; they are mapped to dense ids in sorted
    order (ints sort numerically, so ``DiGraph`` with integer nodes round
    trips exactly).  Undirected graphs are symmetrized.
    """
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    src = np.fromiter(
        (index[u] for u, _ in nx_graph.edges()), dtype=EDGE_DTYPE,
        count=nx_graph.number_of_edges(),
    )
    dst = np.fromiter(
        (index[v] for _, v in nx_graph.edges()), dtype=EDGE_DTYPE,
        count=nx_graph.number_of_edges(),
    )
    return CSRGraph.from_edges(
        len(nodes), src, dst, symmetric=not nx_graph.is_directed()
    )


def to_networkx(graph: CSRGraph):
    """Convert to a networkx DiGraph (imported lazily)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    coo = graph.to_coo()
    g.add_edges_from(zip(coo.src.tolist(), coo.dst.tolist()))
    return g


def from_scipy_sparse(matrix) -> CSRGraph:
    """Build a graph from any scipy.sparse matrix (nonzeros = edges)."""
    matrix = sp.coo_matrix(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphFormatError(
            f"adjacency matrix must be square, got {matrix.shape}"
        )
    return CSRGraph.from_edges(
        matrix.shape[0],
        matrix.row.astype(EDGE_DTYPE),
        matrix.col.astype(EDGE_DTYPE),
        dedup=True,
    )


def to_scipy_sparse(graph: CSRGraph) -> sp.csr_matrix:
    """The boolean adjacency matrix in scipy CSR form."""
    data = np.ones(graph.num_edges, dtype=np.int8)
    return sp.csr_matrix(
        (data, graph.targets, graph.offsets),
        shape=(graph.num_nodes, graph.num_nodes),
    )


def induced_subgraph(
    graph: CSRGraph, nodes: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``nodes`` with dense relabeling.

    Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
    id of subgraph node ``i``.
    """
    nodes = np.unique(np.asarray(nodes, dtype=EDGE_DTYPE))
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.num_nodes):
        raise InvalidParameterError("subgraph nodes out of range")
    keep = np.zeros(graph.num_nodes, dtype=bool)
    keep[nodes] = True
    new_id = np.full(graph.num_nodes, -1, dtype=EDGE_DTYPE)
    new_id[nodes] = np.arange(nodes.size, dtype=EDGE_DTYPE)
    coo = graph.to_coo()
    mask = keep[coo.src] & keep[coo.dst]
    sub = CSRGraph.from_edges(
        int(nodes.size), new_id[coo.src[mask]], new_id[coo.dst[mask]]
    )
    return sub, nodes


def largest_weakly_connected_component(
    graph: CSRGraph,
) -> tuple[CSRGraph, np.ndarray]:
    """Extract the largest weakly connected component.

    Returns ``(subgraph, mapping)`` as :func:`induced_subgraph` does.
    Uses scipy's connected-components on the symmetrized adjacency.
    """
    if graph.num_nodes == 0:
        return graph, np.zeros(0, dtype=EDGE_DTYPE)
    adjacency = to_scipy_sparse(graph)
    _, labels = sp.csgraph.connected_components(
        adjacency, directed=True, connection="weak"
    )
    counts = np.bincount(labels)
    members = np.flatnonzero(labels == counts.argmax())
    return induced_subgraph(graph, members)
