"""Compressed Sparse Row (CSR) graph representation.

CSR is the "ubiquitous" input representation SAGE starts from (paper
Section 1): an ``offsets`` array (the paper's ``u_offset``) of length
``num_nodes + 1`` and a ``targets`` array (the paper's ``v``) holding the
concatenated, per-node-sorted adjacency lists.

No preprocessing beyond CSR construction is required by SAGE; every
scheduler and application in this library consumes :class:`CSRGraph`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOGraph, EDGE_DTYPE


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in CSR form.

    Attributes:
        num_nodes: node count; ids are ``0 .. num_nodes - 1``.
        offsets: int64 array of length ``num_nodes + 1``; the adjacency of
            node ``u`` is ``targets[offsets[u]:offsets[u + 1]]``.
        targets: int64 array of length ``num_edges``; each per-node slice
            is sorted ascending (construction guarantees this).
    """

    num_nodes: int
    offsets: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=EDGE_DTYPE)
        targets = np.ascontiguousarray(self.targets, dtype=EDGE_DTYPE)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "targets", targets)
        if offsets.ndim != 1 or offsets.size != self.num_nodes + 1:
            raise GraphFormatError(
                f"offsets must have length num_nodes + 1 = {self.num_nodes + 1}, "
                f"got {offsets.size}"
            )
        if offsets.size and offsets[0] != 0:
            raise GraphFormatError("offsets[0] must be 0")
        if np.any(np.diff(offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if offsets.size and offsets[-1] != targets.size:
            raise GraphFormatError(
                f"offsets[-1] ({offsets[-1]}) must equal len(targets) "
                f"({targets.size})"
            )
        if targets.size:
            lo, hi = targets.min(), targets.max()
            if lo < 0 or hi >= self.num_nodes:
                raise GraphFormatError(
                    f"target out of range [0, {self.num_nodes}): [{lo}, {hi}]"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COOGraph) -> "CSRGraph":
        """Build a CSR graph from a COO edge list (sorted internally)."""
        g = coo.sorted()
        counts = np.bincount(g.src, minlength=g.num_nodes)
        offsets = np.zeros(g.num_nodes + 1, dtype=EDGE_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        return cls(g.num_nodes, offsets, g.dst)

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        dedup: bool = False,
        drop_self_loops: bool = False,
        symmetric: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel edge arrays.

        Args:
            num_nodes: node count.
            src: edge sources.
            dst: edge targets.
            dedup: remove duplicate edges.
            drop_self_loops: remove ``u -> u`` edges.
            symmetric: add the reverse of every edge (implies dedup).
        """
        coo = COOGraph(num_nodes, np.asarray(src), np.asarray(dst))
        if drop_self_loops:
            coo = coo.without_self_loops()
        if symmetric:
            coo = coo.symmetrized()
        elif dedup:
            coo = coo.deduplicated()
        return cls.from_coo(coo)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.targets.size)

    def out_degrees(self) -> np.ndarray:
        """Out-degree array (``|OutDeg(u)|`` for all ``u``)."""
        return np.diff(self.offsets)

    def out_degree(self, node: int) -> int:
        """Out-degree of one node."""
        return int(self.offsets[node + 1] - self.offsets[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacency slice of ``node`` (a view, sorted ascending)."""
        return self.targets[self.offsets[node]:self.offsets[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``u -> v`` exists (binary search)."""
        adj = self.neighbors(u)
        i = np.searchsorted(adj, v)
        return bool(i < adj.size and adj[i] == v)

    def to_coo(self) -> COOGraph:
        """Expand back to a (sorted) COO edge list."""
        src = np.repeat(np.arange(self.num_nodes, dtype=EDGE_DTYPE),
                        self.out_degrees())
        return COOGraph(self.num_nodes, src, self.targets.copy())

    def gather_edges(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand all out-edges of ``frontier`` (the expansion step).

        Returns ``(edge_src, edge_dst)``; see :meth:`expand_frontier` for
        the variant that also reports CSR edge positions.
        """
        edge_src, edge_dst, _ = self.expand_frontier(frontier)
        return edge_src, edge_dst

    def expand_frontier(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand ``frontier`` with CSR positions.

        Returns ``(edge_src, edge_dst, edge_pos)``: for every node ``u``
        in ``frontier`` (in order) its neighbors appear contiguously, so
        ``edge_src`` is ``frontier`` repeated by degree, ``edge_dst`` the
        concatenated adjacency slices, and ``edge_pos`` each edge's index
        in ``targets`` (used e.g. to look up edge weights).  Fully
        vectorized multi-range gather; this is the hot path of every
        traversal iteration.
        """
        frontier = np.asarray(frontier, dtype=EDGE_DTYPE)
        starts = self.offsets[frontier]
        counts = self.offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=EDGE_DTYPE)
            return empty, empty.copy(), empty.copy()
        edge_src = np.repeat(frontier, counts)
        # Positions within targets: for each frontier node, the run
        # starts[i] .. starts[i] + counts[i]; build all of them at once.
        run_starts = np.repeat(starts, counts)
        within = np.arange(total, dtype=EDGE_DTYPE)
        run_offsets = np.repeat(np.cumsum(counts) - counts, counts)
        edge_pos = run_starts + (within - run_offsets)
        return edge_src, self.targets[edge_pos], edge_pos

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel nodes by a bijection ``perm`` (``new_id = perm[old_id]``).

        This is the operation Sampling-based Reordering commits after each
        round (paper Section 6) and what the reordering baselines apply
        once up front.  Adjacency slices of the result are re-sorted.
        """
        perm = np.asarray(perm, dtype=EDGE_DTYPE)
        if perm.size != self.num_nodes:
            raise GraphFormatError(
                f"permutation length {perm.size} != num_nodes {self.num_nodes}"
            )
        check = np.zeros(self.num_nodes, dtype=bool)
        check[perm] = True
        if not check.all():
            raise GraphFormatError("perm is not a bijection on node ids")
        coo = self.to_coo()
        return CSRGraph.from_edges(self.num_nodes, perm[coo.src], perm[coo.dst])

    def with_edges_added(self, src: np.ndarray, dst: np.ndarray) -> "CSRGraph":
        """Return a new CSR with extra edges inserted (dynamic updates).

        The paper argues SAGE applies directly to dynamic graphs because
        only the CSR needs rebuilding (Section 7.2); this is that rebuild.
        Duplicates are kept unless already deduplicated by the caller.
        """
        coo = self.to_coo()
        all_src = np.concatenate([coo.src, np.asarray(src, dtype=EDGE_DTYPE)])
        all_dst = np.concatenate([coo.dst, np.asarray(dst, dtype=EDGE_DTYPE)])
        return CSRGraph.from_edges(self.num_nodes, all_src, all_dst)

    def reversed(self) -> "CSRGraph":
        """The transpose graph in CSR form."""
        return CSRGraph.from_coo(self.to_coo().reversed())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(|V|={self.num_nodes}, |E|={self.num_edges})"
