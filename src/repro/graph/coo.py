"""Coordinate (COO) edge-list representation.

The paper (Section 2.2, Figure 1) introduces graphs as a sorted edge list
held in two parallel arrays ``u`` and ``v``.  :class:`COOGraph` is exactly
that: the universal interchange format every generator produces and from
which :class:`~repro.graph.csr.CSRGraph` is built.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError

EDGE_DTYPE = np.int64


@dataclass(frozen=True)
class COOGraph:
    """A directed graph as parallel source/target arrays.

    Attributes:
        num_nodes: number of nodes; node ids are ``0 .. num_nodes - 1``.
        src: 1-D array of edge sources.
        dst: 1-D array of edge targets, same length as ``src``.
    """

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=EDGE_DTYPE)
        dst = np.ascontiguousarray(self.dst, dtype=EDGE_DTYPE)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if self.num_nodes < 0:
            raise GraphFormatError("num_nodes must be non-negative")
        if src.ndim != 1 or dst.ndim != 1:
            raise GraphFormatError("src and dst must be 1-D arrays")
        if src.shape != dst.shape:
            raise GraphFormatError(
                f"src/dst length mismatch: {src.shape} vs {dst.shape}"
            )
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= self.num_nodes:
                raise GraphFormatError(
                    f"edge endpoint out of range [0, {self.num_nodes}): "
                    f"saw [{lo}, {hi}]"
                )

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.size)

    def sorted(self) -> "COOGraph":
        """Return a copy with edges sorted by (src, dst)."""
        order = np.lexsort((self.dst, self.src))
        return COOGraph(self.num_nodes, self.src[order], self.dst[order])

    def deduplicated(self) -> "COOGraph":
        """Return a sorted copy with duplicate edges removed."""
        g = self.sorted()
        if g.num_edges == 0:
            return g
        keep = np.ones(g.num_edges, dtype=bool)
        keep[1:] = (np.diff(g.src) != 0) | (np.diff(g.dst) != 0)
        return COOGraph(g.num_nodes, g.src[keep], g.dst[keep])

    def without_self_loops(self) -> "COOGraph":
        """Return a copy with self loops removed."""
        keep = self.src != self.dst
        return COOGraph(self.num_nodes, self.src[keep], self.dst[keep])

    def symmetrized(self) -> "COOGraph":
        """Return the undirected closure: both (u, v) and (v, u) present."""
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        return COOGraph(self.num_nodes, src, dst).deduplicated()

    def reversed(self) -> "COOGraph":
        """Return the transpose graph (every edge flipped)."""
        return COOGraph(self.num_nodes, self.dst.copy(), self.src.copy())

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an int64 array."""
        return np.bincount(self.src, minlength=self.num_nodes).astype(EDGE_DTYPE)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an int64 array."""
        return np.bincount(self.dst, minlength=self.num_nodes).astype(EDGE_DTYPE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOGraph(|V|={self.num_nodes}, |E|={self.num_edges})"
