"""Structural statistics of graphs.

Used by the Table-1 benchmark, by the dataset generators' tests (to check
the stand-ins really have the skew/regularity they claim), and by the
examples for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an out-degree distribution."""

    num_nodes: int
    num_edges: int
    mean: float
    median: float
    maximum: int
    std: float
    gini: float
    p99: float

    @property
    def skewness_ratio(self) -> float:
        """max degree / mean degree — the load-imbalance driver."""
        return self.maximum / self.mean if self.mean else 0.0


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for a graph's out-degrees."""
    deg = graph.out_degrees().astype(np.float64)
    if deg.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0, 0.0, 0.0, 0.0)
    return DegreeStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        maximum=int(deg.max()),
        std=float(deg.std()),
        gini=gini_coefficient(deg),
        p99=float(np.percentile(deg, 99)),
    )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, 1 = all-one).

    A compact skewness measure: the paper's social graphs have high Gini
    out-degree distributions while ``brain`` is near zero.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * v).sum() / (n * v.sum())) - (n + 1.0) / n)


def id_locality(graph: CSRGraph, window: int = 64) -> float:
    """Fraction of edges whose |src - dst| <= window.

    Web crawls assign ids in discovery order so this is high for uk-2002;
    random social graphs sit near ``2 * window / |V|``.
    """
    coo = graph.to_coo()
    if coo.num_edges == 0:
        return 0.0
    return float(np.mean(np.abs(coo.src - coo.dst) <= window))


def sector_span(graph: CSRGraph, sector_width: int = 8) -> float:
    """Average number of distinct memory sectors per adjacency list.

    This is the per-node version of the objective Sampling-based
    Reordering minimizes (paper Section 6): neighbors scattered over many
    sectors cost more memory transactions.
    """
    if graph.num_edges == 0:
        return 0.0
    from repro.gpusim.memory import segmented_distinct_sectors

    per_node = segmented_distinct_sectors(
        graph.targets, graph.offsets[:-1], sector_width, presorted=True
    )
    nonempty = graph.out_degrees() > 0
    if not nonempty.any():
        return 0.0
    return float(per_node[nonempty].mean())
