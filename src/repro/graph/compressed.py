"""Delta-varint compressed adjacency (CSR companion representation).

The paper cites the authors' companion system for traversal over
*compressed* graphs (reference [41], Sha et al., SIGMOD'19).  This module
provides that representation as an optional extension: adjacency lists
are gap-encoded (each sorted neighbor list stored as deltas) and packed
as LEB128 varints, typically compressing social-network CSRs 2-4x.

Both directions are fully vectorized: encoding computes per-value byte
widths with masks; decoding reconstructs all values in one pass from the
continuation-bit structure.  :class:`repro.core.compressed.CompressedTraversalScheduler` wraps any
scheduler so traversals can run *directly* on the compressed image: CSR
read traffic shrinks by the measured compression ratio while each edge
pays a small decode cost — the classic bandwidth-for-compute trade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


def _encode_varints(values: np.ndarray) -> np.ndarray:
    """LEB128-encode a non-negative int64 array into a uint8 stream."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise GraphFormatError("varint encoding needs non-negative values")
    if values.size == 0:
        return np.zeros(0, dtype=np.uint8)
    # bytes needed: 1 + floor(log128(v)) for v > 0
    widths = np.ones(values.size, dtype=np.int64)
    v = values >> 7
    while np.any(v):
        widths += (v > 0)
        v >>= 7
    total = int(widths.sum())
    out = np.zeros(total, dtype=np.uint8)
    starts = np.cumsum(widths) - widths
    remaining = values.copy()
    # fill byte position k of every value that has one
    max_width = int(widths.max())
    for k in range(max_width):
        has_k = widths > k
        idx = starts[has_k] + k
        chunk = (remaining[has_k] & 0x7F).astype(np.uint8)
        more = widths[has_k] > k + 1
        out[idx] = chunk | (more.astype(np.uint8) << 7)
        remaining[has_k] >>= 7
    return out


def _decode_varints(stream: np.ndarray) -> np.ndarray:
    """Decode a LEB128 uint8 stream back to int64 values."""
    stream = np.asarray(stream, dtype=np.uint8)
    if stream.size == 0:
        return np.zeros(0, dtype=np.int64)
    is_start = np.ones(stream.size, dtype=bool)
    is_start[1:] = (stream[:-1] & 0x80) == 0
    group = np.cumsum(is_start) - 1
    start_positions = np.flatnonzero(is_start)
    pos_in_group = np.arange(stream.size) - start_positions[group]
    contributions = (stream.astype(np.int64) & 0x7F) << (7 * pos_in_group)
    values = np.zeros(start_positions.size, dtype=np.int64)
    np.add.at(values, group, contributions)
    return values


@dataclass(frozen=True)
class CompressedCSRGraph:
    """Gap + varint compressed adjacency structure.

    Attributes:
        num_nodes: node count.
        num_edges: edge count.
        byte_offsets: per-node byte ranges into ``payload``
            (length ``num_nodes + 1``).
        edge_offsets: per-node edge counts, CSR-style (for degree
            queries without decoding).
        payload: concatenated varint streams; node ``u``'s sorted
            adjacency is gap-decoded from
            ``payload[byte_offsets[u]:byte_offsets[u + 1]]``.
    """

    num_nodes: int
    num_edges: int
    byte_offsets: np.ndarray
    edge_offsets: np.ndarray
    payload: np.ndarray

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "CompressedCSRGraph":
        """Compress a CSR graph (adjacency lists must be sorted — the
        CSR construction invariant)."""
        degrees = graph.out_degrees()
        # gaps: first neighbor absolute, rest deltas (sorted => >= 0)
        deltas = graph.targets.copy()
        if graph.num_edges:
            inner = np.ones(graph.num_edges, dtype=bool)
            inner[graph.offsets[:-1][degrees > 0]] = False
            deltas[inner] = np.diff(graph.targets)[inner[1:]]
        stream = _encode_varints(deltas)
        # byte widths per value -> per node byte offsets
        widths = np.ones(graph.num_edges, dtype=np.int64)
        v = deltas >> 7
        while np.any(v):
            widths += (v > 0)
            v >>= 7
        byte_offsets = np.zeros(graph.num_nodes + 1, dtype=np.int64)
        np.add.at(
            byte_offsets,
            1 + np.repeat(np.arange(graph.num_nodes), degrees),
            widths,
        )
        np.cumsum(byte_offsets, out=byte_offsets)
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            byte_offsets=byte_offsets,
            edge_offsets=graph.offsets.copy(),
            payload=stream,
        )

    def to_csr(self) -> CSRGraph:
        """Decompress back to plain CSR (exact round trip)."""
        deltas = _decode_varints(self.payload)
        if deltas.size != self.num_edges:
            raise GraphFormatError("payload decodes to wrong edge count")
        targets = np.cumsum(deltas)
        if self.num_edges:
            # Each segment's first value is absolute, so subtract the
            # running total accumulated before the segment began.
            degrees = np.diff(self.edge_offsets)
            seg_starts = self.edge_offsets[:-1][degrees > 0]
            seg_of = np.repeat(np.arange(self.num_nodes), degrees)
            seg_base = np.zeros(self.num_nodes, dtype=np.int64)
            nonzero_start = seg_starts[seg_starts > 0]
            seg_ids = seg_of[nonzero_start]
            seg_base[seg_ids] = targets[nonzero_start - 1]
            targets = targets - seg_base[seg_of]
        return CSRGraph(self.num_nodes, self.edge_offsets.copy(), targets)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def out_degree(self, node: int) -> int:
        return int(self.edge_offsets[node + 1] - self.edge_offsets[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Decode one node's sorted adjacency list."""
        chunk = self.payload[
            self.byte_offsets[node]:self.byte_offsets[node + 1]
        ]
        return np.cumsum(_decode_varints(chunk))

    @property
    def compressed_bytes(self) -> int:
        return int(self.payload.size)

    @property
    def uncompressed_bytes(self) -> int:
        """Plain CSR targets footprint (4-byte ids, as in the paper)."""
        return self.num_edges * 4

    @property
    def compression_ratio(self) -> float:
        """uncompressed / compressed size (> 1 means smaller)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.uncompressed_bytes / self.compressed_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedCSRGraph(|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"ratio={self.compression_ratio:.2f}x)"
        )
