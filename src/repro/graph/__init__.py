"""Graph representations, generators, datasets and IO."""

from repro.graph.builders import (
    from_networkx,
    from_scipy_sparse,
    induced_subgraph,
    largest_weakly_connected_component,
    to_networkx,
    to_scipy_sparse,
)
from repro.graph.compressed import CompressedCSRGraph
from repro.graph.coo import COOGraph
from repro.graph.csr import CSRGraph
from repro.graph.datasets import Dataset, by_name, full_suite, small_suite
from repro.graph.delta import GraphDelta, patch_csr
from repro.graph.dynamic import DynamicGraph
from repro.graph.properties import (
    DegreeStats,
    degree_stats,
    gini_coefficient,
    id_locality,
    sector_span,
)

__all__ = [
    "COOGraph",
    "CompressedCSRGraph",
    "CSRGraph",
    "Dataset",
    "DegreeStats",
    "DynamicGraph",
    "GraphDelta",
    "by_name",
    "degree_stats",
    "from_networkx",
    "from_scipy_sparse",
    "full_suite",
    "gini_coefficient",
    "id_locality",
    "induced_subgraph",
    "largest_weakly_connected_component",
    "patch_csr",
    "sector_span",
    "small_suite",
    "to_networkx",
    "to_scipy_sparse",
]
