"""Synthetic graph generators.

These produce the structural regimes the paper's evaluation attributes its
results to (Section 7.2): regular hierarchies (web crawls), near-uniform
dense graphs (the ``brain`` dataset), and power-law social networks with
varying skew (``ljournal``, ``twitter``, ``friendster``).

All generators are deterministic given a :class:`numpy.random.Generator`
and return :class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.coo import EDGE_DTYPE
from repro.graph.csr import CSRGraph


def _rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


# ----------------------------------------------------------------------
# Toy graphs (used heavily in unit tests)
# ----------------------------------------------------------------------

def path_graph(n: int) -> CSRGraph:
    """A directed path ``0 -> 1 -> ... -> n - 1``."""
    if n < 1:
        raise InvalidParameterError("path_graph needs n >= 1")
    src = np.arange(n - 1, dtype=EDGE_DTYPE)
    return CSRGraph.from_edges(n, src, src + 1)


def cycle_graph(n: int) -> CSRGraph:
    """A directed cycle on ``n`` nodes."""
    if n < 2:
        raise InvalidParameterError("cycle_graph needs n >= 2")
    src = np.arange(n, dtype=EDGE_DTYPE)
    return CSRGraph.from_edges(n, src, (src + 1) % n)


def star_graph(n: int) -> CSRGraph:
    """Node 0 points at all other ``n - 1`` nodes (maximal skew)."""
    if n < 2:
        raise InvalidParameterError("star_graph needs n >= 2")
    dst = np.arange(1, n, dtype=EDGE_DTYPE)
    return CSRGraph.from_edges(n, np.zeros(n - 1, dtype=EDGE_DTYPE), dst)


def complete_graph(n: int) -> CSRGraph:
    """Every ordered pair (u, v), u != v."""
    if n < 1:
        raise InvalidParameterError("complete_graph needs n >= 1")
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = src != dst
    return CSRGraph.from_edges(n, src[mask].ravel(), dst[mask].ravel())


def grid_2d(rows: int, cols: int) -> CSRGraph:
    """A 4-neighbor grid, edges in both directions (regular, local)."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("grid_2d needs positive dimensions")
    n = rows * cols
    ids = np.arange(n).reshape(rows, cols)
    pairs = []
    if cols > 1:
        pairs.append((ids[:, :-1].ravel(), ids[:, 1:].ravel()))
    if rows > 1:
        pairs.append((ids[:-1, :].ravel(), ids[1:, :].ravel()))
    if not pairs:
        return CSRGraph.from_edges(n, np.empty(0, int), np.empty(0, int))
    src = np.concatenate([p[0] for p in pairs])
    dst = np.concatenate([p[1] for p in pairs])
    return CSRGraph.from_edges(n, src, dst, symmetric=True)


# ----------------------------------------------------------------------
# Random-graph families
# ----------------------------------------------------------------------

def erdos_renyi(
    n: int,
    avg_degree: float,
    seed: int | np.random.Generator | None = 0,
    *,
    symmetric: bool = False,
) -> CSRGraph:
    """G(n, m)-style uniform random graph with ``n * avg_degree`` edges."""
    if n < 1 or avg_degree < 0:
        raise InvalidParameterError("erdos_renyi needs n >= 1, avg_degree >= 0")
    rng = _rng(seed)
    m = int(round(n * avg_degree))
    src = rng.integers(0, n, size=m, dtype=EDGE_DTYPE)
    dst = rng.integers(0, n, size=m, dtype=EDGE_DTYPE)
    return CSRGraph.from_edges(
        n, src, dst, dedup=True, drop_self_loops=True, symmetric=symmetric
    )


def random_regular(
    n: int,
    degree: int,
    seed: int | np.random.Generator | None = 0,
) -> CSRGraph:
    """Near-regular random digraph: every node has out-degree ``degree``.

    Targets are drawn by permuting stub lists; a handful of self loops and
    duplicates are dropped, so realized degrees may be a whisker below
    ``degree``.  This is the "brain"-style near-uniform regime.
    """
    if n < 2 or degree < 0 or degree >= n:
        raise InvalidParameterError("random_regular needs 0 <= degree < n, n >= 2")
    rng = _rng(seed)
    src = np.repeat(np.arange(n, dtype=EDGE_DTYPE), degree)
    # Draw each node's neighbors without replacement via a shifted base
    # permutation: cheap and collision-free per node.
    base = rng.permutation(n).astype(EDGE_DTYPE)
    shifts = rng.integers(1, n, size=n, dtype=EDGE_DTYPE)
    dst = (base[np.tile(np.arange(degree), n)]
           + np.repeat(shifts, degree)) % n
    return CSRGraph.from_edges(n, src, dst, dedup=True, drop_self_loops=True)


def barabasi_albert(
    n: int,
    m: int,
    seed: int | np.random.Generator | None = 0,
) -> CSRGraph:
    """Preferential-attachment graph (power-law in-degrees), symmetrized.

    Each new node attaches to ``m`` existing nodes sampled proportionally
    to degree, using the standard repeated-endpoints trick.
    """
    if n < 2 or m < 1 or m >= n:
        raise InvalidParameterError("barabasi_albert needs 1 <= m < n")
    rng = _rng(seed)
    # repeated-endpoint pool: sampling uniformly from it is sampling
    # proportionally to degree.
    pool = list(range(m))
    src = []
    dst = []
    for new in range(m, n):
        pool_arr = np.asarray(pool)
        picks = rng.choice(pool_arr, size=min(m, len(pool)), replace=False)
        for p in picks:
            src.append(new)
            dst.append(int(p))
            pool.append(int(p))
            pool.append(new)
    return CSRGraph.from_edges(
        n, np.asarray(src), np.asarray(dst), symmetric=True
    )


def power_law_configuration(
    n: int,
    exponent: float,
    avg_degree: float,
    seed: int | np.random.Generator | None = 0,
    *,
    max_degree: int | None = None,
    hub_count: int = 0,
    hub_degree: int | None = None,
    community_count: int = 0,
    community_bias: float = 0.85,
    scramble_ids: bool = False,
) -> CSRGraph:
    """Configuration-model digraph with power-law out-degrees.

    Out-degrees are drawn from ``P(d) ~ d^-exponent`` on ``[1, max_degree]``
    and rescaled to hit ``avg_degree``.  Optionally the first ``hub_count``
    nodes are forced to degree ``hub_degree`` to emulate twitter-style
    super-hubs ("|outdegrees| of some nodes up to several millions", paper
    Section 7.3).

    With ``community_count > 0``, nodes belong to equal latent communities
    and each edge lands inside its source's community with probability
    ``community_bias`` — the clustering structure real social networks
    have and reordering methods exploit.  ``scramble_ids`` then hides the
    structure behind a random relabeling (crawled social graphs arrive
    with essentially arbitrary ids), so locality is *recoverable* but not
    present in the input order.
    """
    if n < 2 or exponent <= 1.0 or avg_degree <= 0:
        raise InvalidParameterError(
            "power_law_configuration needs n >= 2, exponent > 1, avg_degree > 0"
        )
    if not 0.0 <= community_bias <= 1.0:
        raise InvalidParameterError("community_bias must be in [0, 1]")
    rng = _rng(seed)
    if max_degree is None:
        max_degree = max(2, n // 10)
    ds = np.arange(1, max_degree + 1, dtype=np.float64)
    probs = ds ** (-exponent)
    probs /= probs.sum()
    degrees = rng.choice(
        np.arange(1, max_degree + 1), size=n, p=probs
    ).astype(np.float64)
    degrees *= avg_degree / degrees.mean()
    degrees = np.maximum(1, np.round(degrees)).astype(EDGE_DTYPE)
    if hub_count:
        hd = hub_degree if hub_degree is not None else n // 5
        degrees[:hub_count] = min(hd, n - 1)
    src = np.repeat(np.arange(n, dtype=EDGE_DTYPE), degrees)
    m = int(degrees.sum())
    if community_count > 1:
        comm_size = -(-n // community_count)
        comm_of_src = src // comm_size
        local = rng.random(m) < community_bias
        # Super-hubs fan out across the whole graph (their reach is what
        # makes them hubs); communities would cap their distinct targets.
        if hub_count:
            local &= src >= hub_count
        within = rng.integers(0, comm_size, size=m, dtype=EDGE_DTYPE)
        local_dst = np.minimum(comm_of_src * comm_size + within, n - 1)
        dst = np.where(local, local_dst,
                       rng.integers(0, n, size=m, dtype=EDGE_DTYPE))
    else:
        dst = rng.integers(0, n, size=m, dtype=EDGE_DTYPE)
    graph = CSRGraph.from_edges(n, src, dst, dedup=True, drop_self_loops=True)
    if scramble_ids:
        graph = graph.permute(rng.permutation(n).astype(EDGE_DTYPE))
    return graph


def watts_strogatz(
    n: int,
    k: int,
    p: float,
    seed: int | np.random.Generator | None = 0,
) -> CSRGraph:
    """Small-world ring lattice with rewiring probability ``p``."""
    if n < 3 or k < 2 or k % 2 or k >= n:
        raise InvalidParameterError(
            "watts_strogatz needs n >= 3 and even 2 <= k < n"
        )
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError("rewiring probability must be in [0, 1]")
    rng = _rng(seed)
    src = np.repeat(np.arange(n, dtype=EDGE_DTYPE), k // 2)
    hops = np.tile(np.arange(1, k // 2 + 1, dtype=EDGE_DTYPE), n)
    dst = (src + hops) % n
    rewire = rng.random(dst.size) < p
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()), dtype=EDGE_DTYPE)
    return CSRGraph.from_edges(n, src, dst, drop_self_loops=True, symmetric=True)


def rmat(
    scale: int,
    edge_factor: int,
    seed: int | np.random.Generator | None = 0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """Graph500-style Kronecker (R-MAT) generator.

    ``2**scale`` nodes and ``edge_factor * 2**scale`` directed edges with
    recursive quadrant probabilities (a, b, c, 1 - a - b - c).  Vectorized
    over all edges at once: one random draw per bit level.
    """
    if scale < 1 or edge_factor < 1:
        raise InvalidParameterError("rmat needs scale >= 1, edge_factor >= 1")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise InvalidParameterError("rmat quadrant probabilities must sum <= 1")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=EDGE_DTYPE)
    dst = np.zeros(m, dtype=EDGE_DTYPE)
    for _ in range(scale):
        r = rng.random(m)
        src_bit = (r >= a + b).astype(EDGE_DTYPE)
        dst_bit = (((r >= a) & (r < a + b)) | (r >= a + b + c)).astype(EDGE_DTYPE)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return CSRGraph.from_edges(n, src, dst, dedup=True, drop_self_loops=True)


def web_hierarchy(
    n: int,
    avg_degree: float,
    seed: int | np.random.Generator | None = 0,
    *,
    locality: float = 0.8,
    span: int = 64,
) -> CSRGraph:
    """Web-crawl-like graph: regular hierarchy with high id locality.

    Crawlers assign ids in discovery order, so most hyperlinks land near
    the source id (paper Section 7.2 credits uk-2002's "relatively regular
    hierarchy" for its high traversal speed).  A fraction ``locality`` of
    each node's edges go to ids within ``span`` of the source; the rest are
    uniform "cross links".  Degrees are mildly skewed (lognormal).
    """
    if n < 4 or avg_degree <= 0 or not 0 <= locality <= 1 or span < 1:
        raise InvalidParameterError("web_hierarchy parameters out of range")
    rng = _rng(seed)
    degrees = np.maximum(
        1, rng.lognormal(mean=np.log(avg_degree), sigma=0.6, size=n)
    ).astype(EDGE_DTYPE)
    src = np.repeat(np.arange(n, dtype=EDGE_DTYPE), degrees)
    m = int(degrees.sum())
    local = rng.random(m) < locality
    offsets = rng.integers(-span, span + 1, size=m, dtype=EDGE_DTYPE)
    dst = np.where(
        local,
        np.clip(src + offsets, 0, n - 1),
        rng.integers(0, n, size=m, dtype=EDGE_DTYPE),
    )
    return CSRGraph.from_edges(n, src, dst, dedup=True, drop_self_loops=True)
