"""Double-buffered frontier queues (paper Figure 2).

The pipeline iterates over frontiers: the *current* buffer is consumed by
expansion while the *next* buffer collects filtered neighbors; the
buffers swap between iterations.  In the vectorized implementation the
contraction already produces a dense array, so the queue mainly tracks
swap bookkeeping and high-water statistics.
"""

from __future__ import annotations

import numpy as np


class FrontierQueue:
    """Two-buffer frontier manager with usage statistics."""

    def __init__(self, initial: np.ndarray) -> None:
        self._current = np.asarray(initial, dtype=np.int64)
        self._next: np.ndarray | None = None
        self.iterations = 0
        self.max_frontier = int(self._current.size)
        self.total_frontier_nodes = int(self._current.size)

    @property
    def current(self) -> np.ndarray:
        """The active frontier."""
        return self._current

    @property
    def empty(self) -> bool:
        """Whether traversal has converged."""
        return self._current.size == 0

    def publish_next(self, frontier: np.ndarray) -> None:
        """Store the contracted next frontier (once per iteration)."""
        self._next = np.asarray(frontier, dtype=np.int64)

    def swap(self) -> np.ndarray:
        """Swap buffers and return the new current frontier."""
        if self._next is None:
            self._current = np.empty(0, dtype=np.int64)
        else:
            self._current = self._next
        self._next = None
        self.iterations += 1
        self.max_frontier = max(self.max_frontier, int(self._current.size))
        self.total_frontier_nodes += int(self._current.size)
        return self._current

    def remap(self, perm: np.ndarray) -> None:
        """Relabel queued node ids after a reordering commit."""
        self._current = perm[self._current]
        if self._next is not None:
            self._next = perm[self._next]
