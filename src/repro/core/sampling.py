"""Tile Access Sampling (paper Section 6, Algorithm 4).

During the filtering step each cooperative tile holds the neighbor ids it
is about to access in shared memory; counting how many intra-tile
neighbors share a memory sector is a cheap, in-kernel measurement of
locality.  This module implements that measurement vectorized: an
observation batch is the concatenated neighbor array of one iteration
plus the tile segment boundaries, and the sampler accumulates

* per-node *locality* counts (Stage 1's measure): for node ``u`` in a
  tile, the number of other tile members in ``u``'s sector, and
* a bounded sample of *co-access pairs* ``(u, co_member)`` feeding the
  Stage 2 binary search and the Stage 3 validation.

Pair collection bounds work per tile (at most ``co_samples`` co-members
per element, from a ``tile_sample_rate`` fraction of tiles) — the
"sampling" that keeps the paper's technique lightweight.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


class TileAccessSampler:
    """Accumulates locality statistics from sampled tile accesses."""

    def __init__(
        self,
        num_nodes: int,
        sector_width: int,
        *,
        co_samples: int = 4,
        tile_sample_rate: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1 or sector_width < 1:
            raise InvalidParameterError("num_nodes and sector_width must be >= 1")
        if co_samples < 1 or not 0 < tile_sample_rate <= 1:
            raise InvalidParameterError(
                "co_samples >= 1 and 0 < tile_sample_rate <= 1 required"
            )
        self.num_nodes = num_nodes
        self.sector_width = sector_width
        self.co_samples = co_samples
        self.tile_sample_rate = tile_sample_rate
        self._rng = np.random.default_rng(seed)
        self.observed_edges = 0
        self.sampled_tiles = 0
        self._pair_u: list[np.ndarray] = []
        self._pair_co: list[np.ndarray] = []

    def observe(self, edge_dst: np.ndarray, segment_starts: np.ndarray) -> None:
        """Record one iteration's tile accesses.

        Args:
            edge_dst: concatenated neighbor ids of the iteration.
            segment_starts: sorted tile segment starts partitioning
                ``edge_dst`` (from
                :meth:`~repro.core.tiling.TileDecomposition.segment_starts`).
        """
        edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self.observed_edges += int(edge_dst.size)
        if edge_dst.size == 0 or segment_starts.size == 0:
            return
        starts = np.asarray(segment_starts, dtype=np.int64)
        bounds = np.append(starts, edge_dst.size)
        lengths = np.diff(bounds)
        keep = (lengths > 1) & (self._rng.random(starts.size) < self.tile_sample_rate)
        if not keep.any():
            return
        starts = starts[keep]
        lengths = lengths[keep]
        self.sampled_tiles += int(starts.size)

        # For every element of every kept tile, pair it with up to
        # ``co_samples`` rotated co-members of the same tile.  Rotation by
        # k in [1, len) never pairs an element with itself.  Each tile
        # element yields min(co_samples, len - 1) pairs, so the whole
        # observation fits one preallocated buffer per side instead of
        # one appended array per rotation.
        n_pairs_per_elem = np.minimum(self.co_samples, lengths - 1)
        total_pairs = int((n_pairs_per_elem * lengths).sum())
        pair_u = np.empty(total_pairs, dtype=np.int64)
        pair_co = np.empty(total_pairs, dtype=np.int64)
        filled = 0
        for k in range(1, self.co_samples + 1):
            has_k = lengths - 1 >= k
            if not has_k.any():
                break
            s = starts[has_k]
            ln = lengths[has_k]
            total = int(ln.sum())
            within = (
                np.arange(total, dtype=np.int64)
                - np.repeat(np.cumsum(ln) - ln, ln)
            )
            base = np.repeat(s, ln)
            pair_u[filled : filled + total] = edge_dst[base + within]
            pair_co[filled : filled + total] = edge_dst[
                base + (within + k) % np.repeat(ln, ln)
            ]
            filled += total
        self._pair_u.append(pair_u[:filled])
        self._pair_co.append(pair_co[:filled])

    def pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All collected (member, co-member) pairs."""
        if not self._pair_u:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(self._pair_u), np.concatenate(self._pair_co)

    def locality_counts(self) -> np.ndarray:
        """Stage-1 locality per node: sampled same-sector co-accesses."""
        u, co = self.pairs()
        if not u.size:
            return np.zeros(self.num_nodes, dtype=np.int64)
        same = (u // self.sector_width) == (co // self.sector_width)
        return np.bincount(u[same], minlength=self.num_nodes)

    def reset(self) -> None:
        """Clear all accumulated samples (start of a new round)."""
        self.observed_edges = 0
        self.sampled_tiles = 0
        self._pair_u.clear()
        self._pair_co.clear()


def exact_locality_counts(
    edge_dst: np.ndarray,
    segment_starts: np.ndarray,
    num_nodes: int,
    sector_width: int,
) -> np.ndarray:
    """Exact (non-sampled) Algorithm-4 locality counts, for tests.

    For every tile and every member ``u``, adds the number of other tile
    members in ``u``'s sector.
    """
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    locality = np.zeros(num_nodes, dtype=np.int64)
    if edge_dst.size == 0:
        return locality
    starts = np.asarray(segment_starts, dtype=np.int64)
    lengths = np.diff(np.append(starts, edge_dst.size))
    seg_of = np.repeat(np.arange(starts.size, dtype=np.int64), lengths)
    sectors = edge_dst // sector_width
    order = np.lexsort((sectors, seg_of))
    s_sorted = sectors[order]
    g_sorted = seg_of[order]
    run_start = np.ones(edge_dst.size, dtype=bool)
    run_start[1:] = (s_sorted[1:] != s_sorted[:-1]) | (g_sorted[1:] != g_sorted[:-1])
    run_ids = np.cumsum(run_start) - 1
    run_sizes = np.bincount(run_ids)
    per_elem = run_sizes[run_ids] - 1
    np.add.at(locality, edge_dst[order], per_elem)
    return locality
