"""Direction-optimizing BFS (push/pull hybrid).

An extension beyond the paper's push-based pipeline: Beamer-style
direction optimization, the technique behind Ligra's EDGEMAP and
Gunrock's advance.  Dense frontiers switch from *push* (expand the
frontier's out-edges) to *pull* (every unvisited node scans its
in-edges and adopts the level if any in-neighbor is a frontier member),
which touches each unvisited node once instead of once per incoming
frontier edge.

Both directions run through the same scheduler/cost machinery: push
iterations expand the forward CSR, pull iterations expand the transpose,
so SAGE's tiles and stealing apply unchanged.  A pull iteration may stop
scanning a node's in-edges at the first frontier hit; the cost model
reflects that with an expected early-exit factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.bfs import UNVISITED
from repro.core.pipeline import RunResult
from repro.core.scheduler import Scheduler
from repro.errors import ConvergenceError, InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.gpusim.device import Device

#: push -> pull when frontier out-edges exceed |E| / ALPHA (Beamer's
#: heuristic; 14 in the original paper, smaller here because the scaled
#: graphs have shallower BFS trees).
DEFAULT_ALPHA = 14.0
#: pull -> push when the unvisited set shrinks below |V| / BETA.
DEFAULT_BETA = 24.0


@dataclass(frozen=True)
class HybridConfig:
    """The direction-switching thresholds, as one injectable value.

    Every call site routes through this dataclass — the auto-tuner
    (:mod:`repro.tune`) owns exactly one injection point, and
    ``tests/tune/test_hybrid_config.py`` pins that no stray
    ``alpha=``/``beta=`` literals bypass it inside the library.
    """

    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise InvalidParameterError("alpha and beta must be positive")


@dataclass(frozen=True)
class HybridStats:
    """Direction decisions of one run."""

    push_iterations: int
    pull_iterations: int


def direction_optimized_bfs(
    graph: CSRGraph,
    scheduler_factory,
    source: int,
    *,
    config: HybridConfig | None = None,
    alpha: float | None = None,
    beta: float | None = None,
    max_iterations: int = 100_000,
) -> tuple[RunResult, HybridStats]:
    """BFS with per-iteration push/pull direction selection.

    Args:
        graph: input graph (its transpose is built once up front).
        scheduler_factory: zero-arg callable producing a fresh
            :class:`~repro.core.scheduler.Scheduler`; separate instances
            drive the push (forward CSR) and pull (transpose) kernels.
        source: BFS root.
        config: Beamer switching thresholds (:class:`HybridConfig`).
        alpha, beta: deprecated loose spellings of the thresholds; pass
            ``config=HybridConfig(alpha=..., beta=...)`` instead.

    Returns:
        ``(RunResult, HybridStats)`` — the result's ``dist`` matches a
        plain BFS exactly; only the traversal cost differs.
    """
    if not 0 <= source < graph.num_nodes:
        raise InvalidParameterError(f"source {source} out of range")
    if alpha is not None or beta is not None:
        from repro.deprecation import warn_once

        warn_once(
            "hybrid.alpha_beta",
            "direction_optimized_bfs(..., alpha=, beta=) is deprecated; "
            "pass config=HybridConfig(alpha=..., beta=...) instead",
        )
        base = config if config is not None else HybridConfig()
        config = HybridConfig(
            alpha=base.alpha if alpha is None else alpha,
            beta=base.beta if beta is None else beta,
        )
    if config is None:
        config = HybridConfig()
    alpha_threshold = config.alpha
    beta_threshold = config.beta
    reverse = graph.reversed()
    push_scheduler = scheduler_factory()
    pull_scheduler = scheduler_factory()
    push_scheduler.reset(graph)
    pull_scheduler.reset(reverse)
    device = Device(push_scheduler.spec)

    n = graph.num_nodes
    dist = np.full(n, UNVISITED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    edges_traversed = 0
    pushes = 0
    pulls = 0
    out_degrees = graph.out_degrees()

    class _CostProbe:
        """Minimal App stand-in for the schedulers' cost interface."""

        uses_atomics = False
        value_access_factor = 1.0
        edge_compute_factor = 1.0

    probe = _CostProbe()

    while frontier.size:
        if level >= max_iterations:
            raise ConvergenceError("BFS exceeded iteration bound")
        frontier_edges = int(out_degrees[frontier].sum())
        unvisited = np.flatnonzero(dist == UNVISITED)
        use_pull = (
            unvisited.size > 0
            and frontier_edges > graph.num_edges / alpha_threshold
            and unvisited.size > n / beta_threshold
        )
        if use_pull:
            next_frontier, cost_edges = _pull_level(
                reverse, unvisited, dist, level, pull_scheduler, probe,
                device,
            )
            pulls += 1
        else:
            next_frontier, cost_edges = _push_level(
                graph, frontier, dist, level, push_scheduler, probe, device,
            )
            pushes += 1
        edges_traversed += cost_edges
        level += 1
        dist[next_frontier] = level
        frontier = next_frontier

    result = RunResult(
        app_name="bfs-hybrid",
        scheduler_name=f"{push_scheduler.name}+dirop",
        seconds=device.elapsed_seconds,
        iterations=level,
        edges_traversed=edges_traversed,
        result={"dist": dist},
        profiler=device.profiler,
    )
    return result, HybridStats(push_iterations=pushes, pull_iterations=pulls)


def _push_level(
    graph: CSRGraph,
    frontier: np.ndarray,
    dist: np.ndarray,
    level: int,
    scheduler: Scheduler,
    probe,
    device: Device,
) -> tuple[np.ndarray, int]:
    """Classic push expansion of one level."""
    edge_src, edge_dst, _ = graph.expand_frontier(frontier)
    degrees = graph.offsets[frontier + 1] - graph.offsets[frontier]
    stats = scheduler.kernel_stats(frontier, degrees, edge_dst, graph, probe)
    device.run_kernel(stats)
    fresh = dist[edge_dst] == UNVISITED
    return np.unique(edge_dst[fresh]), int(edge_dst.size)


def _pull_level(
    reverse: CSRGraph,
    unvisited: np.ndarray,
    dist: np.ndarray,
    level: int,
    scheduler: Scheduler,
    probe,
    device: Device,
) -> tuple[np.ndarray, int]:
    """Pull: unvisited nodes scan in-edges for a frontier parent.

    Each scan stops at the first hit; the expected scanned prefix is
    modeled by scaling the kernel's edge volume by the measured hit
    positioning (cheap surrogate: half the in-edges of adopting nodes,
    all in-edges of non-adopting ones).
    """
    edge_src, edge_dst, _ = reverse.expand_frontier(unvisited)
    degrees = reverse.offsets[unvisited + 1] - reverse.offsets[unvisited]
    # functional result: adopt if any in-neighbor sits at `level`
    parent_hit = dist[edge_dst] == level
    adopters_mask = np.zeros(dist.size, dtype=bool)
    adopters_mask[edge_src[parent_hit]] = True
    adopters = unvisited[adopters_mask[unvisited]]

    # cost: early exit halves the scanned volume for adopters
    scanned = int(degrees.sum())
    adopted_edges = int(degrees[adopters_mask[unvisited]].sum())
    effective = scanned - adopted_edges // 2
    stats = scheduler.kernel_stats(
        unvisited, degrees, edge_dst, reverse, probe
    )
    scale = effective / max(1, scanned)
    stats.active_edges = int(stats.active_edges * scale)
    stats.issued_lane_cycles = max(
        stats.active_edges, int(stats.issued_lane_cycles * scale)
    )
    stats.per_sm_lane_cycles = stats.per_sm_lane_cycles * scale
    stats.value_sector_touches = int(stats.value_sector_touches * scale)
    stats.value_sector_unique = min(
        stats.value_sector_unique, stats.value_sector_touches
    )
    device.run_kernel(stats)
    return adopters, effective
