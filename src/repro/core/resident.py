"""Resident tiles and work stealing (paper Section 5.2, Algorithm 3).

Tiled partitions computed during expansion are kept in device memory as
*resident tiles* — scheduling logs reusable whenever the same node is
visited again, so the dynamic arrangement is paid once per node.  Being
in device memory also makes the tiles visible to every SM: any
cooperative group of the right size may consume any tile (*Resident Tile
Stealing*), which removes inter-SM load imbalance and raises the number
of independent work units in flight.

The store tracks which nodes currently have resident tiles and the
device-memory footprint; the decomposition itself is shared with
:mod:`repro.core.tiling`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

#: bytes per stored tile record: (node, global offset, size) packed.
TILE_RECORD_BYTES = 12


class ResidentTileStore:
    """Device-global store of expanded tiled partitions."""

    def __init__(self, graph: CSRGraph) -> None:
        self._resident = np.zeros(graph.num_nodes, dtype=bool)
        self.reuse_hits = 0
        self.expansions = 0
        self.stored_tiles = 0

    def visit(
        self, frontier: np.ndarray, tiles_per_node: np.ndarray
    ) -> tuple[int, int, int]:
        """Record one frontier visit.

        Args:
            frontier: active node ids.
            tiles_per_node: number of tiles (including fragments) each
                frontier node decomposes into, frontier order.

        Returns:
            ``(reused_nodes, new_nodes, new_tiles)`` — reused nodes cost
            nothing to schedule; new nodes pay the tile-store write.
        """
        is_resident = self._resident[frontier]
        reused = int(is_resident.sum())
        new_nodes = int(frontier.size - reused)
        new_tiles = int(tiles_per_node[~is_resident].sum())
        self._resident[frontier] = True
        self.reuse_hits += reused
        self.expansions += new_nodes
        self.stored_tiles += new_tiles
        return reused, new_nodes, new_tiles

    @property
    def footprint_bytes(self) -> int:
        """Device memory consumed by the resident tile structure."""
        return self.stored_tiles * TILE_RECORD_BYTES

    @property
    def reuse_rate(self) -> float:
        """Fraction of node visits served from resident tiles."""
        total = self.reuse_hits + self.expansions
        return self.reuse_hits / total if total else 0.0

    def invalidate_all(self) -> None:
        """Drop every resident tile (after reordering or graph updates).

        Reordering rewrites the CSR, so stored (offset, size) records no
        longer point at valid adjacency slices; the next visit re-expands.
        """
        self._resident[:] = False
        self.stored_tiles = 0

    def invalidate_nodes(self, nodes: np.ndarray) -> None:
        """Drop resident tiles of specific nodes (targeted graph updates)."""
        self._resident[nodes] = False
