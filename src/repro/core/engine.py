"""The SAGE scheduler: self-adaptive graph traversal (paper Section 5).

:class:`SageScheduler` composes the three techniques behind feature flags
so the ablation study (Figure 10) can enable them incrementally:

* ``tiled_partitioning`` — Algorithm 2's runtime load reallocation.
  Off, the engine degenerates to naive thread-per-node mapping (the
  ablation baseline).
* ``resident_stealing`` — Algorithm 3: tiles are expanded to device
  memory once per node, reused on revisits, and consumable by any SM
  (work conserving, high concurrency).
* ``sampling_reorder`` — Section 6's Sampling-based Reordering, running
  rounds whenever the sampled access volume passes the threshold.

Cost accounting: the per-technique overhead constants below are the
simulator's stand-ins for the synchronization/voting instruction costs of
real cooperative groups; they are *per work item across all threads* and
get divided by the SM count (overheads execute in parallel per SM).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.apps.base import App
from repro.core.reorder import SamplingReorderer
from repro.core.resident import ResidentTileStore, TILE_RECORD_BYTES
from repro.core.scheduler import (
    ReorderCommit,
    Scheduler,
    SectorAccounting,
    atomic_conflicts_for,
    csr_gather_sectors,
    value_sector_accounting,
)
from repro.core.tiling import DEFAULT_MIN_TILE, TileDecomposition, decompose_frontier
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelStats, block_placement, even_placement
from repro.gpusim.memory import segmented_distinct_sectors
from repro.gpusim.spec import GPUSpec

# Scheduling-cost constants (lane-cycles per work item).
ELECTION_CYCLES = 24.0      # ballot + elect + three shuffles (Alg. 2 l.10-19)
TILE_ROUND_CYCLES = 4.0     # per-round vote + pointer bump (Alg. 2 l.21-25)
PARTITION_CYCLES = 16.0     # cg::partition per block per level (Alg. 2 l.28)
FRAGMENT_SETUP_CYCLES = 8.0  # scan-based gather setup per fragment node
TILE_WRITE_CYCLES = 6.0     # expandTiles store per new tile (Alg. 3 l.3)
TILE_CONSUME_CYCLES = 2.0   # popping a resident tile from the global queue
SAMPLE_CYCLES = 16.0        # Alg. 4 shared-memory counting per sampled tile

#: Distinct frontier degree signatures memoized per scheduler.  Full-frontier
#: apps (PageRank-style) present the identical degree array every iteration;
#: traversal apps cycle through a handful of frontiers across BFS levels.
DECOMP_MEMO_ENTRIES = 8


class SageScheduler(Scheduler):
    """Self-adaptive scheduler (Tiled Partitioning + RTS + reordering)."""

    def __init__(
        self,
        spec: GPUSpec | None = None,
        *,
        tiled_partitioning: bool = True,
        resident_stealing: bool = True,
        sampling_reorder: bool = False,
        min_tile: int = DEFAULT_MIN_TILE,
        tile_alignment: bool = True,
        reorder_threshold_edges: int | None = None,
        reorder_seed: int = 0,
    ) -> None:
        super().__init__(spec)
        self.tiled_partitioning = tiled_partitioning
        self.resident_stealing = resident_stealing
        self.sampling_reorder = sampling_reorder
        self.min_tile = min_tile
        # Section 5.3's tile alignment strategy: tiles aligned with
        # physical memory sectors so coalesced gathers never straddle;
        # exposed as a flag for the parameter ablation.
        self.tile_alignment = tile_alignment
        self.reorder_threshold_edges = reorder_threshold_edges
        self.reorder_seed = reorder_seed
        self._store: ResidentTileStore | None = None
        self._reorderer: SamplingReorderer | None = None
        self._decomp_memo: OrderedDict[
            tuple[str, bytes],
            tuple[TileDecomposition, np.ndarray, np.ndarray, int],
        ] = OrderedDict()
        self._edge_memo: OrderedDict[
            tuple[tuple[str, bytes], bytes], tuple[int, SectorAccounting]
        ] = OrderedDict()
        self.name = self._build_name()

    def _build_name(self) -> str:
        parts = ["sage"]
        if self.tiled_partitioning:
            parts.append("tp")
        if self.resident_stealing:
            parts.append("rts")
        if self.sampling_reorder:
            parts.append("sr")
        return "+".join(parts) if len(parts) > 1 else "sage-base"

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------

    def reset(self, graph: CSRGraph) -> None:
        self._decomp_memo.clear()
        self._edge_memo.clear()
        self._store = ResidentTileStore(graph) if self.resident_stealing else None
        if self.sampling_reorder:
            threshold = self.reorder_threshold_edges
            if threshold is None:
                threshold = graph.num_edges
            self._reorderer = SamplingReorderer(
                graph.num_nodes,
                self.spec,
                threshold_edges=threshold,
                seed=self.reorder_seed,
                metrics=self.metrics,
            )
        else:
            self._reorderer = None

    def kernel_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        if not self.tiled_partitioning:
            return self._thread_per_node_stats(frontier, degrees, edge_dst, app)
        return self._tiled_stats(frontier, degrees, edge_dst, graph, app)

    def post_level(self, graph: CSRGraph) -> ReorderCommit | None:
        if self._reorderer is None or not self._reorderer.ready:
            return None
        outcome = self._reorderer.compute_round()
        if outcome.is_identity:
            return None
        stats = self._reorderer.update_stats(graph.num_nodes, graph.num_edges)
        return ReorderCommit(perm=outcome.perm, update_stats=stats)

    def notify_reordered(self, perm: np.ndarray) -> None:
        # Stored tile records point at stale CSR offsets after the
        # representation update — drop them (Section 6's update step).
        if self._store is not None:
            self._store.invalidate_all()

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _decompose_cached(
        self, degrees: np.ndarray
    ) -> tuple[
        tuple[str, bytes], TileDecomposition, np.ndarray, np.ndarray, int
    ]:
        """Decomposition, segment starts, per-node tile counts and CSR
        gather sectors of one frontier, memoized on its degree signature.

        All four are pure functions of the degree array (block size, min
        tile and alignment are fixed per scheduler), so repeated frontier
        degree signatures — every iteration of a full-frontier app — hit
        the memo instead of recomputing.  Returns the memo key first so
        :meth:`_edge_accounting` can reuse it.
        """
        key = (degrees.dtype.str, degrees.tobytes())
        cached = self._decomp_memo.get(key)
        if cached is not None:
            self._decomp_memo.move_to_end(key)
            self.metrics.count("sage.decomp_cache_hits")
            return (key, *cached)
        decomp = decompose_frontier(degrees, self.spec.block_size, self.min_tile)
        cum_deg = np.cumsum(degrees) - degrees
        seg_starts = decomp.segment_starts(cum_deg)
        tiles_per_node = np.bincount(
            decomp.tile_frontier_idx, minlength=degrees.size
        ) + np.bincount(decomp.fragment_frontier_idx, minlength=degrees.size)
        seg_sizes = np.diff(np.append(seg_starts, int(degrees.sum())))
        csr_sectors = csr_gather_sectors(
            seg_sizes, self.spec, aligned=self.tile_alignment
        )
        self._decomp_memo[key] = (decomp, seg_starts, tiles_per_node, csr_sectors)
        if len(self._decomp_memo) > DECOMP_MEMO_ENTRIES:
            self._decomp_memo.popitem(last=False)
        return key, decomp, seg_starts, tiles_per_node, csr_sectors

    def _edge_accounting(
        self,
        degrees_key: tuple[str, bytes],
        edge_dst: np.ndarray,
        seg_starts: np.ndarray,
    ) -> tuple[int, SectorAccounting]:
        """Per-kernel sector accounting, memoized on the exact edge batch.

        The unscaled per-segment distinct-sector sum and the shared
        :class:`SectorAccounting` (kernel-wide distinct sectors and
        addresses, computed lazily) depend only on ``edge_dst`` and the
        segmentation — which the degree signature determines — so a
        full-frontier app re-presenting the identical expansion every
        iteration hits the memo.  Exact byte keys, not hashes: a
        collision would silently corrupt gated metrics.
        """
        key = (degrees_key, edge_dst.tobytes())
        cached = self._edge_memo.get(key)
        if cached is not None:
            self._edge_memo.move_to_end(key)
            self.metrics.count("sage.edge_accounting_cache_hits")
            return cached
        acct = SectorAccounting(edge_dst, self.spec.sector_width)
        per_segment = segmented_distinct_sectors(
            edge_dst, seg_starts, self.spec.sector_width, presorted=True
        )
        entry = (int(per_segment.sum()), acct)
        self._edge_memo[key] = entry
        if len(self._edge_memo) > DECOMP_MEMO_ENTRIES:
            self._edge_memo.popitem(last=False)
        return entry

    def _tiled_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        spec = self.spec
        degrees_key, decomp, seg_starts, tiles_per_node, csr_sectors = (
            self._decompose_cached(degrees)
        )
        if self.sanitizer is not None:
            # Audit the scheduled work units: tiles + fragments must
            # cover the expanded batch exactly (a decomposition gap
            # would silently drop or double-count edges in accounting).
            self.sanitizer.check_work_units(
                decomp.tile_sizes, decomp.fragment_sizes, edge_dst.size
            )
        raw_touches, acct = self._edge_accounting(degrees_key, edge_dst, seg_starts)
        touches, unique = value_sector_accounting(
            edge_dst, seg_starts, spec,
            presorted=True, access_factor=app.value_access_factor,
            accounting=acct, raw_touches=raw_touches,
        )

        active = int(edge_dst.size)
        issued = active  # power-of-two tiles are divergence-free
        num_blocks = max(1, -(-frontier.size // spec.block_size))
        warps_per_block = spec.block_size // spec.warp_size
        total_tiles = decomp.num_tiles + decomp.fragment_frontier_idx.size

        if self.resident_stealing:
            assert self._store is not None
            _, new_nodes, new_tiles = self._store.visit(frontier, tiles_per_node)
            # Scheduling decisions are resident: new nodes pay the tile
            # write; everything else is a cheap queue pop.
            overhead_work = (
                new_tiles * TILE_WRITE_CYCLES
                + total_tiles * TILE_CONSUME_CYCLES
                + decomp.fragment_frontier_idx.size * FRAGMENT_SETUP_CYCLES
            )
            self.metrics.count("sage.tiles", total_tiles)
            self.metrics.count("sage.tiles_expanded", new_tiles)
            self.metrics.count("sage.tiles_stolen_resident",
                               max(0, total_tiles - new_tiles))
            extra_bytes = float(new_tiles * TILE_RECORD_BYTES)
            placement = even_placement(issued, spec.num_sms)
            device_warp_cap = spec.num_sms * spec.max_resident_warps_per_sm
            concurrency = float(min(total_tiles, device_warp_cap))
        else:
            # Dynamic scheduling repeats every visit; tiles are consumed
            # sequentially inside their owner block (Figure 4a).
            overhead_work = (
                decomp.elections * ELECTION_CYCLES
                + decomp.num_tiles * TILE_ROUND_CYCLES
                + num_blocks * decomp.levels * PARTITION_CYCLES
                + decomp.fragment_frontier_idx.size * FRAGMENT_SETUP_CYCLES
            )
            self.metrics.count("sage.tiles", total_tiles)
            self.metrics.count("sage.elections", decomp.elections)
            extra_bytes = 0.0
            per_block = self._per_block_lane_cycles(degrees, spec.block_size)
            placement = block_placement(per_block, spec.num_sms)
            # A block works one tile at a time (Figure 4a), but that tile
            # spans the block's lanes, so the loads in flight match the
            # block's resident warps; RTS's edge is device-wide tiles.
            concurrency = float(num_blocks * warps_per_block)

        overhead_cycles = overhead_work / spec.num_sms
        if self._reorderer is not None:
            self._reorderer.observe(edge_dst, seg_starts)
            overhead_cycles += (
                self._reorderer.sampler.tile_sample_rate
                * total_tiles * SAMPLE_CYCLES / spec.num_sms
            )

        return KernelStats(
            active_edges=active,
            issued_lane_cycles=issued,
            per_sm_lane_cycles=placement,
            value_sector_touches=touches,
            value_sector_unique=unique,
            csr_sector_touches=csr_sectors,
            concurrency_warps=max(1.0, concurrency),
            overhead_cycles=overhead_cycles,
            extra_dram_bytes=extra_bytes,
            atomic_conflicts=atomic_conflicts_for(
                app, edge_dst, spec.sector_width, acct
            ),
            compute_scale=app.edge_compute_factor,
        )

    def _thread_per_node_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        app: App,
    ) -> KernelStats:
        """Ablation baseline: one thread per frontier node, no cooperation.

        A warp of 32 consecutive frontier nodes executes until its
        largest degree finishes — the textbook divergence failure mode on
        skewed graphs (Section 3.1).  Memory accesses are fully
        uncoalesced (each lane walks its own adjacency).
        """
        spec = self.spec
        active = int(edge_dst.size)
        acct = SectorAccounting(edge_dst, spec.sector_width)
        pad = (-degrees.size) % spec.warp_size
        padded = np.append(degrees, np.zeros(pad, dtype=degrees.dtype))
        per_warp_max = padded.reshape(-1, spec.warp_size).max(axis=1)
        issued = int((per_warp_max * spec.warp_size).sum())
        num_blocks = max(1, -(-frontier.size // spec.block_size))
        per_block = self._per_block_lane_cycles(
            np.repeat(per_warp_max, spec.warp_size)[:degrees.size]
            if degrees.size else degrees,
            spec.block_size,
        )
        touches = int(round(active * app.value_access_factor))
        unique = acct.unique_sectors if active else 0
        unique = min(touches, int(round(unique * app.value_access_factor)))
        return KernelStats(
            active_edges=active,
            issued_lane_cycles=max(issued, active),
            per_sm_lane_cycles=block_placement(per_block, spec.num_sms),
            value_sector_touches=touches,
            value_sector_unique=unique,
            csr_sector_touches=active,  # uncoalesced adjacency reads
            concurrency_warps=max(1.0, float(num_blocks
                                             * spec.block_size
                                             // spec.warp_size)),
            overhead_cycles=0.0,
            atomic_conflicts=atomic_conflicts_for(
                app, edge_dst, spec.sector_width, acct
            ),
            compute_scale=app.edge_compute_factor,
        )

    @staticmethod
    def _per_block_lane_cycles(
        degrees: np.ndarray, block_size: int
    ) -> np.ndarray:
        """Lane-cycles per owner block (contiguous frontier chunks)."""
        if degrees.size == 0:
            return np.zeros(1)
        pad = (-degrees.size) % block_size
        padded = np.append(
            np.asarray(degrees, dtype=np.float64), np.zeros(pad)
        )
        return padded.reshape(-1, block_size).sum(axis=1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_store(self) -> ResidentTileStore | None:
        """The resident tile store (None when RTS is disabled)."""
        return self._store

    @property
    def reorderer(self) -> SamplingReorderer | None:
        """The sampling reorderer (None when SR is disabled)."""
        return self._reorderer
