"""Tiled Partitioning (paper Section 5.1, Algorithm 2).

A frontier node's adjacency work is consumed by cooperative-group tiles
whose sizes shrink from the block size down to ``MIN_TILE_SIZE`` by
binary partition.  A node with ``n`` neighbors is consumed as:

* ``n // B`` tiles of size ``B`` (the whole block, elected leader),
* then one tile of size ``s`` for every set bit of ``n mod B`` at
  ``s = B/2, B/4, ..., MIN_TILE_SIZE``,
* plus a *fragment* of ``n mod MIN_TILE_SIZE`` edges handled by
  fine-grained scan-based gathering (paper line 32, after [30]).

This module computes that decomposition for a whole frontier at once,
fully vectorized, in frontier coordinates (tiles refer to positions in
the concatenated expanded edge array).  Both the SAGE engine and the
Resident Tile store are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

#: Default smallest cooperative tile (the paper's MIN_TILE_SIZE).
DEFAULT_MIN_TILE = 8


def tile_size_levels(block_size: int, min_tile: int) -> list[int]:
    """Descending powers of two from ``block_size`` to ``min_tile``."""
    if block_size < min_tile:
        raise InvalidParameterError("block_size must be >= min_tile")
    for value, label in ((block_size, "block_size"), (min_tile, "min_tile")):
        if value < 1 or value & (value - 1):
            raise InvalidParameterError(f"{label} must be a power of two")
    sizes = []
    s = block_size
    while s >= min_tile:
        sizes.append(s)
        s //= 2
    return sizes


@dataclass(frozen=True)
class TileDecomposition:
    """Tiles + fragments covering every expanded edge exactly once.

    All `*_frontier_idx` arrays index into the frontier that produced the
    decomposition; `*_local_offset` is the position within that node's
    adjacency list where the tile/fragment begins.
    """

    tile_frontier_idx: np.ndarray
    tile_sizes: np.ndarray
    tile_local_offsets: np.ndarray
    fragment_frontier_idx: np.ndarray
    fragment_sizes: np.ndarray
    fragment_local_offsets: np.ndarray
    elections: int
    levels: int
    block_size: int
    min_tile: int

    @property
    def num_tiles(self) -> int:
        return int(self.tile_sizes.size)

    @property
    def tiled_edges(self) -> int:
        return int(self.tile_sizes.sum())

    @property
    def fragment_edges(self) -> int:
        return int(self.fragment_sizes.sum())

    def segment_starts(self, cum_degrees: np.ndarray) -> np.ndarray:
        """Sorted start offsets of every tile and fragment.

        Args:
            cum_degrees: exclusive prefix sum of the frontier's degrees
                (``cum_degrees[i]`` = where node ``i``'s adjacency begins
                in the expanded edge array).

        Returns:
            Sorted int64 array of segment starts that partitions the
            expanded edge array into tile/fragment segments — the access
            batches whose distinct-sector counts the memory model needs.
        """
        tile_starts = cum_degrees[self.tile_frontier_idx] + self.tile_local_offsets
        frag_starts = (
            cum_degrees[self.fragment_frontier_idx] + self.fragment_local_offsets
        )
        starts = np.concatenate([tile_starts, frag_starts])
        starts.sort(kind="stable")
        return starts


def decompose_frontier(
    degrees: np.ndarray,
    block_size: int,
    min_tile: int = DEFAULT_MIN_TILE,
) -> TileDecomposition:
    """Run Tiled Partitioning over a frontier's degree array.

    Args:
        degrees: out-degree of each frontier node, in frontier order.
        block_size: threads per block (largest tile).
        min_tile: the paper's MIN_TILE_SIZE.

    Returns:
        The full :class:`TileDecomposition`.

    Election accounting follows Algorithm 2: one election per
    (node, tile-size level) at which the node has work — at the block
    level a node with ``k`` block-tiles still elects once and the tile
    then loops ``k`` rounds.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size and degrees.min() < 0:
        raise InvalidParameterError("degrees must be non-negative")
    sizes = tile_size_levels(block_size, min_tile)

    idx_chunks: list[np.ndarray] = []
    size_chunks: list[np.ndarray] = []
    offset_chunks: list[np.ndarray] = []
    elections = 0

    # The per-node quantities at every level (tile count, consumed
    # offset) are pure functions of the degree, so the level arithmetic
    # runs over the distinct-degree histogram and is gathered back per
    # node only for the expansion that produces output.
    all_idx = np.arange(degrees.size, dtype=np.int64)
    if degrees.size:
        hist = np.bincount(degrees)
        uniq = np.flatnonzero(hist)
        hist_u = hist[uniq]
        lookup = np.zeros(hist.size, dtype=np.int64)
        lookup[uniq] = np.arange(uniq.size, dtype=np.int64)
        inv = lookup[degrees]
    else:
        uniq = np.empty(0, dtype=np.int64)
        hist_u = np.empty(0, dtype=np.int64)
        inv = np.empty(0, dtype=np.int64)
    rem_u = uniq.copy()
    cons_u = np.zeros_like(uniq)
    for s in sizes:
        cnt_u = rem_u // s
        active_u = cnt_u > 0
        elections += int(hist_u[active_u].sum())
        if cnt_u[active_u].size and int((cnt_u * hist_u)[active_u].sum()):
            # node i contributes cnt[degree_i] tiles at offsets
            # consumed[degree_i], consumed[degree_i] + s, ...
            counts = cnt_u[inv]
            active = counts > 0
            reps = counts[active]
            nodes = np.repeat(all_idx[active], reps)
            base = np.repeat(cons_u[inv][active], reps)
            cum = np.repeat(np.cumsum(reps) - reps, reps)
            within = (np.arange(nodes.size, dtype=np.int64) - cum) * s
            idx_chunks.append(nodes)
            size_chunks.append(np.full(nodes.size, s, dtype=np.int64))
            offset_chunks.append(base + within)
        cons_u += cnt_u * s
        rem_u -= cnt_u * s

    frag_active = rem_u[inv] > 0 if degrees.size else np.zeros(0, dtype=bool)
    frag_idx = all_idx[frag_active]
    frag_sizes = rem_u[inv][frag_active]
    frag_offsets = cons_u[inv][frag_active]

    if idx_chunks:
        tile_idx = np.concatenate(idx_chunks)
        tile_sizes = np.concatenate(size_chunks)
        tile_offsets = np.concatenate(offset_chunks)
    else:
        tile_idx = np.empty(0, dtype=np.int64)
        tile_sizes = np.empty(0, dtype=np.int64)
        tile_offsets = np.empty(0, dtype=np.int64)

    return TileDecomposition(
        tile_frontier_idx=tile_idx,
        tile_sizes=tile_sizes,
        tile_local_offsets=tile_offsets,
        fragment_frontier_idx=frag_idx,
        fragment_sizes=frag_sizes,
        fragment_local_offsets=frag_offsets,
        elections=elections,
        levels=len(sizes),
        block_size=block_size,
        min_tile=min_tile,
    )


def decompose_frontier_reference(
    degrees: np.ndarray,
    block_size: int,
    min_tile: int = DEFAULT_MIN_TILE,
) -> TileDecomposition:
    """Pre-optimization per-node formulation of :func:`decompose_frontier`,
    kept as the equivalence-test reference."""
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size and degrees.min() < 0:
        raise InvalidParameterError("degrees must be non-negative")
    sizes = tile_size_levels(block_size, min_tile)

    idx_chunks: list[np.ndarray] = []
    size_chunks: list[np.ndarray] = []
    offset_chunks: list[np.ndarray] = []
    elections = 0

    remaining = degrees.copy()
    consumed = np.zeros_like(degrees)
    all_idx = np.arange(degrees.size, dtype=np.int64)
    for s in sizes:
        counts = remaining // s
        active = counts > 0
        elections += int(active.sum())
        n_active = int(counts[active].sum())
        if n_active:
            reps = counts[active]
            nodes = np.repeat(all_idx[active], reps)
            base = np.repeat(consumed[active], reps)
            cum = np.repeat(np.cumsum(reps) - reps, reps)
            within = (np.arange(nodes.size, dtype=np.int64) - cum) * s
            idx_chunks.append(nodes)
            size_chunks.append(np.full(nodes.size, s, dtype=np.int64))
            offset_chunks.append(base + within)
        consumed += counts * s
        remaining -= counts * s

    frag_active = remaining > 0

    if idx_chunks:
        tile_idx = np.concatenate(idx_chunks)
        tile_sizes = np.concatenate(size_chunks)
        tile_offsets = np.concatenate(offset_chunks)
    else:
        tile_idx = np.empty(0, dtype=np.int64)
        tile_sizes = np.empty(0, dtype=np.int64)
        tile_offsets = np.empty(0, dtype=np.int64)

    return TileDecomposition(
        tile_frontier_idx=tile_idx,
        tile_sizes=tile_sizes,
        tile_local_offsets=tile_offsets,
        fragment_frontier_idx=all_idx[frag_active],
        fragment_sizes=remaining[frag_active],
        fragment_local_offsets=consumed[frag_active],
        elections=elections,
        levels=len(sizes),
        block_size=block_size,
        min_tile=min_tile,
    )


def decompose_degree(
    degree: int, block_size: int, min_tile: int = DEFAULT_MIN_TILE
) -> list[tuple[int, int]]:
    """Decompose one degree into ``(offset, tile_size)`` pairs + fragment.

    Reference implementation used by tests; the fragment (if any) is the
    final pair with size < ``min_tile``.
    """
    out: list[tuple[int, int]] = []
    offset = 0
    remaining = int(degree)
    for s in tile_size_levels(block_size, min_tile):
        while remaining >= s:
            out.append((offset, s))
            offset += s
            remaining -= s
    if remaining:
        out.append((offset, remaining))
    return out
