"""SAGE: self-adaptive graph traversal (the paper's core contribution)."""

from repro.core.compressed import CompressedTraversalScheduler
from repro.core.engine import SageScheduler
from repro.core.frontier import FrontierQueue
from repro.core.hybrid import HybridConfig, HybridStats, direction_optimized_bfs
from repro.core.pipeline import RunResult, TraversalPipeline, run_app
from repro.core.reorder import RoundOutcome, SamplingReorderer
from repro.core.resident import ResidentTileStore
from repro.core.sampling import TileAccessSampler, exact_locality_counts
from repro.core.scheduler import ReorderCommit, Scheduler
from repro.core.tiling import (
    DEFAULT_MIN_TILE,
    TileDecomposition,
    decompose_degree,
    decompose_frontier,
    tile_size_levels,
)

__all__ = [
    "CompressedTraversalScheduler",
    "DEFAULT_MIN_TILE",
    "FrontierQueue",
    "HybridConfig",
    "HybridStats",
    "ReorderCommit",
    "ResidentTileStore",
    "RoundOutcome",
    "RunResult",
    "SageScheduler",
    "SamplingReorderer",
    "Scheduler",
    "TileAccessSampler",
    "TileDecomposition",
    "TraversalPipeline",
    "decompose_degree",
    "direction_optimized_bfs",
    "decompose_frontier",
    "exact_locality_counts",
    "run_app",
    "tile_size_levels",
]
