"""Scheduler abstraction shared by SAGE and every baseline.

A scheduler decides *how* the expanded edges of one iteration are mapped
onto GPU thread groups.  It never changes the traversal's semantics —
that is the application's job — it only reports the execution shape
(:class:`~repro.gpusim.cost.KernelStats`) the cost model scores.  This
mirrors the paper's setup: all compared approaches run the same
node-centric pipeline and differ in load reallocation, work stealing and
data layout.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.apps.base import App
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelStats
from repro.gpusim.memory import (
    coalesced_sectors,
    distinct_count,
    segmented_distinct_sectors,
)
from repro.gpusim.spec import GPUSpec
from repro.obs import NULL_REGISTRY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import Sanitizer

#: Fraction of duplicate-address atomic updates that serialize, for
#: atomic-aggregation apps (BC/PR, Section 7.2).
ATOMIC_CONFLICT_RATE = 0.004


@dataclass(frozen=True)
class ReorderCommit:
    """A permutation a self-adaptive scheduler wants applied.

    Attributes:
        perm: bijection, ``new_id = perm[old_id]``.
        update_stats: kernel stats charging the graph-representation
            update (the bb_segsort-style index replacement, Section 6).
    """

    perm: np.ndarray
    update_stats: KernelStats


class Scheduler(ABC):
    """Maps one iteration's expanded edges onto simulated hardware."""

    name: str = "scheduler"

    def __init__(self, spec: GPUSpec | None = None) -> None:
        self.spec = spec or GPUSpec()
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.sanitizer: "Sanitizer | None" = None

    def set_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Attach the run's observability registry (pipelines call this
        before :meth:`reset`; the default sink is the disabled registry,
        so scheduler instrumentation is unconditional and zero-cost)."""
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    def set_sanitizer(self, sanitizer: "Sanitizer | None") -> None:
        """Attach (or detach) the run's hazard sanitizer.  Schedulers
        with internal work-unit structure report it for auditing; the
        default None keeps the hot path branch-predictable and free."""
        self.sanitizer = sanitizer

    def reset(self, graph: CSRGraph) -> None:
        """Called once before a run; clears any per-run state."""

    @abstractmethod
    def kernel_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        """Score one expansion+filtering kernel.

        Args:
            frontier: active nodes of this iteration.
            degrees: their out-degrees (frontier order).
            edge_dst: concatenated neighbor ids, frontier order (each
                node's slice sorted ascending — the CSR invariant).
            graph: the current graph.
            app: the running application (atomicity, access factor).
        """

    def post_level(self, graph: CSRGraph) -> ReorderCommit | None:
        """Give self-adaptive schedulers a chance to commit a reordering."""
        return None

    def notify_reordered(self, perm: np.ndarray) -> None:
        """Called after the pipeline applies a :class:`ReorderCommit`."""


class SectorAccounting:
    """Lazily shared distinct-sector/address counts of one kernel batch.

    ``value_sector_accounting`` and ``atomic_conflicts_for`` both need the
    kernel-wide distinct count of ``edge_dst // sector_width`` (atomics
    additionally the distinct address count); a scheduler constructs one
    instance per kernel call and passes it to both so the sorted-sector
    computation runs once.
    """

    __slots__ = ("edge_dst", "sector_width", "_unique_sectors", "_unique_addresses")

    def __init__(self, edge_dst: np.ndarray, sector_width: int) -> None:
        self.edge_dst = edge_dst
        self.sector_width = int(sector_width)
        self._unique_sectors: int | None = None
        self._unique_addresses: int | None = None

    @property
    def unique_sectors(self) -> int:
        """Distinct count of ``edge_dst // sector_width``."""
        if self._unique_sectors is None:
            self._unique_sectors = (
                distinct_count(self.edge_dst // self.sector_width)
                if self.edge_dst.size
                else 0
            )
        return self._unique_sectors

    @property
    def unique_addresses(self) -> int:
        """Distinct count of ``edge_dst``."""
        if self._unique_addresses is None:
            self._unique_addresses = (
                distinct_count(self.edge_dst) if self.edge_dst.size else 0
            )
        return self._unique_addresses


def value_sector_accounting(
    edge_dst: np.ndarray,
    segment_starts: np.ndarray,
    spec: GPUSpec,
    *,
    presorted: bool,
    access_factor: float = 1.0,
    accounting: SectorAccounting | None = None,
    raw_touches: int | None = None,
) -> tuple[int, int]:
    """Scattered value-array transactions of one kernel.

    Each segment is one concurrent tile access; its cost is the number of
    distinct sectors among its neighbor ids (paper Section 6's objective).

    Args:
        accounting: shared per-kernel :class:`SectorAccounting`; pass the
            same instance to :func:`atomic_conflicts_for` to compute the
            kernel-wide sector set once.
        raw_touches: precomputed unscaled per-segment distinct-sector sum
            for this exact ``(edge_dst, segment_starts)`` pair (from a
            scheduler's kernel-accounting memo); skips the segmented
            count when provided.

    Returns:
        ``(touches, unique)`` — per-tile distinct sectors summed, and the
        kernel-wide distinct sector count, both scaled by the app's
        access factor (how many attribute arrays the filter touches).
    """
    if edge_dst.size == 0:
        return 0, 0
    if accounting is None:
        accounting = SectorAccounting(edge_dst, spec.sector_width)
    if raw_touches is None:
        per_segment = segmented_distinct_sectors(
            edge_dst, segment_starts, spec.sector_width, presorted=presorted
        )
        raw_touches = int(per_segment.sum())
    touches = int(round(raw_touches * access_factor))
    unique = min(touches, int(round(accounting.unique_sectors * access_factor)))
    return touches, unique


def csr_gather_sectors(
    segment_sizes: np.ndarray, spec: GPUSpec, *, aligned: bool
) -> int:
    """Coalesced CSR adjacency-read transactions for all segments."""
    if len(segment_sizes) == 0:
        return 0
    return int(coalesced_sectors(segment_sizes, spec.sector_width,
                                 aligned=aligned).sum())


def atomic_conflicts_for(
    app: App,
    edge_dst: np.ndarray,
    sector_width: int,
    accounting: SectorAccounting | None = None,
) -> float:
    """Serialized atomic collisions for atomic-aggregation filters.

    Conflicts come from concurrent updates to the *same address*
    (duplicate targets within the batch) and worsen when hot nodes share
    cache sectors (line ping-pong between SMs) — improved locality
    therefore *raises* this term, the paper's "double-edged sword"
    (Section 7.2), even though it lowers load traffic.
    """
    if not app.uses_atomics or edge_dst.size == 0:
        return 0.0
    if accounting is None:
        accounting = SectorAccounting(edge_dst, sector_width)
    unique_addresses = accounting.unique_addresses
    duplicates = int(edge_dst.size) - unique_addresses
    density = unique_addresses / max(1, accounting.unique_sectors * sector_width)
    return ATOMIC_CONFLICT_RATE * duplicates * (1.0 + min(1.0, density))


def warp_chunk_starts(total_edges: int, warp_size: int) -> np.ndarray:
    """Segment starts chopping ``total_edges`` into warp-sized chunks.

    Models scan-based gathering: consecutive expanded edges (ignoring
    node boundaries) are packed 32 to a warp.
    """
    if total_edges == 0:
        return np.zeros(0, dtype=np.int64)
    return np.arange(0, total_edges, warp_size, dtype=np.int64)
