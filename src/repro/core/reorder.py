"""Sampling-based Reordering (paper Section 6, Figure 5).

Finding the permutation that minimizes sector transactions is NP-hard
(Theorem 6.1, by reduction from minimum linear arrangement with binary
distancing), so SAGE iterates a lightweight three-stage heuristic round:

* **Stage 1** — measure each node's locality: sampled count of intra-tile
  co-members that share its memory sector.
* **Stage 2** — search a potentially better index per node by binary
  search over the id range, each step descending into the half containing
  more of the node's sampled co-members, until one sector remains.
* **Stage 3** — re-measure locality at the candidate index with the same
  samples; commit the move only if locality improves by more than the
  damping margin ``min_gain`` (moving every marginal node each round
  makes placements chase each other and stalls convergence; requiring a
  clear win lets the arrangement settle).

The expected-index array (moved nodes at their candidates, others at
their current ids) is stably sorted to a dense permutation and applied to
the CSR — the step the paper performs with bb_segsort on the GPU.

One *round* completes when the sampler has observed ``threshold`` edges
(the paper uses ``|E|``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampling import TileAccessSampler
from repro.errors import InvalidParameterError
from repro.gpusim.cost import KernelStats, even_placement
from repro.gpusim.spec import GPUSpec
from repro.obs import NULL_REGISTRY, MetricsRegistry


@dataclass(frozen=True)
class RoundOutcome:
    """Result of one reordering round."""

    perm: np.ndarray
    moved_nodes: int
    sampled_tiles: int
    sampled_pairs: int

    @property
    def is_identity(self) -> bool:
        return self.moved_nodes == 0


class SamplingReorderer:
    """Drives rounds of Sampling-based Reordering.

    Feed tile accesses via :meth:`observe`; when :attr:`ready`, call
    :meth:`compute_round` to run Stages 2-3 and obtain the permutation
    for this round.  The caller (the SAGE engine or a benchmark harness)
    applies the permutation to the graph and application state.
    """

    def __init__(
        self,
        num_nodes: int,
        spec: GPUSpec | None = None,
        *,
        threshold_edges: int | None = None,
        co_samples: int = 6,
        tile_sample_rate: float = 0.75,
        min_gain: int = 4,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_nodes < 1:
            raise InvalidParameterError("num_nodes must be >= 1")
        if min_gain < 0:
            raise InvalidParameterError("min_gain must be >= 0")
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.spec = spec or GPUSpec()
        self.num_nodes = num_nodes
        self.threshold_edges = threshold_edges
        self.min_gain = min_gain
        self.sampler = TileAccessSampler(
            num_nodes,
            self.spec.sector_width,
            co_samples=co_samples,
            tile_sample_rate=tile_sample_rate,
            seed=seed,
        )
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, edge_dst: np.ndarray, segment_starts: np.ndarray) -> None:
        """Sample one iteration's tile accesses (Stage-1 collection)."""
        self.sampler.observe(edge_dst, segment_starts)

    @property
    def ready(self) -> bool:
        """Whether enough accesses were observed to run a round."""
        if self.threshold_edges is None:
            return self.sampler.observed_edges > 0
        return self.sampler.observed_edges >= self.threshold_edges

    # ------------------------------------------------------------------
    # The three-stage round
    # ------------------------------------------------------------------

    def compute_round(self) -> RoundOutcome:
        """Run Stages 1-3 on the accumulated samples and finish the round.

        Returns the permutation (``new_id = perm[old_id]``); identity when
        no improving move was found.  Samples are cleared afterwards.
        """
        u, co = self.sampler.pairs()
        sampled_tiles = self.sampler.sampled_tiles
        n = self.num_nodes
        w = self.spec.sector_width
        if u.size == 0:
            self._finish_round()
            return RoundOutcome(
                np.arange(n, dtype=np.int64), 0, sampled_tiles, 0
            )

        # All three stages count per sampled node only, so they run over
        # compacted ids: ``nodes`` (the sorted distinct sampled nodes)
        # indexes every bincount of length ``nodes.size`` instead of
        # scatter-adds into |V|-sized arrays.
        nodes = np.unique(u)
        u_c = np.searchsorted(nodes, u)
        m = nodes.size

        # Stage 1: locality of the current index, from the same samples
        # Stage 3 will use (apples-to-apples comparison).
        current_sector_lo = (u // w) * w
        in_current = (co >= current_sector_lo) & (co < current_sector_lo + w)
        old_locality = np.bincount(u_c[in_current], minlength=m)

        # Stage 2: per-node binary search toward the majority half.
        candidate_lo = self._binary_search_sectors(u_c, co, m)

        # Stage 3: locality at the candidate sector, same samples.
        cand_lo_per_pair = candidate_lo[u_c]
        in_cand = (co >= cand_lo_per_pair) & (co < cand_lo_per_pair + w)
        new_locality = np.bincount(u_c[in_cand], minlength=m)

        # Commit rule: move only nodes whose locality improves by a
        # clear margin (damping, see module docstring).
        ids = np.arange(n, dtype=np.int64)
        improves = new_locality > old_locality + self.min_gain
        expected = ids.astype(np.float64)
        # Candidate index: middle of the target sector; the stable sort
        # below resolves collisions between movers and incumbents.
        expected[nodes[improves]] = candidate_lo[improves] + (w - 1) / 2.0
        order = np.argsort(expected, kind="stable")
        perm = np.empty(n, dtype=np.int64)
        perm[order] = ids

        moved = int(np.count_nonzero(perm != ids))
        pairs = int(u.size)
        self._finish_round()
        self.metrics.count("reorder.moved_nodes", moved)
        self.metrics.count("reorder.sampled_pairs", pairs)
        self.metrics.count("reorder.sampled_tiles", sampled_tiles)
        return RoundOutcome(perm, moved, sampled_tiles, pairs)

    def _binary_search_sectors(
        self, u_c: np.ndarray, co: np.ndarray, m: int
    ) -> np.ndarray:
        """Stage 2 for all sampled nodes simultaneously.

        Every node starts with the whole id range; each level counts its
        sampled co-members in the two halves and keeps the fuller one
        (ties keep the left half), until ranges shrink to one sector.
        ``u_c`` holds compacted pair owners (indices into the distinct
        sampled-node array of size ``m``); counting per level is one
        ``bincount`` of length ``m``, not a |V|-sized scatter-add.
        """
        n = self.num_nodes
        w = self.spec.sector_width
        lo = np.zeros(m, dtype=np.int64)
        hi = np.full(m, n, dtype=np.int64)
        while True:
            open_range = hi - lo > w
            if not open_range.any():
                break
            mid = (lo + hi) // 2
            pair_mid = mid[u_c]
            in_left = (co >= lo[u_c]) & (co < pair_mid)
            in_right = (co >= pair_mid) & (co < hi[u_c])
            left = np.bincount(u_c[in_left], minlength=m)
            right = np.bincount(u_c[in_right], minlength=m)
            go_right = open_range & (right > left)
            go_left = open_range & ~go_right
            lo[go_right] = mid[go_right]
            hi[go_left] = mid[go_left]
        return (lo // w) * w

    def _finish_round(self) -> None:
        self.sampler.reset()
        self.rounds_completed += 1
        self.metrics.count("reorder.rounds")

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def update_stats(self, num_nodes: int, num_edges: int) -> KernelStats:
        """Kernel stats charging the graph-representation update.

        Sorting the expected-index array and rewriting CSR is
        O(|V| + |E|) GPU work (bb_segsort + gather, Section 6); modeled
        as a balanced, divergence-free kernel moving both arrays.
        """
        work = num_nodes + num_edges
        spec = self.spec
        touches = -(-work // spec.sector_width) * 2  # read + write, coalesced
        return KernelStats(
            active_edges=work,
            issued_lane_cycles=work,
            per_sm_lane_cycles=even_placement(work, spec.num_sms),
            value_sector_touches=touches,
            value_sector_unique=touches,
            csr_sector_touches=0,
            concurrency_warps=spec.num_sms * spec.latency_hiding_warps,
            overhead_cycles=0.0,
        )
