"""Sampling-based Reordering (paper Section 6, Figure 5).

Finding the permutation that minimizes sector transactions is NP-hard
(Theorem 6.1, by reduction from minimum linear arrangement with binary
distancing), so SAGE iterates a lightweight three-stage heuristic round:

* **Stage 1** — measure each node's locality: sampled count of intra-tile
  co-members that share its memory sector.
* **Stage 2** — search a potentially better index per node by binary
  search over the id range, each step descending into the half containing
  more of the node's sampled co-members, until one sector remains.
* **Stage 3** — re-measure locality at the candidate index with the same
  samples; commit the move only if locality improves by more than the
  damping margin ``min_gain`` (moving every marginal node each round
  makes placements chase each other and stalls convergence; requiring a
  clear win lets the arrangement settle).

The expected-index array (moved nodes at their candidates, others at
their current ids) is stably sorted to a dense permutation and applied to
the CSR — the step the paper performs with bb_segsort on the GPU.

One *round* completes when the sampler has observed ``threshold`` edges
(the paper uses ``|E|``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampling import TileAccessSampler
from repro.errors import InvalidParameterError
from repro.gpusim.cost import KernelStats, even_placement
from repro.gpusim.spec import GPUSpec
from repro.obs import NULL_REGISTRY, MetricsRegistry


@dataclass(frozen=True)
class RoundOutcome:
    """Result of one reordering round."""

    perm: np.ndarray
    moved_nodes: int
    sampled_tiles: int
    sampled_pairs: int

    @property
    def is_identity(self) -> bool:
        return self.moved_nodes == 0


class SamplingReorderer:
    """Drives rounds of Sampling-based Reordering.

    Feed tile accesses via :meth:`observe`; when :attr:`ready`, call
    :meth:`compute_round` to run Stages 2-3 and obtain the permutation
    for this round.  The caller (the SAGE engine or a benchmark harness)
    applies the permutation to the graph and application state.
    """

    def __init__(
        self,
        num_nodes: int,
        spec: GPUSpec | None = None,
        *,
        threshold_edges: int | None = None,
        co_samples: int = 6,
        tile_sample_rate: float = 0.75,
        min_gain: int = 4,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_nodes < 1:
            raise InvalidParameterError("num_nodes must be >= 1")
        if min_gain < 0:
            raise InvalidParameterError("min_gain must be >= 0")
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.spec = spec or GPUSpec()
        self.num_nodes = num_nodes
        self.threshold_edges = threshold_edges
        self.min_gain = min_gain
        self.sampler = TileAccessSampler(
            num_nodes,
            self.spec.sector_width,
            co_samples=co_samples,
            tile_sample_rate=tile_sample_rate,
            seed=seed,
        )
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, edge_dst: np.ndarray, segment_starts: np.ndarray) -> None:
        """Sample one iteration's tile accesses (Stage-1 collection)."""
        self.sampler.observe(edge_dst, segment_starts)

    @property
    def ready(self) -> bool:
        """Whether enough accesses were observed to run a round."""
        if self.threshold_edges is None:
            return self.sampler.observed_edges > 0
        return self.sampler.observed_edges >= self.threshold_edges

    # ------------------------------------------------------------------
    # The three-stage round
    # ------------------------------------------------------------------

    def compute_round(self) -> RoundOutcome:
        """Run Stages 1-3 on the accumulated samples and finish the round.

        Returns the permutation (``new_id = perm[old_id]``); identity when
        no improving move was found.  Samples are cleared afterwards.
        """
        u, co = self.sampler.pairs()
        sampled_tiles = self.sampler.sampled_tiles
        n = self.num_nodes
        w = self.spec.sector_width
        if u.size == 0:
            self._finish_round()
            return RoundOutcome(
                np.arange(n, dtype=np.int64), 0, sampled_tiles, 0
            )

        # Stage 1: locality of the current index, from the same samples
        # Stage 3 will use (apples-to-apples comparison).
        current_sector_lo = (u // w) * w
        old_locality = np.zeros(n, dtype=np.int64)
        in_current = (co >= current_sector_lo) & (co < current_sector_lo + w)
        np.add.at(old_locality, u[in_current], 1)

        # Stage 2: per-node binary search toward the majority half.
        candidate_lo = self._binary_search_sectors(u, co)

        # Stage 3: locality at the candidate sector, same samples.
        new_locality = np.zeros(n, dtype=np.int64)
        cand_lo_per_pair = candidate_lo[u]
        in_cand = (co >= cand_lo_per_pair) & (co < cand_lo_per_pair + w)
        np.add.at(new_locality, u[in_cand], 1)

        # Commit rule: move only nodes whose locality improves by a
        # clear margin (damping, see module docstring).
        ids = np.arange(n, dtype=np.int64)
        improves = new_locality > old_locality + self.min_gain
        expected = ids.astype(np.float64)
        # Candidate index: middle of the target sector; the stable sort
        # below resolves collisions between movers and incumbents.
        expected[improves] = candidate_lo[improves] + (w - 1) / 2.0
        order = np.argsort(expected, kind="stable")
        perm = np.empty(n, dtype=np.int64)
        perm[order] = ids

        moved = int(np.count_nonzero(perm != ids))
        pairs = int(u.size)
        self._finish_round()
        self.metrics.count("reorder.moved_nodes", moved)
        self.metrics.count("reorder.sampled_pairs", pairs)
        self.metrics.count("reorder.sampled_tiles", sampled_tiles)
        return RoundOutcome(perm, moved, sampled_tiles, pairs)

    def _binary_search_sectors(
        self, u: np.ndarray, co: np.ndarray
    ) -> np.ndarray:
        """Stage 2 for all nodes simultaneously.

        Every node starts with the whole id range; each level counts its
        sampled co-members in the two halves and keeps the fuller one
        (ties keep the left half), until ranges shrink to one sector.
        Nodes without samples keep their own sector.
        """
        n = self.num_nodes
        w = self.spec.sector_width
        lo = np.zeros(n, dtype=np.int64)
        hi = np.full(n, n, dtype=np.int64)
        has_samples = np.zeros(n, dtype=bool)
        has_samples[u] = True
        while True:
            span = hi - lo
            open_range = span > w
            if not open_range.any():
                break
            mid = (lo + hi) // 2
            left = np.zeros(n, dtype=np.int64)
            right = np.zeros(n, dtype=np.int64)
            pair_lo = lo[u]
            pair_mid = mid[u]
            pair_hi = hi[u]
            in_left = (co >= pair_lo) & (co < pair_mid)
            in_right = (co >= pair_mid) & (co < pair_hi)
            np.add.at(left, u[in_left], 1)
            np.add.at(right, u[in_right], 1)
            go_right = open_range & (right > left)
            go_left = open_range & ~go_right
            lo[go_right] = mid[go_right]
            hi[go_left] = mid[go_left]
        sector_lo = (lo // w) * w
        own_sector = (np.arange(n, dtype=np.int64) // w) * w
        return np.where(has_samples, sector_lo, own_sector)

    def _finish_round(self) -> None:
        self.sampler.reset()
        self.rounds_completed += 1
        self.metrics.count("reorder.rounds")

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def update_stats(self, num_nodes: int, num_edges: int) -> KernelStats:
        """Kernel stats charging the graph-representation update.

        Sorting the expected-index array and rewriting CSR is
        O(|V| + |E|) GPU work (bb_segsort + gather, Section 6); modeled
        as a balanced, divergence-free kernel moving both arrays.
        """
        work = num_nodes + num_edges
        spec = self.spec
        touches = -(-work // spec.sector_width) * 2  # read + write, coalesced
        return KernelStats(
            active_edges=work,
            issued_lane_cycles=work,
            per_sm_lane_cycles=even_placement(work, spec.num_sms),
            value_sector_touches=touches,
            value_sector_unique=touches,
            csr_sector_touches=0,
            concurrency_warps=spec.num_sms * spec.latency_hiding_warps,
            overhead_cycles=0.0,
        )
