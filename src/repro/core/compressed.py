"""Traversal scheduling over compressed adjacency (see [41]).

Wraps any :class:`~repro.core.scheduler.Scheduler` so kernels account
for a :class:`~repro.graph.compressed.CompressedCSRGraph` image: CSR
gather traffic shrinks by the compression ratio, and every edge pays a
varint decode — the bandwidth-for-compute trade of the authors\'
compressed-graph traversal system (paper reference [41]).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import App
from repro.core.scheduler import Scheduler
from repro.graph.compressed import CompressedCSRGraph
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelStats

#: per-edge varint decode cost in lane-cycles (shift/mask/branch).
DECODE_CYCLES_PER_EDGE = 2.0


class CompressedTraversalScheduler(Scheduler):
    """Run any scheduler over the compressed adjacency image.

    CSR gather traffic shrinks by the compression ratio (fewer bytes per
    edge on the wire); every edge pays a varint decode in exchange.
    Value-array accesses are unaffected — node attributes stay
    uncompressed.
    """

    def __init__(self, inner: Scheduler, compressed: CompressedCSRGraph) -> None:
        super().__init__(inner.spec)
        self.inner = inner
        self.compressed = compressed
        self.name = f"{inner.name}+compressed"

    def reset(self, graph: CSRGraph) -> None:
        self.inner.reset(graph)

    def kernel_stats(
        self,
        frontier: np.ndarray,
        degrees: np.ndarray,
        edge_dst: np.ndarray,
        graph: CSRGraph,
        app: App,
    ) -> KernelStats:
        stats = self.inner.kernel_stats(frontier, degrees, edge_dst, graph,
                                        app)
        ratio = self.compressed.compression_ratio
        stats.csr_sector_touches = int(
            np.ceil(stats.csr_sector_touches / max(1.0, ratio))
        )
        stats.overhead_cycles += (
            stats.active_edges * DECODE_CYCLES_PER_EDGE
            / (self.spec.num_sms * self.spec.warp_size)
        )
        return stats

    def post_level(self, graph: CSRGraph):
        return self.inner.post_level(graph)

    def notify_reordered(self, perm: np.ndarray) -> None:
        self.inner.notify_reordered(perm)
