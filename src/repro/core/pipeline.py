"""The expansion-filtering-contraction pipeline (paper Figure 2).

:class:`TraversalPipeline` drives one application over one graph with one
scheduler on one simulated device:

1. **expansion** — gather the out-edges of every frontier node,
2. **filtering** — the application's vectorized filter over the batch,
3. **contraction** — the filtered neighbors become the next frontier.

The scheduler scores each iteration as a kernel; self-adaptive schedulers
may additionally commit a node reordering between iterations, which the
pipeline applies to the graph, the application state, the frontier and
(transparently) the traversal's source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.apps.base import App
from repro.core.frontier import FrontierQueue
from repro.core.scheduler import Scheduler
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.gpusim.cost import KernelTiming
from repro.gpusim.device import Device
from repro.gpusim.profiler import Profiler
from repro.gpusim.streams import KERNEL, TraceNode, kernel_occupancy
from repro.obs import NULL_REGISTRY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import Sanitizer


@dataclass
class RunResult:
    """Outcome of one application run.

    ``result`` arrays are expressed in the *original* node ids even when
    self-adaptive reordering relabeled the graph mid-run.
    """

    app_name: str
    scheduler_name: str
    seconds: float
    iterations: int
    edges_traversed: int
    result: dict[str, np.ndarray]
    profiler: Profiler
    reorder_commits: int = 0
    final_perm: np.ndarray | None = None
    extras: dict[str, float] = field(default_factory=dict)
    #: replayable device work (gpusim.streams.TraceNode), in issue order;
    #: dag_from_run recompiles it into an event DAG for pipelining.
    node_trace: list[TraceNode] = field(default_factory=list)

    @property
    def teps(self) -> float:
        """Traversed edges per second (the paper's headline metric)."""
        return self.edges_traversed / self.seconds if self.seconds > 0 else 0.0

    @property
    def gteps(self) -> float:
        """Billions of traversed edges per second (paper figures' unit)."""
        return self.teps / 1e9


class TraversalPipeline:
    """Runs apps over a graph with a given scheduler and device."""

    def __init__(
        self,
        graph: CSRGraph,
        scheduler: Scheduler,
        device: Device | None = None,
        *,
        max_iterations: int = 100_000,
        metrics: MetricsRegistry | None = None,
        sanitizer: "Sanitizer | None" = None,
    ) -> None:
        self.graph = graph
        self.scheduler = scheduler
        self.device = device or Device(scheduler.spec)
        self.max_iterations = max_iterations
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.sanitizer = sanitizer
        if sanitizer is not None:
            # Hook the device so every submitted kernel batch is audited
            # (timing is unaffected; the check never advances the clock).
            self.device.sanitizer = sanitizer

    def _timed_kernel(
        self, device: Device, stats, span_name: str, **attrs
    ) -> KernelTiming:
        """Run one kernel under a leaf span carrying its cost breakdown."""
        with self.metrics.span(span_name, **attrs) as sp:
            timing = device.run_kernel(stats)
            sp.set("cycles", timing.cycles)
            sp.set("compute_cycles", timing.compute_cycles)
            sp.set("memory_cycles", timing.memory_cycles)
            sp.set("overhead_cycles", timing.overhead_cycles)
            sp.set("launch_cycles", timing.launch_cycles)
            sp.set("dram_bytes", timing.dram_bytes)
        return timing

    def run(self, app: App, source: int | None = None) -> RunResult:
        """Execute ``app`` to convergence and return timing + results.

        The device clock is read differentially, so one pipeline/device
        pair can serve many runs while the profiler keeps accumulating.
        """
        graph = self.graph
        scheduler = self.scheduler
        device = self.device
        metrics = self.metrics
        sanitizer = self.sanitizer
        start_seconds = device.elapsed_seconds

        with metrics.span(
            "run", app=app.name, scheduler=scheduler.name,
        ) as run_span:
            app.setup(graph, source)
            scheduler.set_metrics(metrics)
            scheduler.set_sanitizer(sanitizer)
            scheduler.reset(graph)
            if sanitizer is not None:
                sanitizer.set_metrics(metrics)
                sanitizer.begin_run(graph, app)
            queue = FrontierQueue(app.initial_frontier())
            # total_perm maps original ids -> current ids across commits.
            total_perm: np.ndarray | None = None
            edges_traversed = 0
            iterations = 0
            commits = 0
            node_trace: list[TraceNode] = []

            while not queue.empty:
                if iterations >= self.max_iterations:
                    raise ConvergenceError(
                        f"{app.name} exceeded "
                        f"{self.max_iterations} iterations"
                    )
                frontier = queue.current
                with metrics.span(
                    "iteration", index=iterations,
                    frontier_size=int(frontier.size),
                ) as it_span:
                    edge_src, edge_dst, edge_pos = graph.expand_frontier(
                        frontier
                    )
                    degrees = (graph.offsets[frontier + 1]
                               - graph.offsets[frontier])
                    if sanitizer is not None:
                        sanitizer.check_level(
                            iterations, frontier, degrees, edge_dst,
                            edge_pos if app.needs_edge_positions else None,
                        )
                    stats = scheduler.kernel_stats(
                        frontier, degrees, edge_dst, graph, app
                    )
                    timing = self._timed_kernel(
                        device, stats, "kernel", kind="expand-filter",
                    )
                    node_trace.append(TraceNode(
                        KERNEL,
                        device.spec.cycles_to_seconds(timing.cycles),
                        occupancy=kernel_occupancy(timing),
                        iteration=iterations,
                    ))
                    it_span.set("active_edges", int(edge_dst.size))
                    it_span.set("kernel_cycles", timing.cycles)
                    edges_traversed += int(edge_dst.size)
                    next_frontier = app.process_level(
                        edge_src, edge_dst,
                        edge_pos if app.needs_edge_positions else None,
                    )
                    queue.publish_next(next_frontier)
                    queue.swap()
                    iterations += 1

                    commit = scheduler.post_level(graph)
                    if commit is not None:
                        if sanitizer is not None:
                            sanitizer.check_commit(
                                commit.perm, graph.num_nodes
                            )
                        update = self._timed_kernel(
                            device, commit.update_stats,
                            "kernel", kind="reorder-update",
                        )
                        node_trace.append(TraceNode(
                            KERNEL,
                            device.spec.cycles_to_seconds(update.cycles),
                            occupancy=kernel_occupancy(update),
                            iteration=iterations - 1,
                        ))
                        it_span.set("reorder_cycles", update.cycles)
                        graph = graph.permute(commit.perm)
                        app.graph = graph
                        app.remap_nodes(commit.perm)
                        queue.remap(commit.perm)
                        scheduler.notify_reordered(commit.perm)
                        if sanitizer is not None:
                            sanitizer.notify_reordered(commit.perm)
                        total_perm = (
                            commit.perm if total_perm is None
                            else commit.perm[total_perm]
                        )
                        commits += 1
                        metrics.count("pipeline.reorder_commits")

            run_span.set("iterations", iterations)
            run_span.set("edges_traversed", edges_traversed)
            run_span.set(
                "simulated_seconds", device.elapsed_seconds - start_seconds
            )
            metrics.count("pipeline.runs")
            metrics.count("pipeline.iterations", iterations)
            metrics.count("pipeline.edges_traversed", edges_traversed)
            metrics.fold_profiler(device.profiler)
            if sanitizer is not None:
                sanitizer.end_run()

        self.graph = graph
        results = app.result()
        if total_perm is not None:
            # Express outputs in original ids: original node i now lives
            # at index total_perm[i].  Node-indexed data may live in the
            # last axis of higher-rank arrays (e.g. multi-source level
            # matrices), so remap that axis whenever it spans the nodes.
            n = graph.num_nodes
            remapped = {}
            for key, val in results.items():
                arr = np.asarray(val)
                if arr.ndim >= 1 and arr.shape[-1] == n:
                    remapped[key] = arr[..., total_perm]
                else:
                    remapped[key] = arr
            results = remapped
        return RunResult(
            app_name=app.name,
            scheduler_name=scheduler.name,
            seconds=device.elapsed_seconds - start_seconds,
            iterations=iterations,
            edges_traversed=edges_traversed,
            result=results,
            profiler=device.profiler,
            reorder_commits=commits,
            final_perm=total_perm,
            node_trace=node_trace,
        )


def run_app(
    graph: CSRGraph,
    app: App,
    scheduler: Scheduler,
    source: int | None = None,
    *,
    device: Device | None = None,
    metrics: MetricsRegistry | None = None,
    sanitizer: "Sanitizer | None" = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`TraversalPipeline`.

    The ``sanitizer=`` spelling is deprecated: use
    ``repro.api.run(..., checks=...)``, which wires the sanitizer and
    returns its report alongside the result.
    """
    if sanitizer is not None:
        from repro.deprecation import warn_once

        warn_once(
            "run_app.sanitizer",
            "run_app(..., sanitizer=...) is deprecated; use "
            "repro.api.run(..., checks=...) instead",
        )
    pipeline = TraversalPipeline(
        graph, scheduler, device, metrics=metrics, sanitizer=sanitizer
    )
    return pipeline.run(app, source)
