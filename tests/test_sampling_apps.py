"""Statistical oracles and determinism pins for ``repro.apps.sampling``.

Three layers of guarantees:

* **bit-level** — counter-based RNG makes every walk/sample a pure
  function of ``(seed, source, stream, step)``: reruns, batched runs and
  the ``api.run`` pipeline path must agree exactly.
* **distribution-level** — empirical frequencies at pinned seeds match
  the *exact* transition laws: chi-square/TV for node2vec p/q weighting
  against :func:`node2vec_transition_probabilities`, TV for sampled PPR
  against the exact power-iteration :class:`PersonalizedPageRankApp`.
* **hygiene** — the SAGE003 determinism lint stays clean and an AST
  drift test pins that every random draw in the package flows through
  the :mod:`repro.apps.sampling.rng` helpers (no ``numpy.random`` at
  all), so a future "quick fix" can't silently reintroduce stateful RNG.
"""

from __future__ import annotations

import ast
import json
import pathlib

import numpy as np
import pytest
from scipy import stats

from repro import api
from repro.analysis.lint import lint_paths
from repro.apps.ppr import PersonalizedPageRankApp
from repro.apps.sampling import (
    BiasedRandomWalkApp,
    KHopSampleApp,
    Node2VecWalkApp,
    SampledPPRApp,
    node2vec_transition_probabilities,
    rng,
)
from repro.apps.sssp import synthetic_weights
from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.graph.csr import CSRGraph

pytestmark = pytest.mark.sampling

ROOT = pathlib.Path(__file__).resolve().parent.parent
PKG = ROOT / "src" / "repro" / "apps" / "sampling"


def drive(graph, app, source=None):
    """Run an app's level loop directly (sampling apps read the CSR)."""
    app.setup(graph, source)
    frontier = app.initial_frontier()
    iterations = 0
    while frontier.size:
        frontier = app.process_level(None, None)
        iterations += 1
        assert iterations < 10_000, "sampling app failed to terminate"
    return app.result()


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return generators.rmat(7, edge_factor=8, seed=11)


@pytest.fixture(scope="module")
def hub(graph) -> int:
    return int(np.argmax(graph.out_degrees()))


class TestCounterRng:
    def test_draws_are_pure_functions_of_coordinates(self):
        a = rng.uniform(7, 3, 0)
        b = rng.uniform(7, 3, 0)
        assert float(a) == float(b)
        assert float(rng.uniform(7, 3, 1)) != float(a)
        assert float(rng.uniform(8, 3, 0)) != float(a)

    def test_derive_broadcasts_per_stream(self):
        sources = np.array([0, 0, 5, 5], dtype=np.int64)
        indices = np.array([0, 1, 0, 1], dtype=np.int64)
        keys = rng.derive(7, sources, indices)
        assert keys.shape == (4,)
        assert np.unique(keys).size == 4
        for i in range(4):
            single = rng.derive(7, int(sources[i]), int(indices[i]))
            assert int(keys[i]) == int(single)

    def test_keys_collision_free_at_scale(self):
        keys = rng.derive(0, np.arange(50_000, dtype=np.int64))
        assert np.unique(keys).size == keys.size

    def test_uniforms_are_uniform(self):
        u = rng.uniform(123, np.arange(40_000, dtype=np.int64))
        assert float(u.min()) >= 0.0 and float(u.max()) < 1.0
        # mean of 40k U(0,1) draws: sigma = 1/sqrt(12 N) ~ 0.00144
        assert abs(float(u.mean()) - 0.5) < 5 * (1.0 / np.sqrt(12 * u.size))
        observed, _ = np.histogram(u, bins=16, range=(0.0, 1.0))
        chi = stats.chisquare(observed)
        assert chi.pvalue > 1e-4, chi

    def test_choose_index_stays_in_range(self):
        u = rng.uniform(5, np.arange(10_000, dtype=np.int64))
        counts = (rng.derive(9, np.arange(10_000)) % np.uint64(7)).astype(
            np.int64
        ) + 1
        idx = rng.choose_index(u, counts)
        assert idx.min() >= 0
        assert (idx < counts).all()

    def test_wraparound_emits_no_warnings(self):
        with np.errstate(over="raise"):
            rng.mix64(np.uint64(2**64 - 1))
            rng.derive(2**63, np.array([2**62], dtype=np.int64))


class TestBiasedRandomWalks:
    def test_trace_shape_and_source_column(self, graph, hub):
        res = drive(graph, BiasedRandomWalkApp(
            num_walks=6, walk_length=5, seed=7), hub)
        walks = res["walks"]
        assert walks.shape == (6, 6)
        assert walks.dtype == np.int64
        assert (walks[:, 0] == hub).all()

    def test_every_hop_is_an_edge(self, graph, hub):
        walks = drive(graph, BiasedRandomWalkApp(
            num_walks=16, walk_length=8, seed=3), hub)["walks"]
        for row in walks:
            for a, b in zip(row, row[1:]):
                if b < 0:
                    break
                assert graph.has_edge(int(a), int(b)), (a, b)

    def test_dead_walks_stay_dead(self, graph, hub):
        walks = drive(graph, BiasedRandomWalkApp(
            num_walks=32, walk_length=8, seed=5), hub)["walks"]
        for row in walks:
            padding = row < 0
            if padding.any():
                first = int(np.argmax(padding))
                assert (row[first:] < 0).all()
                # a walk only dies at a dangling node
                assert graph.out_degrees()[row[first - 1]] == 0

    def test_reruns_are_bit_identical(self, graph, hub):
        a = drive(graph, BiasedRandomWalkApp(seed=11), hub)["walks"]
        b = drive(graph, BiasedRandomWalkApp(seed=11), hub)["walks"]
        assert np.array_equal(a, b)

    def test_seeds_give_different_walks(self, graph, hub):
        a = drive(graph, BiasedRandomWalkApp(seed=0), hub)["walks"]
        b = drive(graph, BiasedRandomWalkApp(seed=1), hub)["walks"]
        assert not np.array_equal(a, b)

    def test_batched_run_equals_single_runs_bitwise(self, graph, hub):
        sources = np.array(sorted({hub, 3, 17, 64}), dtype=np.int64)
        batched = drive(graph, BiasedRandomWalkApp(
            num_walks=4, walk_length=8, seed=7, sources=sources))["walks"]
        for g, src in enumerate(sources.tolist()):
            single = drive(graph, BiasedRandomWalkApp(
                num_walks=4, walk_length=8, seed=7), src)["walks"]
            assert np.array_equal(batched[g * 4:(g + 1) * 4], single), src

    def test_api_run_path_matches_direct_drive(self, graph, hub):
        via_api = api.run(graph, BiasedRandomWalkApp(seed=7), source=hub)
        direct = drive(graph, BiasedRandomWalkApp(seed=7), hub)
        assert np.array_equal(via_api.values["walks"], direct["walks"])

    def test_weighted_first_hop_follows_edge_weights(self, graph, hub):
        """Empirical first-hop frequencies match the synthetic-weight
        distribution of the hub's adjacency (pinned seed, TV + χ²)."""
        num = 4000
        walks = drive(graph, BiasedRandomWalkApp(
            num_walks=num, walk_length=1, seed=13, weighted=True),
            hub)["walks"]
        neighbors = graph.neighbors(hub)
        start, end = int(graph.offsets[hub]), int(graph.offsets[hub + 1])
        weights = synthetic_weights(graph)[start:end].astype(np.float64)
        expected = weights / weights.sum()
        counts = np.array([
            int((walks[:, 1] == v).sum()) for v in neighbors
        ], dtype=np.float64)
        assert counts.sum() == num  # hub has out-degree >= 1, none die
        tv = 0.5 * np.abs(counts / num - expected).sum()
        assert tv < 0.05, tv
        chi = stats.chisquare(counts, expected * num)
        assert chi.pvalue > 1e-4, chi

    def test_rejects_bad_parameters(self, graph):
        with pytest.raises(InvalidParameterError):
            BiasedRandomWalkApp(num_walks=0)
        with pytest.raises(InvalidParameterError):
            BiasedRandomWalkApp(walk_length=0)
        with pytest.raises(InvalidParameterError):
            drive(graph, BiasedRandomWalkApp())  # no source
        with pytest.raises(InvalidParameterError):
            drive(graph, BiasedRandomWalkApp(), graph.num_nodes)


def n2v_fixture_graph() -> CSRGraph:
    """0→{1,2}, 1→{0,2,3}, 2→{0,1}, 3→{1}: from (prev=0, cur=1) the
    neighbor classes are return (0), distance-1 (2) and outward (3)."""
    src = np.array([0, 0, 1, 1, 1, 2, 2, 3], dtype=np.int64)
    dst = np.array([1, 2, 0, 2, 3, 0, 1, 1], dtype=np.int64)
    return CSRGraph.from_edges(4, src, dst)


class TestNode2Vec:
    P, Q = 4.0, 0.25

    def test_oracle_distribution_exercises_all_factor_classes(self):
        graph = n2v_fixture_graph()
        neighbors, probs = node2vec_transition_probabilities(
            graph, prev=0, cur=1, p=self.P, q=self.Q)
        assert neighbors.tolist() == [0, 2, 3]
        factors = np.array([1.0 / self.P, 1.0, 1.0 / self.Q])
        assert np.allclose(probs, factors / factors.sum())
        assert probs[2] > probs[1] > probs[0]  # q<1 favors outward

    def test_empirical_transitions_match_oracle(self):
        """χ²/TV of second-hop frequencies vs the exact p/q law,
        conditioned on the first hop, at a pinned seed."""
        graph = n2v_fixture_graph()
        num = 6000
        walks = drive(graph, Node2VecWalkApp(
            num_walks=num, walk_length=2, seed=29,
            p=self.P, q=self.Q), 0)["walks"]
        via_one = walks[walks[:, 1] == 1]
        assert via_one.shape[0] > num // 3  # ~half take the 0→1 hop
        neighbors, probs = node2vec_transition_probabilities(
            graph, prev=0, cur=1, p=self.P, q=self.Q)
        counts = np.array([
            int((via_one[:, 2] == v).sum()) for v in neighbors
        ], dtype=np.float64)
        assert counts.sum() == via_one.shape[0]
        empirical = counts / counts.sum()
        tv = 0.5 * np.abs(empirical - probs).sum()
        assert tv < 0.03, (empirical, probs)
        chi = stats.chisquare(counts, probs * counts.sum())
        assert chi.pvalue > 1e-4, chi

    def test_first_hop_is_first_order(self):
        """Step 0 has no prev: both first hops of 0 are ~equally likely
        even with extreme p/q."""
        graph = n2v_fixture_graph()
        walks = drive(graph, Node2VecWalkApp(
            num_walks=4000, walk_length=1, seed=31,
            p=100.0, q=0.01), 0)["walks"]
        share = float((walks[:, 1] == 1).mean())
        assert 0.45 < share < 0.55, share

    def test_batched_run_equals_single_runs_bitwise(self, graph, hub):
        sources = np.array(sorted({hub, 5, 40}), dtype=np.int64)
        batched = drive(graph, Node2VecWalkApp(
            num_walks=4, walk_length=6, seed=7, p=2.0, q=0.5,
            sources=sources))["walks"]
        for g, src in enumerate(sources.tolist()):
            single = drive(graph, Node2VecWalkApp(
                num_walks=4, walk_length=6, seed=7, p=2.0, q=0.5),
                src)["walks"]
            assert np.array_equal(batched[g * 4:(g + 1) * 4], single), src

    def test_rejects_nonpositive_pq(self):
        with pytest.raises(InvalidParameterError):
            Node2VecWalkApp(p=0.0)
        with pytest.raises(InvalidParameterError):
            Node2VecWalkApp(q=-1.0)


class TestSampledPPR:
    #: documented error budget of the statistical-oracle comparison:
    #: the Monte Carlo TV error is O(1/sqrt(num_walks)) plus a
    #: deterministic truncation tail of ~damping**max_steps (~0.6%).
    TV_BOUND = 0.08

    def test_estimates_form_a_distribution(self, graph, hub):
        est = drive(graph, SampledPPRApp(num_walks=512, seed=7), hub)["sppr"]
        assert est.shape == (graph.num_nodes,)
        assert est.min() >= 0.0
        assert np.isclose(est.sum(), 1.0)

    def test_tv_distance_to_exact_ppr_within_bound(self, graph, hub):
        est = drive(graph, SampledPPRApp(
            num_walks=8192, max_steps=32, seed=7), hub)["sppr"]
        exact = drive_exact_ppr(graph, hub)
        tv = 0.5 * np.abs(est - exact).sum()
        assert tv < self.TV_BOUND, tv
        # same top node — the walk mass concentrates where PPR does
        assert int(est.argmax()) == int(exact.argmax())

    def test_more_walks_means_tighter_estimates(self, graph, hub):
        exact = drive_exact_ppr(graph, hub)
        tv = {}
        for num_walks in (128, 8192):
            est = drive(graph, SampledPPRApp(
                num_walks=num_walks, seed=7), hub)["sppr"]
            tv[num_walks] = 0.5 * np.abs(est - exact).sum()
        assert tv[8192] < tv[128]

    def test_truncation_is_deterministic(self, graph, hub):
        a = drive(graph, SampledPPRApp(
            num_walks=64, max_steps=3, seed=5), hub)["sppr"]
        b = drive(graph, SampledPPRApp(
            num_walks=64, max_steps=3, seed=5), hub)["sppr"]
        assert np.array_equal(a, b)
        assert np.isclose(a.sum(), 1.0)  # truncated walks still land

    def test_batched_run_equals_single_runs_bitwise(self, graph, hub):
        sources = np.array(sorted({hub, 9, 77}), dtype=np.int64)
        batched = drive(graph, SampledPPRApp(
            num_walks=128, seed=7, sources=sources))["sppr"]
        assert batched.shape == (3, graph.num_nodes)
        for g, src in enumerate(sources.tolist()):
            single = drive(graph, SampledPPRApp(
                num_walks=128, seed=7), src)["sppr"]
            assert np.array_equal(batched[g], single), src

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            SampledPPRApp(num_walks=0)
        with pytest.raises(InvalidParameterError):
            SampledPPRApp(damping=1.0)
        with pytest.raises(InvalidParameterError):
            SampledPPRApp(max_steps=0)


def drive_exact_ppr(graph: CSRGraph, source: int) -> np.ndarray:
    app = PersonalizedPageRankApp(max_iterations=500, tolerance=1e-12)
    app.setup(graph, source)
    frontier = app.initial_frontier()
    while frontier.size:
        coo = graph.to_coo()
        frontier = app.process_level(coo.src, coo.dst)
    return app.result()["ppr"]


class TestKHopSampling:
    def test_layer_structure_and_validity(self, graph, hub):
        fanouts = (4, 3)
        res = drive(graph, KHopSampleApp(fanouts=fanouts, seed=7), hub)
        nodes, offsets = res["nodes"], res["offsets"]
        assert offsets.shape == (len(fanouts) + 2,)
        assert offsets[0] == 0 and offsets[1] == 1
        assert int(nodes[0]) == hub
        assert offsets[-1] == nodes.size
        degrees = graph.out_degrees()
        for layer, fanout in enumerate(fanouts):
            parents = nodes[offsets[layer]:offsets[layer + 1]]
            children = nodes[offsets[layer + 1]:offsets[layer + 2]]
            # each non-dangling parent contributes exactly `fanout`
            # children, in parent order
            cursor = 0
            for parent in parents.tolist():
                if degrees[parent] == 0:
                    continue
                chunk = children[cursor:cursor + fanout]
                assert chunk.size == fanout
                adj = graph.neighbors(int(parent))
                assert np.isin(chunk, adj).all(), (parent, chunk)
                cursor += fanout
            assert cursor == children.size

    def test_reruns_are_bit_identical(self, graph, hub):
        a = drive(graph, KHopSampleApp(fanouts=(3, 2), seed=9), hub)
        b = drive(graph, KHopSampleApp(fanouts=(3, 2), seed=9), hub)
        assert np.array_equal(a["nodes"], b["nodes"])
        assert np.array_equal(a["offsets"], b["offsets"])

    def test_batched_run_equals_single_runs_bitwise(self, graph, hub):
        sources = np.array(sorted({hub, 2, 33, 90}), dtype=np.int64)
        batched = drive(graph, KHopSampleApp(
            fanouts=(4, 3), seed=7, sources=sources))
        group_offsets = batched["group_offsets"]
        assert group_offsets.shape == (sources.size + 1,)
        for g, src in enumerate(sources.tolist()):
            single = drive(graph, KHopSampleApp(fanouts=(4, 3), seed=7), src)
            lo, hi = int(group_offsets[g]), int(group_offsets[g + 1])
            assert np.array_equal(batched["nodes"][lo:hi], single["nodes"])
            assert np.array_equal(batched["offsets"][g], single["offsets"])

    def test_dangling_seed_samples_nothing(self):
        # node 1 is a sink: its sample is just the seed itself
        g = CSRGraph.from_edges(
            2, np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
        )
        res = drive(g, KHopSampleApp(fanouts=(2, 2), seed=0), 1)
        assert res["nodes"].tolist() == [1]
        assert res["offsets"].tolist() == [0, 1, 1, 1]

    def test_rejects_bad_fanouts(self):
        with pytest.raises(InvalidParameterError):
            KHopSampleApp(fanouts=())
        with pytest.raises(InvalidParameterError):
            KHopSampleApp(fanouts=(2, 0))


class TestRemapMidRun:
    """The scheduler-commit hook: relabel the CSR mid-run, keep results
    expressed in original node ids (exactly what the pipeline does after
    a reorder commit)."""

    def permuted(self, graph, seed=5):
        perm = np.random.default_rng(seed).permutation(graph.num_nodes)
        return perm, graph.permute(perm)

    def test_walk_traces_stay_in_original_ids(self, graph, hub):
        app = BiasedRandomWalkApp(num_walks=8, walk_length=8, seed=7)
        app.setup(graph, hub)
        frontier = app.initial_frontier()
        for _ in range(3):
            frontier = app.process_level(None, None)
        perm, relabeled = self.permuted(graph)
        app.graph = relabeled
        app.remap_nodes(perm)
        while frontier.size:
            frontier = app.process_level(None, None)
        walks = app.result()["walks"]
        # every recorded hop is an edge of the ORIGINAL graph
        for row in walks:
            for a, b in zip(row, row[1:]):
                if b < 0:
                    break
                assert graph.has_edge(int(a), int(b)), (a, b)

    def test_khop_nodes_stay_in_original_ids(self, graph, hub):
        app = KHopSampleApp(fanouts=(4, 3, 2), seed=7)
        app.setup(graph, hub)
        frontier = app.initial_frontier()
        frontier = app.process_level(None, None)
        perm, relabeled = self.permuted(graph)
        app.graph = relabeled
        app.remap_nodes(perm)
        while frontier.size:
            frontier = app.process_level(None, None)
        res = app.result()
        nodes, offsets = res["nodes"], res["offsets"]
        assert int(nodes[0]) == hub
        # layer-1 nodes must be original-id neighbors of the source
        layer1 = nodes[offsets[1]:offsets[2]]
        assert np.isin(layer1, graph.neighbors(hub)).all()
        assert nodes.max() < graph.num_nodes and nodes.min() >= 0

    def test_sppr_counts_follow_the_current_labeling(self, graph, hub):
        app = SampledPPRApp(num_walks=256, seed=7)
        app.setup(graph, hub)
        frontier = app.initial_frontier()
        for _ in range(2):
            frontier = app.process_level(None, None)
        perm, relabeled = self.permuted(graph)
        app.graph = relabeled
        app.remap_nodes(perm)
        while frontier.size:
            frontier = app.process_level(None, None)
        est = app.result()["sppr"]
        # counts live in the *current* labeling; the pipeline's final
        # total_perm remap converts them — emulate it here
        original = est[perm]
        assert np.isclose(original.sum(), 1.0)
        # mass concentrates near the source in original ids
        assert original[hub] > 0.1

    def test_double_remap_composes(self, graph, hub):
        app = BiasedRandomWalkApp(num_walks=4, walk_length=6, seed=3)
        app.setup(graph, hub)
        frontier = app.initial_frontier()
        frontier = app.process_level(None, None)
        current = graph
        for seed in (5, 6):
            perm, current = self.permuted(current, seed=seed)
            app.graph = current
            app.remap_nodes(perm)
            frontier = app.process_level(None, None)
        while frontier.size:
            frontier = app.process_level(None, None)
        walks = app.result()["walks"]
        for row in walks:
            for a, b in zip(row, row[1:]):
                if b < 0:
                    break
                assert graph.has_edge(int(a), int(b)), (a, b)


class TestDeterminismHygiene:
    """SAGE003 + AST drift: all randomness flows through the rng module."""

    def test_sage003_lint_is_clean_on_the_package(self):
        violations = [
            v for v in lint_paths([PKG], ROOT) if v.rule == "SAGE003"
        ]
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_lint_baseline_carries_no_waivers(self):
        baseline = json.loads(
            (ROOT / "lint_baseline.json").read_text(encoding="utf-8")
        )
        assert baseline["rules"] == {}

    def test_no_stateful_rng_constructions_anywhere_in_package(self):
        """No ``numpy.random`` attribute, no ``default_rng``, no stdlib
        ``random`` import in any module of the package."""
        for path in sorted(PKG.glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Attribute):
                    assert node.attr != "random", f"{path.name}: np.random"
                if isinstance(node, ast.Call):
                    callee = node.func
                    name = (
                        callee.attr if isinstance(callee, ast.Attribute)
                        else callee.id if isinstance(callee, ast.Name)
                        else ""
                    )
                    assert name != "default_rng", path.name
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    modules = (
                        [a.name for a in node.names]
                        if isinstance(node, ast.Import)
                        else [node.module or ""]
                    )
                    assert "random" not in modules, path.name

    def test_every_app_module_draws_through_the_rng_helpers(self):
        """Each sampling app module imports the package rng module and
        only calls its ``derive``/``uniform``/``choose_index`` helpers
        for randomness — the drift test for the derived-seed scheme."""
        helper_names = {"derive", "uniform", "choose_index", "mix64"}
        for module in ("walks", "khop", "sppr"):
            tree = ast.parse(
                (PKG / f"{module}.py").read_text(encoding="utf-8")
            )
            imported_rng = any(
                isinstance(node, ast.ImportFrom)
                and node.module == "repro.apps.sampling"
                and any(alias.name == "rng" for alias in node.names)
                for node in ast.walk(tree)
            )
            assert imported_rng, f"{module}.py must import the rng module"
            rng_calls = [
                node.func.attr
                for node in ast.walk(tree)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "rng"
            ]
            assert rng_calls, f"{module}.py never draws through rng"
            assert set(rng_calls) <= helper_names, rng_calls

    def test_rng_module_holds_no_mutable_state(self):
        """Module-level names in rng.py are constants and functions —
        nothing a draw could mutate."""
        tree = ast.parse((PKG / "rng.py").read_text(encoding="utf-8"))
        for node in tree.body:
            assert isinstance(node, (
                ast.Import, ast.ImportFrom, ast.FunctionDef, ast.Expr,
                ast.Assign, ast.AnnAssign,
            ))
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    assert isinstance(target, ast.Name)
                    assert (
                        target.id.isupper() or target.id.lstrip("_").isupper()
                    ), f"rng.py module state {target.id!r}"
