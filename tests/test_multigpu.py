"""Tests for partitioning and the multi-GPU runner."""

import numpy as np
import pytest

from repro.apps import BFSApp, PageRankApp
from repro.baselines import GunrockScheduler
from repro.core import SageScheduler
from repro.errors import InvalidParameterError
from repro.graph import generators as gen
from repro.multigpu import (
    MultiGpuRunner,
    chunk_partition,
    edge_cut,
    metis_like,
    partition_sizes,
    random_partition,
)
from tests.conftest import bfs_oracle, pagerank_oracle


@pytest.fixture(scope="module")
def community_graph():
    return gen.power_law_configuration(
        400, 2.1, 10.0, seed=8,
        community_count=8, community_bias=0.9,
    )


class TestPartitioners:
    def test_chunk_balanced(self):
        a = chunk_partition(10, 3)
        assert partition_sizes(a, 3).tolist() == [4, 4, 2]

    def test_random_balanced(self):
        a = random_partition(100, 4, seed=1)
        sizes = partition_sizes(a, 4)
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 1

    def test_metis_covers_all(self, community_graph):
        a = metis_like(community_graph, 2)
        assert a.min() >= 0 and a.max() <= 1
        assert a.size == community_graph.num_nodes

    def test_metis_beats_random_cut(self, community_graph):
        metis_cut = edge_cut(community_graph, metis_like(community_graph, 2))
        random_cut = edge_cut(
            community_graph, random_partition(community_graph.num_nodes, 2)
        )
        assert metis_cut < random_cut

    def test_metis_edge_balance(self, community_graph):
        a = metis_like(community_graph, 2)
        degrees = community_graph.out_degrees()
        w0 = degrees[a == 0].sum()
        w1 = degrees[a == 1].sum()
        assert min(w0, w1) > 0.25 * (w0 + w1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            chunk_partition(10, 0)
        with pytest.raises(InvalidParameterError):
            random_partition(5, 9)

    def test_edge_cut_single_part_is_zero(self, community_graph):
        a = chunk_partition(community_graph.num_nodes, 1)
        assert edge_cut(community_graph, a) == 0


class TestMultiGpuRunner:
    def test_bfs_correct_on_two_gpus(self, community_graph):
        runner = MultiGpuRunner(
            GunrockScheduler, chunk_partition(community_graph.num_nodes, 2)
        )
        result = runner.run(community_graph, BFSApp(), 0)
        assert np.array_equal(result.result["dist"],
                              bfs_oracle(community_graph, 0))

    def test_pr_correct_on_two_gpus(self, community_graph):
        runner = MultiGpuRunner(
            SageScheduler, metis_like(community_graph, 2)
        )
        result = runner.run(
            community_graph,
            PageRankApp(max_iterations=100, tolerance=1e-12),
        )
        assert np.allclose(result.result["pagerank"],
                           pagerank_oracle(community_graph), atol=1e-6)

    def test_single_gpu_has_no_comm(self, community_graph):
        runner = MultiGpuRunner(
            GunrockScheduler, chunk_partition(community_graph.num_nodes, 1),
            num_gpus=1,
        )
        result = runner.run(community_graph, BFSApp(), 0)
        assert result.extras["comm_seconds"] == 0.0
        assert result.extras["messages"] == 0.0

    def test_two_gpus_exchange_messages(self, community_graph):
        runner = MultiGpuRunner(
            GunrockScheduler, random_partition(community_graph.num_nodes, 2)
        )
        result = runner.run(community_graph, BFSApp(), 0)
        assert result.extras["messages"] > 0
        assert result.extras["comm_seconds"] > 0

    def test_metis_reduces_messages(self, community_graph):
        def messages(assignment):
            runner = MultiGpuRunner(GunrockScheduler, assignment)
            return runner.run(community_graph, BFSApp(), 0).extras["messages"]

        assert messages(metis_like(community_graph, 2)) <= \
            messages(random_partition(community_graph.num_nodes, 2))

    def test_async_mode_cheaper_sync(self, community_graph):
        chunks = chunk_partition(community_graph.num_nodes, 2)
        sync = MultiGpuRunner(GunrockScheduler, chunks).run(
            community_graph, BFSApp(), 0)
        async_ = MultiGpuRunner(GunrockScheduler, chunks,
                                async_mode=True).run(
            community_graph, BFSApp(), 0)
        assert async_.seconds <= sync.seconds

    def test_assignment_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiGpuRunner(GunrockScheduler, np.array([0, 5]), num_gpus=2)
        with pytest.raises(InvalidParameterError):
            MultiGpuRunner(GunrockScheduler, np.array([0]), num_gpus=0)

    def test_name(self):
        runner = MultiGpuRunner(GunrockScheduler, np.zeros(4, dtype=int),
                                num_gpus=2)
        assert runner.name == "gunrock-x2"
