"""Golden regression tests: the dataset stand-ins are part of the
experiment definition, so their exact shapes are pinned.

If a generator change is intentional, update these numbers together with
a re-run of the benchmark suite (the figures depend on them).
"""

import pytest

from repro.graph import datasets

GOLDEN = {
    # name: (num_nodes, num_edges) at scale 0.25
    "uk-2002": (3000, 50160),
    "brain": (400, 31926),
    "ljournal": (2000, 25399),
    "twitter": (2500, 52988),
    "friendster": (3500, 71511),
}


@pytest.mark.parametrize("name,expected", sorted(GOLDEN.items()))
def test_dataset_shape_pinned(name, expected):
    ds = datasets.by_name(name, scale=0.25)
    assert (ds.num_nodes, ds.num_edges) == expected


def test_scale_changes_size_monotonically():
    small = datasets.by_name("twitter", scale=0.1)
    large = datasets.by_name("twitter", scale=0.4)
    assert small.num_nodes < large.num_nodes
    assert small.num_edges < large.num_edges


def test_same_scale_same_graph_object():
    # lru_cache: repeated suite construction must not regenerate
    a = datasets.by_name("brain", scale=0.25).graph
    b = datasets.by_name("brain", scale=0.25).graph
    assert a is b
