"""Tests for the pipeline driver, frontier queue and run results."""

import numpy as np
import pytest

from repro.apps import BFSApp, PageRankApp
from repro.apps.base import App
from repro.core import SageScheduler, TraversalPipeline, run_app
from repro.core.frontier import FrontierQueue
from repro.errors import ConvergenceError
from repro.graph import generators as gen


class TestFrontierQueue:
    def test_swap_cycle(self):
        q = FrontierQueue(np.array([1, 2]))
        assert not q.empty
        q.publish_next(np.array([3]))
        assert q.swap().tolist() == [3]
        assert q.iterations == 1

    def test_swap_without_publish_empties(self):
        q = FrontierQueue(np.array([1]))
        q.swap()
        assert q.empty

    def test_stats(self):
        q = FrontierQueue(np.array([1, 2]))
        q.publish_next(np.array([3, 4, 5]))
        q.swap()
        assert q.max_frontier == 3
        assert q.total_frontier_nodes == 5

    def test_remap(self):
        q = FrontierQueue(np.array([0, 1]))
        q.publish_next(np.array([2]))
        perm = np.array([3, 2, 1, 0])
        q.remap(perm)
        assert q.current.tolist() == [3, 2]
        assert q.swap().tolist() == [1]


class TestRunResult:
    def test_fields(self, skewed_graph):
        result = run_app(skewed_graph, BFSApp(), SageScheduler(), source=0)
        assert result.app_name == "bfs"
        assert result.scheduler_name == "sage+tp+rts"
        assert result.seconds > 0
        assert result.edges_traversed > 0
        assert result.teps == pytest.approx(
            result.edges_traversed / result.seconds
        )
        assert result.gteps == pytest.approx(result.teps / 1e9)

    def test_zero_seconds_teps(self):
        from repro.core.pipeline import RunResult
        from repro.gpusim.profiler import Profiler
        r = RunResult("x", "y", 0.0, 0, 0, {}, Profiler())
        assert r.teps == 0.0


class TestPipeline:
    def test_shared_device_accumulates(self, skewed_graph):
        pipeline = TraversalPipeline(skewed_graph, SageScheduler())
        r1 = pipeline.run(BFSApp(), source=0)
        r2 = pipeline.run(BFSApp(), source=1)
        # differential timing: each run reports only its own time
        assert pipeline.device.elapsed_seconds == pytest.approx(
            r1.seconds + r2.seconds
        )

    def test_iteration_guard(self):
        class NeverConverges(App):
            name = "loop"

            def setup(self, graph, source=None):
                self.graph = graph

            def initial_frontier(self):
                return np.array([0])

            def process_level(self, edge_src, edge_dst, edge_pos=None):
                return np.array([0])

            def result(self):
                return {}

        g = gen.cycle_graph(3)
        pipeline = TraversalPipeline(g, SageScheduler(), max_iterations=10)
        with pytest.raises(ConvergenceError):
            pipeline.run(NeverConverges())

    def test_profiler_matches_iterations(self, skewed_graph):
        result = run_app(skewed_graph, PageRankApp(max_iterations=4),
                         SageScheduler())
        assert result.profiler.kernels >= result.iterations
