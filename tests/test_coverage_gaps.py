"""Cross-cutting tests for interactions not covered elsewhere."""

import numpy as np
import pytest

from repro.apps import BFSApp, MultiSourceBFSApp, PageRankApp
from repro.baselines import B40CScheduler
from repro.core import (
    CompressedTraversalScheduler,
    SageScheduler,
    direction_optimized_bfs,
    run_app,
)
from repro.graph import CompressedCSRGraph, generators as gen
from repro.outofcore import SageOutOfCoreRunner


class TestCompressedSchedulerPassthrough:
    def test_reorder_passes_through_wrapper(self):
        g = gen.power_law_configuration(
            300, 2.0, 10.0, seed=4, community_count=6, scramble_ids=True
        )
        compressed = CompressedCSRGraph.from_csr(g)
        inner = SageScheduler(sampling_reorder=True,
                              reorder_threshold_edges=g.num_edges)
        sched = CompressedTraversalScheduler(inner, compressed)
        result = run_app(g, PageRankApp(max_iterations=20), sched)
        # the wrapped engine still commits reorderings through the wrapper
        assert result.reorder_commits >= 1

    def test_wrapper_name(self):
        g = gen.cycle_graph(8)
        compressed = CompressedCSRGraph.from_csr(g)
        sched = CompressedTraversalScheduler(B40CScheduler(), compressed)
        assert sched.name == "b40c+compressed"


class TestOutOfCorePoolReuse:
    def test_pr_transfers_shrink_after_first_iteration(self):
        """PR revisits every adjacency each iteration: the resident pool
        turns later iterations into (near) zero-transfer rounds."""
        g = gen.power_law_configuration(600, 2.0, 12.0, seed=5)
        runner = SageOutOfCoreRunner(device_fraction=0.95)
        result = runner.run(g, PageRankApp(max_iterations=6))
        # total bytes moved stay close to one full graph image, not six
        targets_bytes = g.num_edges * 4
        assert result.extras["bytes_transferred"] < 2.2 * targets_bytes


class TestHybridWithBaselines:
    def test_hybrid_runs_on_b40c(self, skewed_graph):
        source = int(np.argmax(skewed_graph.out_degrees()))
        plain = run_app(skewed_graph, BFSApp(), B40CScheduler(),
                        source=source)
        hybrid, _ = direction_optimized_bfs(
            skewed_graph, B40CScheduler, source
        )
        assert np.array_equal(plain.result["dist"], hybrid.result["dist"])


class TestMSBFSUnderReordering:
    def test_levels_survive_midrun_reorder(self):
        g = gen.power_law_configuration(
            400, 2.0, 12.0, seed=6, community_count=8, scramble_ids=True
        )
        sources = np.array([0, 7, 13])
        plain = run_app(g, MultiSourceBFSApp(sources), SageScheduler())
        sched = SageScheduler(sampling_reorder=True,
                              reorder_threshold_edges=g.num_edges // 2)
        adaptive = run_app(g, MultiSourceBFSApp(sources), sched)
        assert adaptive.reorder_commits >= 1
        assert np.array_equal(plain.result["levels"],
                              adaptive.result["levels"])


class TestCliExperiments:
    @pytest.mark.parametrize("name", ["table3", "fig10"])
    def test_experiment_commands(self, name, capsys):
        from repro.cli import main
        assert main(["experiment", name, "--scale", "0.05"]) == 0
        assert "dataset" in capsys.readouterr().out


class TestReorderRoundsDefaults:
    def test_default_checkpoints(self):
        from repro.bench import sage_reorder_rounds
        g = gen.power_law_configuration(200, 2.0, 8.0, seed=3)
        rounds = sage_reorder_rounds(g, 7)
        # defaults: geometric checkpoints plus the final round
        assert 7 in rounds.snapshots
        assert 1 in rounds.snapshots
