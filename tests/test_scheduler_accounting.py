"""Exact-value accounting tests for each scheduler's kernel stats.

Crafted frontiers with hand-computable decompositions pin down the cost
accounting (issued lanes, elections, sector counts) so refactorings of
the schedulers cannot silently drift.
"""

import numpy as np
import pytest

from repro.apps import BFSApp
from repro.baselines import B40CScheduler, GunrockScheduler, TigrScheduler
from repro.baselines.thread_per_node import ThreadPerNodeScheduler
from repro.core import SageScheduler
from repro.graph.csr import CSRGraph
from repro.gpusim.spec import GPUSpec


def star_plus_singles(hub_degree: int, singles: int) -> CSRGraph:
    """Node 0 -> hub_degree targets; nodes 1..singles each -> one edge."""
    n = max(hub_degree, singles) + 2
    src = [0] * hub_degree + list(range(1, singles + 1))
    dst = list(range(1, hub_degree + 1)) + [0] * singles
    return CSRGraph.from_edges(n, np.array(src), np.array(dst))


def stats_for(scheduler, graph, frontier):
    app = BFSApp()
    app.setup(graph, int(frontier[0]))
    scheduler.reset(graph)
    degrees = graph.offsets[frontier + 1] - graph.offsets[frontier]
    _, edge_dst, _ = graph.expand_frontier(frontier)
    return scheduler.kernel_stats(frontier, degrees, edge_dst, graph, app)


class TestThreadPerNodeExactness:
    def test_warp_divergence_formula(self):
        # 32 frontier nodes in one warp: degrees 100 and 31 ones
        graph = star_plus_singles(100, 31)
        frontier = np.arange(32, dtype=np.int64)
        stats = stats_for(ThreadPerNodeScheduler(), graph, frontier)
        # warp runs until its largest member: 32 lanes * 100 rounds
        assert stats.issued_lane_cycles == 32 * 100
        assert stats.active_edges == 100 + 31
        assert stats.lane_efficiency == pytest.approx(131 / 3200)

    def test_uncoalesced_csr_reads(self):
        graph = star_plus_singles(64, 10)
        frontier = np.arange(11, dtype=np.int64)
        stats = stats_for(ThreadPerNodeScheduler(), graph, frontier)
        assert stats.csr_sector_touches == stats.active_edges


class TestSageExactness:
    def test_divergence_free(self):
        graph = star_plus_singles(1000, 100)
        frontier = np.arange(101, dtype=np.int64)
        stats = stats_for(SageScheduler(), graph, frontier)
        assert stats.issued_lane_cycles == stats.active_edges
        assert stats.lane_efficiency == 1.0

    def test_rts_even_placement(self):
        spec = GPUSpec()
        graph = star_plus_singles(10_000, 4)
        frontier = np.arange(5, dtype=np.int64)
        stats = stats_for(SageScheduler(), graph, frontier)
        per_sm = stats.per_sm_lane_cycles
        assert per_sm.max() == pytest.approx(per_sm.min())

    def test_tp_only_owner_placement_skews(self):
        graph = star_plus_singles(10_000, 4)
        frontier = np.arange(5, dtype=np.int64)
        stats = stats_for(SageScheduler(resident_stealing=False),
                          graph, frontier)
        per_sm = stats.per_sm_lane_cycles
        # the single block holding the hub makes one SM the straggler
        assert per_sm.max() > 100 * max(per_sm[per_sm > 0].min(), 1e-12) \
            or np.count_nonzero(per_sm) == 1

    def test_resident_reuse_drops_write_overhead(self):
        graph = star_plus_singles(2048, 16)
        frontier = np.arange(17, dtype=np.int64)
        scheduler = SageScheduler()
        first = stats_for(scheduler, graph, frontier)
        degrees = graph.offsets[frontier + 1] - graph.offsets[frontier]
        _, edge_dst, _ = graph.expand_frontier(frontier)
        app = BFSApp()
        app.setup(graph, 0)
        second = scheduler.kernel_stats(frontier, degrees, edge_dst,
                                        graph, app)
        assert second.overhead_cycles < first.overhead_cycles
        assert second.extra_dram_bytes == 0.0


class TestB40CExactness:
    def test_bucket_issued_lanes(self):
        spec = GPUSpec()
        # one node of degree 300 (block bucket), one of 40 (warp bucket),
        # one of 5 (thread bucket)
        graph = CSRGraph.from_edges(
            400,
            np.concatenate([np.zeros(300, int), np.ones(40, int),
                            np.full(5, 2)]),
            np.concatenate([np.arange(3, 303), np.arange(3, 43),
                            np.arange(3, 8)]),
        )
        frontier = np.array([0, 1, 2], dtype=np.int64)
        stats = stats_for(B40CScheduler(), graph, frontier)
        # block bucket: ceil(300/256)=2 chunks at width 256 -> 512
        # warp bucket: ceil(40/32)=2 chunks at width 32 -> 64
        # thread bucket: scan gather -> 5
        assert stats.issued_lane_cycles == 512 + 64 + 5


class TestGunrockExactness:
    def test_edge_balanced_lanes(self):
        graph = star_plus_singles(100, 27)
        frontier = np.arange(28, dtype=np.int64)
        stats = stats_for(GunrockScheduler(), graph, frontier)
        active = 100 + 27
        warps = -(-active // 32)
        assert stats.issued_lane_cycles == warps * 32
        # perfectly even placement
        per_sm = stats.per_sm_lane_cycles
        assert per_sm.max() == pytest.approx(per_sm.min())


class TestTigrExactness:
    def test_virtual_count_drives_overhead(self):
        graph = star_plus_singles(320, 0)  # hub splits into 10 virtuals
        frontier = np.array([0], dtype=np.int64)
        small = stats_for(TigrScheduler(), graph, frontier)
        regular = star_plus_singles(31, 0)  # no split
        frontier1 = np.array([0], dtype=np.int64)
        tiny = stats_for(TigrScheduler(), regular, frontier1)
        assert small.overhead_cycles > tiny.overhead_cycles
        assert small.extra_dram_bytes > tiny.extra_dram_bytes
