"""Tests for the out-of-core subsystem (pool, layout, runners)."""

import numpy as np
import pytest

from repro.apps import BFSApp
from repro.errors import InvalidParameterError
from repro.graph import generators as gen
from repro.gpusim.spec import GPUSpec
from repro.outofcore import (
    OnDemandUMRunner,
    SageOutOfCoreRunner,
    SectorPool,
    SubwayRunner,
    contiguous_runs,
    layout_for,
)
from tests.conftest import bfs_oracle


class TestSectorPool:
    def test_cold_misses(self):
        pool = SectorPool(10, 100)
        missing = pool.access(np.array([1, 2, 3]))
        assert missing.tolist() == [1, 2, 3]
        assert pool.misses == 3

    def test_hits_on_resident(self):
        pool = SectorPool(10, 100)
        pool.access(np.array([1, 2]))
        missing = pool.access(np.array([1, 2, 3]))
        assert missing.tolist() == [3]
        assert pool.hits == 2

    def test_eviction_lru(self):
        pool = SectorPool(2, 100)
        pool.access(np.array([1]))
        pool.access(np.array([2]))
        pool.access(np.array([3]))  # evicts 1 (oldest)
        assert pool.resident_count == 2
        missing = pool.access(np.array([1]))
        assert missing.size == 1

    def test_duplicates_collapse(self):
        pool = SectorPool(10, 100)
        missing = pool.access(np.array([5, 5, 5]))
        assert missing.tolist() == [5]

    def test_out_of_range(self):
        pool = SectorPool(4, 10)
        with pytest.raises(InvalidParameterError):
            pool.access(np.array([10]))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SectorPool(0, 10)

    def test_hit_rate(self):
        pool = SectorPool(10, 100)
        pool.access(np.array([1]))
        pool.access(np.array([1]))
        assert pool.hit_rate == pytest.approx(0.5)


class TestContiguousRuns:
    def test_counts_runs(self):
        assert contiguous_runs(np.array([1, 2, 3, 7, 8, 20])) == 3

    def test_empty(self):
        assert contiguous_runs(np.array([])) == 0

    def test_single(self):
        assert contiguous_runs(np.array([5])) == 1

    def test_unsorted_input(self):
        assert contiguous_runs(np.array([8, 1, 2, 7])) == 2


class TestLayout:
    def test_addressing(self, tiny_graph):
        layout = layout_for(tiny_graph, GPUSpec())
        assert layout.sector_width == 8
        assert layout.targets_sectors == 1  # 7 edges fit one sector
        ts = layout.target_sectors_of(np.array([0, 6]))
        assert ts.tolist() == [0, 0]
        vs = layout.value_sectors_of(np.array([0]))
        assert vs.tolist() == [layout.targets_sectors]

    def test_total_bytes(self, skewed_graph):
        layout = layout_for(skewed_graph, GPUSpec())
        assert layout.total_bytes == layout.total_sectors * 32


@pytest.mark.parametrize("runner_factory", [
    SubwayRunner, SageOutOfCoreRunner, OnDemandUMRunner,
])
class TestRunners:
    def test_bfs_correct(self, runner_factory, skewed_graph):
        runner = runner_factory(device_fraction=0.3)
        result = runner.run(skewed_graph, BFSApp(), 0)
        assert np.array_equal(result.result["dist"],
                              bfs_oracle(skewed_graph, 0))

    def test_transfer_accounting(self, runner_factory, skewed_graph):
        runner = runner_factory(device_fraction=0.3)
        result = runner.run(skewed_graph, BFSApp(), 0)
        assert result.extras["transfer_seconds"] > 0
        assert result.extras["bytes_transferred"] > 0
        assert result.extras["requests"] >= 1

    def test_device_fraction_validation(self, runner_factory):
        with pytest.raises(InvalidParameterError):
            runner_factory(device_fraction=0.0)


class TestComparativeBehavior:
    def test_um_issues_most_requests(self, skewed_graph):
        um = OnDemandUMRunner(device_fraction=0.3)
        um_result = um.run(skewed_graph, BFSApp(), 0)
        subway = SubwayRunner(device_fraction=0.3)
        subway_result = subway.run(skewed_graph, BFSApp(), 0)
        assert um_result.extras["requests"] > subway_result.extras["requests"]

    def test_sage_merges_requests(self, skewed_graph):
        sage = SageOutOfCoreRunner(device_fraction=0.3)
        result = sage.run(skewed_graph, BFSApp(), 0)
        # far fewer requests than sectors fetched
        sectors = result.extras["bytes_transferred"] / 32
        assert result.extras["requests"] < sectors

    def test_smaller_pool_more_traffic(self):
        g = gen.power_law_configuration(800, 2.0, 20.0, seed=6)
        small = SageOutOfCoreRunner(device_fraction=0.05)
        large = SageOutOfCoreRunner(device_fraction=0.9)
        b_small = small.run(g, BFSApp(), 0).extras["bytes_transferred"]
        b_large = large.run(g, BFSApp(), 0).extras["bytes_transferred"]
        assert b_small >= b_large
