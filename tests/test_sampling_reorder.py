"""Tests for tile-access sampling and Sampling-based Reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reorder import SamplingReorderer
from repro.core.sampling import TileAccessSampler, exact_locality_counts
from repro.core.tiling import decompose_frontier
from repro.errors import InvalidParameterError
from repro.graph import generators as gen
from repro.gpusim.spec import GPUSpec
from repro.reorder.base import is_permutation


class TestExactLocality:
    def test_paper_figure5_stage1(self):
        # Figure 5 Stage 1 (1st round): sector width 4.
        tiles = np.array([0, 1, 2, 8,   1, 2, 5, 8,   2, 4, 8, 9,
                          8, 12, 14, 15])
        starts = np.array([0, 4, 8, 12])
        locality = exact_locality_counts(tiles, starts, 16, 4)
        # From the figure: node 0 -> 2; node 1 -> 1+1=... node values
        # appear in several tiles; check a few the figure spells out.
        assert locality[0] == 2        # tile1 co-members 1, 2
        assert locality[8] == 1        # tile3 co-member 9 (yellow event)
        assert locality[12] == 2       # tile4 co-members 14, 15

    def test_singleton_tiles_have_zero_locality(self):
        tiles = np.array([3, 11, 19])
        starts = np.array([0, 1, 2])
        locality = exact_locality_counts(tiles, starts, 24, 8)
        assert locality.sum() == 0

    def test_empty(self):
        out = exact_locality_counts(np.array([]), np.array([]), 4, 8)
        assert out.sum() == 0


class TestSampler:
    def test_pair_symmetry_bound(self):
        sampler = TileAccessSampler(100, 8, co_samples=2,
                                    tile_sample_rate=1.0)
        edge_dst = np.arange(32)
        sampler.observe(edge_dst, np.array([0, 16]))
        u, co = sampler.pairs()
        # two tiles of 16, each element pairs with <= 2 co-members
        assert u.size <= 32 * 2
        assert u.size > 0
        assert np.all(u != co) or np.all(edge_dst[u] != edge_dst[co])

    def test_threshold_counting(self):
        sampler = TileAccessSampler(10, 8)
        sampler.observe(np.array([1, 2, 3]), np.array([0]))
        assert sampler.observed_edges == 3

    def test_reset(self):
        sampler = TileAccessSampler(10, 8, tile_sample_rate=1.0)
        sampler.observe(np.array([1, 2, 3]), np.array([0]))
        sampler.reset()
        assert sampler.observed_edges == 0
        assert sampler.pairs()[0].size == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TileAccessSampler(0, 8)
        with pytest.raises(InvalidParameterError):
            TileAccessSampler(10, 8, co_samples=0)
        with pytest.raises(InvalidParameterError):
            TileAccessSampler(10, 8, tile_sample_rate=0.0)

    def test_locality_counts_subset_of_exact(self):
        g = gen.power_law_configuration(200, 2.0, 8.0, seed=3)
        sampler = TileAccessSampler(200, 8, co_samples=100,
                                    tile_sample_rate=1.0)
        degrees = g.out_degrees()
        decomp = decompose_frontier(degrees, 256, 8)
        starts = decomp.segment_starts(np.cumsum(degrees) - degrees)
        sampler.observe(g.targets, starts)
        sampled = sampler.locality_counts()
        exact = exact_locality_counts(g.targets, starts, 200, 8)
        # With co_samples >= max tile size the rotation enumerates every
        # co-member exactly once.
        assert np.array_equal(sampled, exact)


class TestReorderer:
    def test_identity_without_samples(self):
        r = SamplingReorderer(50, GPUSpec())
        outcome = r.compute_round()
        assert outcome.is_identity
        assert is_permutation(outcome.perm, 50)

    def test_round_produces_bijection(self):
        g = gen.power_law_configuration(
            300, 2.0, 10.0, seed=4,
            community_count=6, community_bias=0.9, scramble_ids=True,
        )
        r = SamplingReorderer(g.num_nodes, GPUSpec(),
                              threshold_edges=g.num_edges)
        degrees = g.out_degrees()
        decomp = decompose_frontier(degrees, 256, 8)
        starts = decomp.segment_starts(np.cumsum(degrees) - degrees)
        r.observe(g.targets, starts)
        assert r.ready
        outcome = r.compute_round()
        assert is_permutation(outcome.perm, g.num_nodes)

    def test_rounds_reduce_sector_objective(self):
        """The headline invariant: iterated rounds must not lose ground
        on the sector objective for a community-structured workload."""
        from repro.graph.properties import sector_span
        g = gen.power_law_configuration(
            600, 2.0, 12.0, seed=4,
            community_count=12, community_bias=0.9, scramble_ids=True,
        )
        spec = GPUSpec()
        before = sector_span(g, spec.sector_width)
        r = SamplingReorderer(g.num_nodes, spec,
                              threshold_edges=g.num_edges, seed=1)
        current = g
        for _ in range(6):
            degrees = current.out_degrees()
            decomp = decompose_frontier(degrees, spec.block_size, 8)
            starts = decomp.segment_starts(np.cumsum(degrees) - degrees)
            r.observe(current.targets, starts)
            outcome = r.compute_round()
            if not outcome.is_identity:
                current = current.permute(outcome.perm)
        after = sector_span(current, spec.sector_width)
        assert after < before * 0.98

    def test_ready_respects_threshold(self):
        r = SamplingReorderer(10, threshold_edges=100)
        r.observe(np.arange(50), np.array([0]))
        assert not r.ready
        r.observe(np.arange(50), np.array([0]))
        assert r.ready

    def test_min_gain_validation(self):
        with pytest.raises(InvalidParameterError):
            SamplingReorderer(10, min_gain=-1)

    def test_update_stats_well_formed(self):
        r = SamplingReorderer(100, GPUSpec())
        stats = r.update_stats(100, 1000)
        stats.validate(GPUSpec())
        assert stats.active_edges == 1100

    @given(st.integers(1, 400), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_any_round_is_bijection(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=min(400, 4 * n))
        starts = np.arange(0, edges.size, 7, dtype=np.int64)
        r = SamplingReorderer(n, GPUSpec(), threshold_edges=1,
                              seed=seed % 1000)
        r.observe(edges, starts)
        outcome = r.compute_round()
        assert is_permutation(outcome.perm, n)
