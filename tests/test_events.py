"""Tests for the discrete-event makespan simulator — and the executable
validation of the analytic cost model's placement assumptions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tiling import decompose_frontier
from repro.errors import InvalidParameterError
from repro.gpusim.events import (
    MakespanSimulator,
    Task,
    tasks_from_decomposition,
)


def uniform_tasks(n, duration=10.0, blocks=8):
    return [Task(duration, i % blocks) for i in range(n)]


class TestSimulatorBasics:
    def test_empty(self):
        sim = MakespanSimulator(4)
        report = sim.simulate([], stealing=True)
        assert report.makespan_cycles == 0.0
        assert report.utilization == 1.0

    def test_single_task(self):
        sim = MakespanSimulator(4, slots_per_sm=2)
        report = sim.simulate([Task(7.0, 0)], stealing=False)
        assert report.makespan_cycles == 7.0
        assert report.per_sm_busy_cycles[0] == 7.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MakespanSimulator(0)

    def test_steal_counting(self):
        sim = MakespanSimulator(2, slots_per_sm=1)
        # four tasks all owned by block 0 (-> SM 0): with stealing, SM 1
        # must take some
        report = sim.simulate([Task(5.0, 0)] * 4, stealing=True)
        assert report.steals >= 1
        no_steal = sim.simulate([Task(5.0, 0)] * 4, stealing=False)
        assert no_steal.steals == 0


class TestPlacementRegimes:
    def test_owner_placement_bottlenecked_by_heavy_block(self):
        sim = MakespanSimulator(4, slots_per_sm=1)
        # one block owns 10x the work
        tasks = [Task(1.0, b) for b in (1, 2, 3)] + [Task(10.0, 0)]
        owner = sim.simulate(tasks, stealing=False)
        assert owner.makespan_cycles == 10.0
        assert owner.imbalance > 2.0

    def test_stealing_is_work_conserving(self):
        sim = MakespanSimulator(4, slots_per_sm=1)
        tasks = [Task(1.0, 0) for _ in range(40)]  # all owned by SM 0
        owner = sim.simulate(tasks, stealing=False)
        stolen = sim.simulate(tasks, stealing=True)
        assert owner.makespan_cycles == pytest.approx(40.0)
        assert stolen.makespan_cycles == pytest.approx(10.0)
        assert stolen.utilization == pytest.approx(1.0)

    @given(
        st.lists(st.tuples(st.floats(0.1, 20.0), st.integers(0, 15)),
                 min_size=1, max_size=60),
        st.integers(1, 8),
        st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_stealing_within_graham_bound(self, raw, num_sms, slots):
        """Greedy stealing obeys Graham's list-scheduling guarantee.

        (It is NOT always <= a lucky static partition — classic
        scheduling anomaly — but it is always work-conserving:
        makespan <= total/servers + longest task.)"""
        tasks = [Task(d, b) for d, b in raw]
        sim = MakespanSimulator(num_sms, slots_per_sm=slots)
        stolen = sim.simulate(tasks, stealing=True)
        servers = num_sms * slots
        total = sum(t.duration_cycles for t in tasks)
        longest = max(t.duration_cycles for t in tasks)
        assert stolen.makespan_cycles <= total / servers + longest + 1e-9
        # and it can never beat the work-conserving lower bound
        assert stolen.makespan_cycles >= max(
            longest, total / servers) - 1e-9

    @given(
        st.lists(st.floats(0.5, 10.0), min_size=8, max_size=60),
        st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_stealing_near_lower_bound(self, durations, num_sms):
        """Work conservation: makespan <= total/servers + max task."""
        tasks = [Task(d, 0) for d in durations]
        sim = MakespanSimulator(num_sms, slots_per_sm=1)
        report = sim.simulate(tasks, stealing=True)
        lower = sum(durations) / num_sms
        assert report.makespan_cycles <= lower + max(durations) + 1e-9

    def test_busy_cycles_conserved(self):
        tasks = uniform_tasks(37, duration=3.0)
        sim = MakespanSimulator(6, slots_per_sm=2)
        for stealing in (True, False):
            report = sim.simulate(tasks, stealing=stealing)
            assert report.per_sm_busy_cycles.sum() == pytest.approx(
                37 * 3.0
            )


class TestCostModelValidation:
    """The analytic placement rules must match simulated makespans."""

    def test_block_placement_matches_owner_simulation(self):
        from repro.gpusim.cost import block_placement
        rng = np.random.default_rng(3)
        per_block = rng.integers(1, 200, size=24).astype(float)
        num_sms = 8
        tasks = [Task(float(w), b) for b, w in enumerate(per_block)]
        sim = MakespanSimulator(num_sms, slots_per_sm=1)
        report = sim.simulate(tasks, stealing=False)
        analytic = block_placement(per_block, num_sms).max()
        assert report.makespan_cycles == pytest.approx(analytic)

    def test_even_placement_matches_stealing_simulation(self):
        rng = np.random.default_rng(4)
        durations = rng.uniform(1.0, 3.0, size=400)
        tasks = [Task(float(d), i % 16) for i, d in enumerate(durations)]
        sim = MakespanSimulator(8, slots_per_sm=4)
        report = sim.simulate(tasks, stealing=True)
        even = durations.sum() / (8 * 4)
        # within one max-task granule of the work-conserving bound
        assert report.makespan_cycles <= even + durations.max() + 1e-9
        assert report.makespan_cycles >= even - 1e-9


class TestDecompositionTasks:
    def test_tasks_cover_edges(self):
        degrees = np.array([500, 3, 77, 0, 1000])
        decomp = decompose_frontier(degrees, 256, 8)
        tasks = tasks_from_decomposition(decomp, cycles_per_edge=2.0)
        assert sum(t.duration_cycles for t in tasks) == pytest.approx(
            2.0 * degrees.sum()
        )

    def test_skewed_frontier_benefits_from_stealing(self):
        rng = np.random.default_rng(5)
        degrees = rng.zipf(1.7, size=2000).astype(np.int64)
        degrees = np.minimum(degrees, 5000)
        decomp = decompose_frontier(degrees, 256, 8)
        tasks = tasks_from_decomposition(decomp)
        sim = MakespanSimulator(16, slots_per_sm=4)
        owner = sim.simulate(tasks, stealing=False)
        stolen = sim.simulate(tasks, stealing=True)
        assert stolen.makespan_cycles < owner.makespan_cycles
        assert stolen.imbalance < owner.imbalance
