"""Tests for the Ligra CPU runner and baseline-specific behaviours."""

import numpy as np
import pytest

from repro.apps import BFSApp, PageRankApp
from repro.baselines import LigraRunner
from repro.baselines.ligra import DENSE_THRESHOLD
from repro.core import SageScheduler, run_app
from repro.errors import ConvergenceError
from repro.graph import generators as gen
from repro.gpusim.spec import CPUSpec
from tests.conftest import bfs_oracle, pagerank_oracle


class TestLigra:
    def test_bfs_correct(self, skewed_graph):
        result = LigraRunner().run(skewed_graph, BFSApp(), 0)
        assert np.array_equal(result.result["dist"],
                              bfs_oracle(skewed_graph, 0))

    def test_pr_correct(self, skewed_graph):
        result = LigraRunner().run(
            skewed_graph, PageRankApp(max_iterations=100, tolerance=1e-12)
        )
        assert np.allclose(result.result["pagerank"],
                           pagerank_oracle(skewed_graph), atol=1e-6)

    def test_slower_than_gpu_at_scale(self):
        g = gen.power_law_configuration(3000, 2.0, 25.0, seed=2)
        cpu = LigraRunner().run(g, BFSApp(), 0)
        gpu = run_app(g, BFSApp(), SageScheduler(), source=0)
        assert cpu.seconds > gpu.seconds

    def test_iteration_guard(self):
        runner = LigraRunner()
        g = gen.cycle_graph(50)
        with pytest.raises(ConvergenceError):
            runner.run(g, BFSApp(), 0, max_iterations=3)

    def test_dense_mode_discount(self):
        runner = LigraRunner(CPUSpec())
        total = 1000
        sparse = runner._iteration_seconds(
            int(total * DENSE_THRESHOLD * 0.5), total
        )
        dense = runner._iteration_seconds(
            int(total * DENSE_THRESHOLD * 2.5), total
        )
        # dense processes 5x the edges but pays less than 5x
        assert dense < 5 * sparse

    def test_scheduler_name(self, tiny_graph):
        result = LigraRunner().run(tiny_graph, BFSApp(), 0)
        assert result.scheduler_name == "ligra"
