"""Tests for the sector memory model and cache estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.gpusim.memory import (
    LRUCacheModel,
    coalesced_sectors,
    distinct_sectors,
    estimate_dram_sectors,
    sector_ids,
    segmented_distinct_sectors,
)


class TestSectorMath:
    def test_sector_ids(self):
        assert sector_ids(np.array([0, 7, 8, 15, 16]), 8).tolist() == \
            [0, 0, 1, 1, 2]

    def test_sector_ids_validation(self):
        with pytest.raises(InvalidParameterError):
            sector_ids(np.array([1]), 0)

    def test_distinct(self):
        assert distinct_sectors(np.array([0, 1, 2, 9]), 8) == 2
        assert distinct_sectors(np.array([]), 8) == 0

    def test_paper_figure5_example(self):
        # tile3 = {2, 4, 8, 9} with 4 values per sector -> 3 sectors
        assert distinct_sectors(np.array([2, 4, 8, 9]), 4) == 3


class TestSegmentedDistinct:
    def test_basic_segments(self):
        addresses = np.array([0, 1, 2, 8, 1, 2, 5, 8, 2, 4, 8, 9])
        starts = np.array([0, 4, 8])
        # paper Figure 5 tiles 1-3 with sector width 4
        counts = segmented_distinct_sectors(addresses, starts, 4)
        assert counts.tolist() == [2, 3, 3]

    def test_presorted_segments(self):
        addresses = np.array([0, 1, 8, 2, 3, 16])
        starts = np.array([0, 3])
        counts = segmented_distinct_sectors(addresses, starts, 8,
                                            presorted=True)
        assert counts.tolist() == [2, 2]

    def test_empty(self):
        out = segmented_distinct_sectors(np.array([]), np.array([]), 8)
        assert out.size == 0

    def test_single_segment(self):
        out = segmented_distinct_sectors(
            np.array([3, 11, 19]), np.array([0]), 8
        )
        assert out.tolist() == [3]

    def test_invalid_starts(self):
        with pytest.raises(InvalidParameterError):
            segmented_distinct_sectors(np.array([1, 2]), np.array([1]), 8)

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=80),
        st.integers(1, 16),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, addresses, width, data):
        addresses = np.array(addresses)
        n_segs = data.draw(st.integers(1, min(6, addresses.size)))
        cuts = sorted(data.draw(st.lists(
            st.integers(1, addresses.size - 1) if addresses.size > 1
            else st.nothing(),
            max_size=n_segs - 1, unique=True,
        )) if addresses.size > 1 else [])
        starts = np.array([0] + cuts, dtype=np.int64)
        got = segmented_distinct_sectors(addresses, starts, width)
        bounds = np.append(starts, addresses.size)
        expected = [
            len(np.unique(addresses[a:b] // width))
            for a, b in zip(bounds[:-1], bounds[1:])
        ]
        assert got.tolist() == expected


class TestCoalesced:
    def test_aligned(self):
        out = coalesced_sectors(np.array([8, 16, 4]), 8, aligned=True)
        assert out.tolist() == [1, 2, 1]

    def test_unaligned_pays_straddle(self):
        # even a 4-wide read can straddle a boundary when unaligned
        out = coalesced_sectors(np.array([8, 16, 4]), 8, aligned=False)
        assert out.tolist() == [2, 3, 2]

    def test_alignment_never_worse(self):
        sizes = np.arange(1, 70)
        aligned = coalesced_sectors(sizes, 8, aligned=True)
        unaligned = coalesced_sectors(sizes, 8, aligned=False)
        assert np.all(aligned <= unaligned)


class TestLRU:
    def test_exact_behavior(self):
        cache = LRUCacheModel(2)
        cache.access([1, 2])          # misses
        cache.access([1])             # hit
        cache.access([3])             # miss, evicts 2
        cache.access([2])             # miss again
        assert cache.hits == 1
        assert cache.misses == 4

    def test_hit_rate(self):
        cache = LRUCacheModel(10)
        cache.access([1, 1, 1, 1])
        assert cache.hit_rate == pytest.approx(0.75)

    def test_reset(self):
        cache = LRUCacheModel(4)
        cache.access([1, 2, 3])
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access([1]) == 1  # cold again

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LRUCacheModel(0)

    @given(st.lists(st.integers(0, 30), max_size=200), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, trace, capacity):
        from collections import OrderedDict
        cache = LRUCacheModel(capacity)
        cache.access(trace)
        ref: OrderedDict[int, None] = OrderedDict()
        hits = 0
        for s in trace:
            if s in ref:
                ref.move_to_end(s)
                hits += 1
            else:
                ref[s] = None
                if len(ref) > capacity:
                    ref.popitem(last=False)
        assert cache.hits == hits


class TestDramEstimate:
    def test_fits_in_cache(self):
        # all repeats hit when the working set fits
        assert estimate_dram_sectors(1000, 100, 200) == 100

    def test_no_reuse(self):
        assert estimate_dram_sectors(100, 100, 10) == 100

    def test_overflow_interpolates(self):
        fits = estimate_dram_sectors(1000, 100, 100)
        overflow = estimate_dram_sectors(1000, 100, 50)
        assert fits == 100
        assert 100 < overflow <= 1000

    def test_monotone_in_touches(self):
        a = estimate_dram_sectors(500, 100, 50)
        b = estimate_dram_sectors(600, 100, 50)
        assert b >= a

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            estimate_dram_sectors(5, 10, 100)

    def test_zero(self):
        assert estimate_dram_sectors(0, 0, 100) == 0.0
