"""SAGE engine tests: ablation ordering, resident tiles, self-adaptive
reordering mid-run."""

import numpy as np
import pytest

from repro.apps import BFSApp, PageRankApp
from repro.core import SageScheduler, run_app
from repro.core.resident import ResidentTileStore
from repro.graph import generators as gen
from tests.conftest import bfs_oracle, pagerank_oracle


class TestAblationOrdering:
    """The Figure-10 structure must hold on a skewed graph."""

    def speeds(self, graph, source):
        out = {}
        for label, flags in [
            ("base", dict(tiled_partitioning=False, resident_stealing=False)),
            ("tp", dict(tiled_partitioning=True, resident_stealing=False)),
            ("tp+rts", dict()),
        ]:
            result = run_app(graph, BFSApp(), SageScheduler(**flags),
                             source=source)
            out[label] = result.gteps
        return out

    def test_tp_beats_base_on_skewed(self, skewed_graph):
        speeds = self.speeds(skewed_graph, 0)
        assert speeds["tp"] > speeds["base"]

    def test_rts_beats_tp_on_skewed(self, skewed_graph):
        speeds = self.speeds(skewed_graph, 0)
        assert speeds["tp+rts"] > speeds["tp"]

    def test_scheduler_names(self):
        assert SageScheduler().name == "sage+tp+rts"
        assert SageScheduler(sampling_reorder=True).name == "sage+tp+rts+sr"
        assert SageScheduler(tiled_partitioning=False,
                             resident_stealing=False).name == "sage-base"


class TestResidentStore:
    def test_visit_tracks_reuse(self, tiny_graph):
        store = ResidentTileStore(tiny_graph)
        frontier = np.array([0, 1])
        tiles = np.array([2, 1])
        reused, new, new_tiles = store.visit(frontier, tiles)
        assert (reused, new, new_tiles) == (0, 2, 3)
        reused, new, new_tiles = store.visit(frontier, tiles)
        assert (reused, new, new_tiles) == (2, 0, 0)
        assert store.reuse_rate == pytest.approx(0.5)

    def test_footprint(self, tiny_graph):
        store = ResidentTileStore(tiny_graph)
        store.visit(np.array([0]), np.array([5]))
        assert store.footprint_bytes == 5 * 12

    def test_invalidate_all(self, tiny_graph):
        store = ResidentTileStore(tiny_graph)
        store.visit(np.array([0]), np.array([5]))
        store.invalidate_all()
        assert store.stored_tiles == 0
        _, new, __ = store.visit(np.array([0]), np.array([5]))
        assert new == 1

    def test_invalidate_nodes(self, tiny_graph):
        store = ResidentTileStore(tiny_graph)
        store.visit(np.array([0, 1]), np.array([1, 1]))
        store.invalidate_nodes(np.array([0]))
        reused, new, __ = store.visit(np.array([0, 1]), np.array([1, 1]))
        assert reused == 1 and new == 1

    def test_pr_reuses_tiles_across_iterations(self, skewed_graph):
        scheduler = SageScheduler()
        run_app(skewed_graph, PageRankApp(max_iterations=5), scheduler)
        store = scheduler.resident_store
        assert store is not None
        # iterations 2..5 fully reuse iteration 1's expansion
        assert store.reuse_rate > 0.7


class TestSelfAdaptiveReordering:
    def graph(self):
        return gen.power_law_configuration(
            500, 2.0, 10.0, seed=9,
            community_count=10, community_bias=0.9, scramble_ids=True,
        )

    def test_bfs_results_survive_midrun_reorder(self):
        g = self.graph()
        sched = SageScheduler(sampling_reorder=True,
                              reorder_threshold_edges=g.num_edges // 4)
        result = run_app(g, BFSApp(), sched, source=2)
        assert result.reorder_commits >= 1
        assert np.array_equal(result.result["dist"], bfs_oracle(g, 2))

    def test_pr_results_survive_midrun_reorder(self):
        g = self.graph()
        sched = SageScheduler(sampling_reorder=True,
                              reorder_threshold_edges=g.num_edges)
        result = run_app(
            g, PageRankApp(max_iterations=60, tolerance=1e-12), sched
        )
        assert result.reorder_commits >= 2
        assert np.allclose(result.result["pagerank"], pagerank_oracle(g),
                           atol=1e-6)

    def test_final_perm_is_cumulative_bijection(self):
        g = self.graph()
        sched = SageScheduler(sampling_reorder=True,
                              reorder_threshold_edges=g.num_edges)
        result = run_app(g, PageRankApp(max_iterations=30), sched)
        perm = result.final_perm
        assert perm is not None
        assert np.array_equal(np.sort(perm), np.arange(g.num_nodes))

    def test_no_reorder_without_flag(self, skewed_graph):
        result = run_app(skewed_graph, PageRankApp(max_iterations=10),
                         SageScheduler())
        assert result.reorder_commits == 0
        assert result.final_perm is None

    def test_reorder_invalidates_resident_tiles(self):
        g = self.graph()
        sched = SageScheduler(sampling_reorder=True,
                              reorder_threshold_edges=g.num_edges)
        run_app(g, PageRankApp(max_iterations=10), sched)
        store = sched.resident_store
        assert store is not None
        # at least one commit happened, so expansions exceed one sweep
        assert sched.reorderer is not None
        assert sched.reorderer.rounds_completed >= 1
