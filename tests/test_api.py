"""The unified ``repro.api`` facade: one import, five verbs.

These tests pin the public surface (``import repro; repro.api``), the
facade's equivalence with the lower layers it wraps, and the ``api.*``
session counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.apps import BFSApp
from repro.core import SageScheduler, TraversalPipeline
from repro.errors import InvalidParameterError
from repro.graph import generators
from repro.obs import MetricsRegistry
from repro.serve import (
    ClusterBenchReport,
    ClusterPool,
    QueryBroker,
    QueryRequest,
    QueryStatus,
    ServeBenchReport,
)


@pytest.fixture(scope="module")
def graph():
    return generators.rmat(7, edge_factor=8, seed=11)


class TestSurface:
    def test_import_repro_exposes_the_facade(self):
        import repro

        for name in ("load_graph", "run", "serve", "cluster", "bench"):
            assert callable(getattr(repro.api, name)), name
        assert "api" in repro.__all__

    def test_registries_cover_cli_names(self):
        assert set(api.APPS) == {
            "bfs", "bc", "pr", "cc", "sssp", "lp",
            "walk", "node2vec", "khop", "sppr",
        }
        assert api.SOURCE_APPS <= set(api.APPS)
        assert set(api.SCHEDULERS) == {
            "sage", "sage-sr", "tpn", "b40c", "tigr", "gunrock",
        }


class TestLoadGraph:
    def test_by_name(self):
        graph = api.load_graph("twitter", scale=0.05)
        assert graph.num_nodes > 0

    def test_by_path(self, tmp_path):
        edges = tmp_path / "tiny.txt"
        edges.write_text("0 1\n1 2\n2 0\n", encoding="utf-8")
        graph = api.load_graph(path=str(edges))
        assert graph.num_nodes == 3

    def test_requires_name_or_path(self):
        with pytest.raises(InvalidParameterError):
            api.load_graph()


class TestRun:
    def test_matches_the_pipeline(self, graph):
        source = int(np.argmax(graph.out_degrees()))
        result = api.run(graph, "bfs", source=source)
        pipeline = TraversalPipeline(graph, SageScheduler())
        want = pipeline.run(BFSApp(), source)
        assert result.app == "bfs"
        assert result.seconds == want.seconds
        assert result.iterations == want.iterations
        np.testing.assert_array_equal(
            result.values["dist"], want.result["dist"]
        )
        assert result.raw is not None
        assert result.checks is None and result.clean

    def test_default_source_is_highest_degree(self, graph):
        auto = api.run(graph, "bfs")
        explicit = api.run(
            graph, "bfs", source=int(np.argmax(graph.out_degrees()))
        )
        np.testing.assert_array_equal(
            auto.values["dist"], explicit.values["dist"]
        )

    def test_checks_attach_a_clean_sanitizer(self, graph):
        result = api.run(graph, "bfs", checks=True)
        assert result.checks is not None
        assert result.checks.kernels_checked > 0
        assert result.clean

    def test_accepts_app_and_scheduler_objects(self, graph):
        result = api.run(graph, BFSApp(), scheduler=SageScheduler())
        assert result.app == "bfs"
        assert result.scheduler

    def test_result_is_frozen(self, graph):
        result = api.run(graph, "bfs")
        with pytest.raises(AttributeError):
            result.gteps = 0.0

    def test_unknown_names_rejected(self, graph):
        with pytest.raises(InvalidParameterError):
            api.run(graph, "dijkstra")
        with pytest.raises(InvalidParameterError):
            api.run(graph, "bfs", scheduler="cub")

    def test_counts_api_runs(self, graph):
        metrics = MetricsRegistry()
        api.run(graph, "bfs", metrics=metrics)
        assert metrics.report()["counters"]["api.runs"] == 1


class TestServeAndCluster:
    def test_serve_returns_a_live_broker(self, graph):
        metrics = MetricsRegistry()
        with api.serve(graph, batch_window=0.005,
                       metrics=metrics) as broker:
            assert isinstance(broker, QueryBroker)
            response = broker.submit(
                QueryRequest("bfs", "default", 0)
            ).result()
        assert response.status is QueryStatus.OK
        counters = metrics.report()["counters"]
        assert counters["api.serve_sessions"] == 1

    def test_cluster_returns_a_live_pool(self, graph):
        metrics = MetricsRegistry()
        with api.cluster(
            graph, num_replicas=2, batch_window=0.005, metrics=metrics
        ) as pool:
            assert isinstance(pool, ClusterPool)
            response = pool.submit(
                QueryRequest("bfs", "default", 0)
            ).result()
        assert response.status is QueryStatus.OK
        counters = metrics.report()["counters"]
        assert counters["api.cluster_sessions"] == 1


class TestBench:
    def test_single_broker_report(self, graph):
        report = api.bench(graph, num_queries=12, seed=3)
        assert isinstance(report, ServeBenchReport)
        assert report.status_counts.get("ok") == 12

    def test_cluster_report_is_baselined(self, graph):
        report = api.bench(graph, num_queries=12, replicas=2, seed=3)
        assert isinstance(report, ClusterBenchReport)
        assert report.single_broker_seconds > 0
        assert report.speedup_vs_single_broker > 0

    def test_deterministic(self, graph):
        a = api.bench(graph, num_queries=12, replicas=2, seed=3)
        b = api.bench(graph, num_queries=12, replicas=2, seed=3)
        assert a.to_dict() == b.to_dict()
